//! Checkpoint-record framing under torn tails and mixed-format logs.
//!
//! The fuzzy checkpoint writes a Begin/End record pair; the pair is
//! the unit of certification, so a tail torn anywhere inside or after
//! the pair must make analysis fall back to the previous complete
//! checkpoint — never trust a Begin whose End died with the crash.
//! These tests mirror the PR-4 torn-batch test at the record layer:
//! every byte cut point, plus a property test interleaving batch
//! frames (committed transactions) with checkpoint pairs.

use std::sync::Arc;

use btrim_common::{Lsn, PageId, PartitionId, RowId, SlotId, Timestamp, TxnId};
use btrim_wal::{analyze_page_log, Encodable, FileLog, FormatEpoch, LogWriter, PageLogRecord};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("btrim-ckptframe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn ins(txn: u64, page: u32) -> PageLogRecord {
    PageLogRecord::Insert {
        txn: TxnId(txn),
        partition: PartitionId(0),
        row: RowId(txn),
        page: PageId(page),
        slot: SlotId(0),
        data: vec![0xAB; 16],
    }
}

fn read_records(path: &std::path::Path) -> Vec<(Lsn, PageLogRecord)> {
    let writer: LogWriter<PageLogRecord> = LogWriter::new(Arc::new(FileLog::open(path).unwrap()));
    writer.read_all().unwrap()
}

/// Tear the log at every byte boundary from the second checkpoint's
/// Begin frame to the end of its End frame. Whatever survives, the
/// floor must come from the first (complete) pair.
#[test]
fn torn_checkpoint_pair_falls_back_at_every_cut_point() {
    let path = tmp("torn-pair.wal");
    let first_begin_lsn;
    let pair_start;
    let full;
    {
        let log = FileLog::open(&path).unwrap();
        let w: LogWriter<PageLogRecord> = LogWriter::new(Arc::new(log));
        w.append(&PageLogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&ins(1, 3)).unwrap();
        w.append(&PageLogRecord::Commit {
            txn: TxnId(1),
            ts: Timestamp(10),
        })
        .unwrap();
        // First, complete checkpoint pair: no writers in flight.
        first_begin_lsn = w
            .append(&PageLogRecord::CheckpointBegin {
                low_water: Lsn::ZERO,
                dirty_pages: vec![PageId(3)],
            })
            .unwrap();
        w.append(&PageLogRecord::CheckpointEnd {
            begin_lsn: first_begin_lsn,
        })
        .unwrap();
        w.append(&PageLogRecord::Begin { txn: TxnId(2) }).unwrap();
        w.append(&ins(2, 4)).unwrap();
        w.flush().unwrap();
        pair_start = std::fs::metadata(&path).unwrap().len();
        // Second pair — the one the crash will tear.
        let begin2 = w
            .append(&PageLogRecord::CheckpointBegin {
                low_water: Lsn(6), // txn 2's Begin
                dirty_pages: vec![PageId(3), PageId(4)],
            })
            .unwrap();
        w.append(&PageLogRecord::CheckpointEnd { begin_lsn: begin2 })
            .unwrap();
        w.flush().unwrap();
        full = std::fs::read(&path).unwrap();
    }
    assert_eq!(first_begin_lsn, Lsn(4));
    for cut in pair_start..full.len() as u64 {
        std::fs::write(&path, &full[..cut as usize]).unwrap();
        let records = read_records(&path);
        let a = analyze_page_log(&records);
        assert_eq!(
            a.last_checkpoint,
            Some(first_begin_lsn),
            "cut at {cut}: torn second pair must fall back to the first"
        );
        assert_eq!(a.redo_low_water, Some(first_begin_lsn), "cut at {cut}");
        // Whether the second Begin survived the cut decides the torn
        // count; it must never certify either way.
        assert!(a.torn_checkpoints <= 1, "cut at {cut}");
        assert!(a.losers.contains(&TxnId(2)), "cut at {cut}");
        assert_eq!(a.winners.get(&TxnId(1)), Some(&Timestamp(10)));
    }
    // The intact file certifies the second pair.
    std::fs::write(&path, &full).unwrap();
    let a = analyze_page_log(&read_records(&path));
    assert_eq!(a.last_checkpoint, Some(Lsn(8)));
    assert_eq!(a.redo_low_water, Some(Lsn(6)));
    assert_eq!(a.torn_checkpoints, 0);
    std::fs::remove_file(&path).unwrap();
}

/// Same contract on a V1-epoch log: checkpoint pairs are ordinary
/// per-record frames, so a pre-batching log replays them unchanged.
/// The V1 file is crafted by hand (fresh logs open as V2 since PR 4).
#[test]
fn checkpoint_pair_survives_v1_epoch_reopen() {
    const FILE_MAGIC_V1: u64 = 0x4254_5249_4D57_414C; // "BTRIMWAL"
    let path = tmp("v1-pair.wal");
    let records = [
        PageLogRecord::CheckpointBegin {
            low_water: Lsn::ZERO,
            dirty_pages: vec![],
        },
        PageLogRecord::CheckpointEnd { begin_lsn: Lsn(1) },
    ];
    let mut file = Vec::new();
    file.extend_from_slice(&FILE_MAGIC_V1.to_le_bytes());
    file.extend_from_slice(&0u64.to_le_bytes());
    for r in &records {
        let payload = r.encode();
        file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        file.extend_from_slice(&btrim_wal::log::crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
    }
    std::fs::write(&path, &file).unwrap();
    let log = FileLog::open(&path).unwrap();
    assert_eq!(log.epoch(), FormatEpoch::V1);
    drop(log);
    let a = analyze_page_log(&read_records(&path));
    assert_eq!(a.last_checkpoint, Some(Lsn(1)));
    assert_eq!(a.redo_low_water, Some(Lsn(1)));
    std::fs::remove_file(&path).unwrap();
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One log-building step: a committed transaction appended as an
    /// atomic batch frame (Begin/changes/Commit, the stage-and-batch
    /// commit shape), a complete checkpoint pair, or a torn Begin.
    #[derive(Clone, Debug)]
    enum Step {
        TxnBatch { txn: u64, changes: u8 },
        CheckpointPair { dirty: u8 },
        TornBegin,
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        prop_oneof![
            3 => (1u64..64, 1u8..5).prop_map(|(txn, changes)| Step::TxnBatch { txn, changes }),
            2 => (0u8..6).prop_map(|dirty| Step::CheckpointPair { dirty }),
            1 => Just(Step::TornBegin),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A V2 log interleaving batch frames with checkpoint pairs
        /// round-trips through salvage + analysis: every record
        /// decodes back, and the floor lands on the last *complete*
        /// pair regardless of how many torn Begins follow it.
        #[test]
        fn v2_batches_and_checkpoint_pairs_roundtrip_through_analysis(
            steps in proptest::collection::vec(step_strategy(), 1..12),
            case in 0u64..u64::MAX,
        ) {
            let path = tmp(&format!("prop-{case}.wal"));
            let log = FileLog::open(&path).unwrap();
            let w: LogWriter<PageLogRecord> = LogWriter::new(Arc::new(log));
            let mut expected: Vec<PageLogRecord> = Vec::new();
            let mut next_lsn: u64 = 1;
            let mut want_floor: Option<Lsn> = None;
            let mut want_ckpt: Option<Lsn> = None;
            let mut want_torn: u64 = 0;
            let mut open_begin = false;
            for step in &steps {
                match step {
                    Step::TxnBatch { txn, changes } => {
                        let mut recs = vec![PageLogRecord::Begin { txn: TxnId(*txn) }];
                        for c in 0..*changes {
                            recs.push(ins(*txn, c as u32));
                        }
                        recs.push(PageLogRecord::Commit {
                            txn: TxnId(*txn),
                            ts: Timestamp(*txn),
                        });
                        let encoded: Vec<Vec<u8>> = recs.iter().map(|r| r.encode()).collect();
                        let refs: Vec<&[u8]> = encoded.iter().map(|e| e.as_slice()).collect();
                        w.append_batch(&refs).unwrap();
                        next_lsn += recs.len() as u64;
                        expected.extend(recs);
                    }
                    Step::CheckpointPair { dirty } => {
                        if open_begin {
                            want_torn += 1;
                            open_begin = false;
                        }
                        let begin = PageLogRecord::CheckpointBegin {
                            low_water: Lsn::ZERO,
                            dirty_pages: (0..*dirty).map(|p| PageId(p as u32)).collect(),
                        };
                        let begin_lsn = w.append(&begin).unwrap();
                        prop_assert_eq!(begin_lsn, Lsn(next_lsn));
                        next_lsn += 1;
                        w.append(&PageLogRecord::CheckpointEnd { begin_lsn }).unwrap();
                        next_lsn += 1;
                        expected.push(begin.clone());
                        expected.push(PageLogRecord::CheckpointEnd { begin_lsn });
                        want_ckpt = Some(begin_lsn);
                        want_floor = Some(begin_lsn);
                    }
                    Step::TornBegin => {
                        if open_begin {
                            want_torn += 1;
                        }
                        let begin = PageLogRecord::CheckpointBegin {
                            low_water: Lsn::ZERO,
                            dirty_pages: vec![],
                        };
                        w.append(&begin).unwrap();
                        next_lsn += 1;
                        expected.push(begin);
                        open_begin = true;
                    }
                }
            }
            if open_begin {
                want_torn += 1;
            }
            w.flush().unwrap();
            drop(w);

            let reopened: LogWriter<PageLogRecord> =
                LogWriter::new(Arc::new(FileLog::open(&path).unwrap()));
            let (records, dropped) = reopened.read_all_salvage().unwrap();
            prop_assert_eq!(dropped, 0);
            let got: Vec<PageLogRecord> = records.iter().map(|(_, r)| r.clone()).collect();
            prop_assert_eq!(&got, &expected);

            let a = analyze_page_log(&records);
            prop_assert_eq!(a.last_checkpoint, want_ckpt);
            prop_assert_eq!(a.redo_low_water, want_floor);
            prop_assert_eq!(a.torn_checkpoints, want_torn);
            std::fs::remove_file(&path).unwrap();
        }
    }
}
