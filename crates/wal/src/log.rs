//! Append-only log sinks with CRC-checked framing.
//!
//! Frame layout: `[len: u32][crc32: u32][payload: len bytes]`. A reader
//! stops at the first truncated or corrupt frame, which makes a torn
//! tail after a crash harmless (the incomplete record was, by
//! definition, unacknowledged).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use btrim_common::{Lsn, Result};

/// Slice-by-8 lookup tables for CRC-32 (IEEE 802.3, reflected),
/// computed at compile time. Table 0 is the classic byte-at-a-time
/// table; table k folds a byte that sits k positions ahead of the
/// current CRC window, letting the hot loop consume 8 bytes per
/// iteration with 8 independent table reads and no data dependency
/// between them.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice; slice-by-8.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        // `chunks_exact(8)` guarantees 8 bytes; the `else` is dead code
        // kept so this stays panic-free by construction.
        let (Some(lo4), Some(hi4)) = (c.first_chunk::<4>(), c.last_chunk::<4>()) else {
            continue;
        };
        let lo = u32::from_le_bytes(*lo4) ^ crc;
        let hi = u32::from_le_bytes(*hi4);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The original table-free bitwise implementation, kept as the
/// reference the slice-by-8 version is cross-checked against.
#[cfg(test)]
pub(crate) fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A contiguous LSN range reserved by one [`LogSink::append_batch`]
/// call (`first..=last`, both inclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsnRange {
    /// LSN of the first record in the batch.
    pub first: Lsn,
    /// LSN of the last record in the batch.
    pub last: Lsn,
}

impl LsnRange {
    /// Number of records in the range.
    pub fn len(&self) -> u64 {
        self.last.0 - self.first.0 + 1
    }

    /// True when the range covers no records (never produced by a
    /// successful `append_batch`, which rejects empty batches).
    pub fn is_empty(&self) -> bool {
        self.last.0 < self.first.0
    }
}

/// An append-only, crash-consistent byte log.
pub trait LogSink: Send + Sync {
    /// Append one framed record; returns its LSN (sequence number).
    fn append(&self, payload: &[u8]) -> Result<Lsn>;
    /// Append several records as **one atomic unit**: a crash either
    /// persists every record in the batch or none of them, never a
    /// prefix. One lock acquisition reserves the whole LSN range.
    /// Empty batches are rejected (`Invalid`).
    ///
    /// The default implementation is a per-record loop — correct for
    /// in-memory sinks used in tests, but without the atomicity or
    /// single-lock guarantee. `MemLog`, `FileLog`, and the fault
    /// wrapper override it.
    fn append_batch(&self, payloads: &[&[u8]]) -> Result<LsnRange> {
        let (first_payload, rest) = payloads
            .split_first()
            .ok_or_else(|| btrim_common::BtrimError::Invalid("empty log batch".into()))?;
        let first = self.append(first_payload)?;
        let mut last = first;
        for p in rest {
            last = self.append(p)?;
        }
        Ok(LsnRange { first, last })
    }
    /// Durably flush all appended records.
    fn flush(&self) -> Result<()>;
    /// Read every intact record in order (recovery). LSNs are stable
    /// across truncation: a truncated prefix leaves a gap at the front.
    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>>;
    /// Number of records appended over the log's lifetime (monotonic;
    /// not reduced by truncation).
    fn record_count(&self) -> u64;
    /// Bytes currently retained (frames included).
    fn byte_size(&self) -> u64;
    /// Drop every record with `lsn <= upto` (log recycling after a
    /// checkpoint). LSNs of the surviving records are unchanged.
    fn truncate_prefix(&self, upto: Lsn) -> Result<()>;
}

/// In-memory log (tests and deterministic experiments).
pub struct MemLog {
    inner: Mutex<MemLogInner>,
    /// Times the data mutex was taken by an append path (`append` or
    /// `append_batch`) — the observable half of the "one lock
    /// acquisition per committing transaction" contract.
    append_locks: std::sync::atomic::AtomicU64,
}

impl Default for MemLog {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Default)]
struct MemLogInner {
    /// LSN of the first retained record minus one (grows on truncate).
    base: u64,
    records: Vec<Vec<u8>>,
    bytes: u64,
}

impl MemLog {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        MemLog {
            inner: Mutex::with_rank(parking_lot::lock_rank::WAL_LOG, MemLogInner::default()),
            append_locks: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of data-mutex acquisitions taken by append paths.
    pub fn append_lock_acquisitions(&self) -> u64 {
        self.append_locks.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl LogSink for MemLog {
    fn append(&self, payload: &[u8]) -> Result<Lsn> {
        self.append_locks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.records.push(payload.to_vec());
        inner.bytes += payload.len() as u64 + 8;
        Ok(Lsn(inner.base + inner.records.len() as u64))
    }

    fn append_batch(&self, payloads: &[&[u8]]) -> Result<LsnRange> {
        if payloads.is_empty() {
            return Err(btrim_common::BtrimError::Invalid("empty log batch".into()));
        }
        // Copies are prepared before the lock; the critical section is
        // a Vec extend plus counter bumps.
        let copies: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();
        let added_bytes: u64 = payloads.iter().map(|p| p.len() as u64 + 8).sum();
        self.append_locks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let first = inner.base + inner.records.len() as u64 + 1;
        inner.records.extend(copies);
        inner.bytes += added_bytes;
        let last = inner.base + inner.records.len() as u64;
        Ok(LsnRange {
            first: Lsn(first),
            last: Lsn(last),
        })
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
        let inner = self.inner.lock();
        Ok(inner
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (Lsn(inner.base + i as u64 + 1), r.clone()))
            .collect())
    }

    fn record_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.records.len() as u64
    }

    fn byte_size(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        let mut inner = self.inner.lock();
        let drop_n = upto
            .0
            .saturating_sub(inner.base)
            .min(inner.records.len() as u64) as usize;
        let dropped_bytes: u64 = inner
            .records
            .drain(..drop_n)
            .map(|r| r.len() as u64 + 8)
            .sum();
        inner.bytes -= dropped_bytes;
        inner.base += drop_n as u64;
        Ok(())
    }
}

/// File-backed log.
///
/// Layout: a 16-byte header `[magic u64][base_lsn u64]` followed by
/// CRC-framed records. `base_lsn` is the LSN of the last truncated
/// record (0 for a fresh log); it keeps LSNs stable across
/// [`truncate_prefix`](LogSink::truncate_prefix), which rewrites the
/// file through a temp file + atomic rename.
///
/// Two format epochs, distinguished by the header magic:
///
/// * **V1** (`BTRIMWAL`): per-record frames only. The batch sentinel
///   cannot legally appear, so a sentinel-shaped tail is treated as a
///   torn frame and truncated — this is the epoch check that keeps
///   pre-batching logs replayable without ever misparsing garbage as
///   a batch.
/// * **V2** (`BTRIMWA2`): per-record frames *and* batch frames
///   (`[sentinel u32 = 0xFFFF_FFFF][n_records u32][total_len u32]`
///   `[crc u32][len_i u32 × n][payloads]`, CRC over everything after
///   the crc field). A torn or corrupt batch frame drops the whole
///   batch — never a prefix of its records.
///
/// A V1 log opens as V1 and stays V1 under per-record appends; the
/// first `append_batch` upgrades the header in place (old frames keep
/// replaying, so the file becomes mixed-format).
pub struct FileLog {
    inner: Mutex<FileLogInner>,
    /// See [`MemLog::append_lock_acquisitions`].
    append_locks: std::sync::atomic::AtomicU64,
}

const FILE_MAGIC_V1: u64 = 0x4254_5249_4D57_414C; // "BTRIMWAL"
const FILE_MAGIC_V2: u64 = 0x4254_5249_4D57_4132; // "BTRIMWA2"
const HEADER_LEN: u64 = 16;
/// Marks a batch frame where a per-record frame would put its length.
/// Single-record appends reject payloads this large, so the sentinel
/// is unambiguous in V2 and impossible in V1.
const BATCH_SENTINEL: u32 = 0xFFFF_FFFF;
const BATCH_HEADER_LEN: usize = 16;

/// On-disk format epoch of a [`FileLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormatEpoch {
    /// Per-record frames only (pre-batching layout).
    V1,
    /// Per-record and batch frames.
    V2,
}

struct FileLogInner {
    path: std::path::PathBuf,
    /// Kept positioned at end-of-file between appends, so the append
    /// fast path is pure buffered writes — no seek, no syscall until
    /// the buffer fills or a flush (commit boundary) drains it.
    writer: BufWriter<File>,
    base: u64,
    count: u64,
    bytes: u64,
    epoch: FormatEpoch,
}

/// Little-endian `u32` at `off`, or `None` past the end. Frame parsing
/// treats a `None` as a torn tail, so short reads stop the scan instead
/// of panicking.
fn read_u32_le(data: &[u8], off: usize) -> Option<u32> {
    data.get(off..)
        .and_then(|tail| tail.first_chunk::<4>())
        .map(|b| u32::from_le_bytes(*b))
}

/// Parse every intact frame (per-record and, under V2, batch) from a
/// raw log body. Returns the payloads in LSN order and the byte
/// offset where the intact prefix ends; parsing stops at the first
/// torn or corrupt frame, dropping a torn *batch* wholesale.
fn parse_frames(data: &[u8], epoch: FormatEpoch) -> (Vec<Vec<u8>>, usize) {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 8 <= data.len() {
        let Some(len) = read_u32_le(data, off) else {
            break;
        };
        if len == BATCH_SENTINEL {
            // Under V1 the sentinel is impossible: whatever this is, it
            // is a torn tail, not a batch frame.
            if epoch == FormatEpoch::V1 {
                break;
            }
            let (Some(n), Some(total), Some(crc)) = (
                read_u32_le(data, off + 4),
                read_u32_le(data, off + 8),
                read_u32_le(data, off + 12),
            ) else {
                break; // torn batch header
            };
            let (n, total) = (n as usize, total as usize);
            let body_start = off + BATCH_HEADER_LEN;
            if n == 0 || total < n * 4 || body_start + total > data.len() {
                break; // torn or nonsense batch: drop it whole
            }
            let body = &data[body_start..body_start + total];
            if crc32(body) != crc {
                break; // corrupt batch: drop it whole
            }
            // Body: n record lengths, then the concatenated payloads.
            let lens: Vec<usize> = (0..n)
                .filter_map(|i| read_u32_le(body, i * 4))
                .map(|l| l as usize)
                .collect();
            if lens.len() != n || n * 4 + lens.iter().sum::<usize>() != total {
                break; // lengths disagree with the body size
            }
            let mut p = n * 4;
            for l in lens {
                out.push(body[p..p + l].to_vec());
                p += l;
            }
            off = body_start + total;
        } else {
            let len = len as usize;
            let Some(crc) = read_u32_le(data, off + 4) else {
                break;
            };
            if off + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            out.push(payload.to_vec());
            off += 8 + len;
        }
    }
    (out, off)
}

/// Build a V2 batch frame around pre-encoded payloads. Called by the
/// committing thread *before* the log mutex is taken: all CRC work and
/// header assembly happens outside the critical section.
fn build_batch_frame(payloads: &[&[u8]]) -> Vec<u8> {
    let body_len = payloads.len() * 4 + payloads.iter().map(|p| p.len()).sum::<usize>();
    let mut frame = Vec::with_capacity(BATCH_HEADER_LEN + body_len);
    frame.extend_from_slice(&BATCH_SENTINEL.to_le_bytes());
    frame.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc patched below
    for p in payloads {
        frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
    }
    for p in payloads {
        frame.extend_from_slice(p);
    }
    let crc = crc32(&frame[BATCH_HEADER_LEN..]);
    frame[12..16].copy_from_slice(&crc.to_le_bytes());
    frame
}

impl FileLog {
    /// Open (or create) a log file, scanning existing intact records to
    /// position the sequence counter.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let (base, epoch) = if len < HEADER_LEN {
            // Fresh (or header-less legacy) log: write a V2 header.
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&FILE_MAGIC_V2.to_le_bytes())?;
            file.write_all(&0u64.to_le_bytes())?;
            (0, FormatEpoch::V2)
        } else {
            let mut magic_b = [0u8; 8];
            let mut base_b = [0u8; 8];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic_b)?;
            file.read_exact(&mut base_b)?;
            let epoch = match u64::from_le_bytes(magic_b) {
                FILE_MAGIC_V1 => FormatEpoch::V1,
                FILE_MAGIC_V2 => FormatEpoch::V2,
                _ => {
                    return Err(btrim_common::BtrimError::Corrupt(
                        "log file header magic mismatch".into(),
                    ))
                }
            };
            (u64::from_le_bytes(base_b), epoch)
        };
        let (count, end) = Self::scan(&mut file, epoch)?;
        // Truncate any torn tail so future appends start clean.
        file.set_len(end)?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileLog {
            inner: Mutex::with_rank(
                parking_lot::lock_rank::WAL_LOG,
                FileLogInner {
                    path: path.to_path_buf(),
                    writer: BufWriter::new(file),
                    base,
                    count: base + count,
                    bytes: end - HEADER_LEN,
                    epoch,
                },
            ),
            append_locks: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The current on-disk format epoch.
    pub fn epoch(&self) -> FormatEpoch {
        self.inner.lock().epoch
    }

    /// Number of data-mutex acquisitions taken by append paths.
    pub fn append_lock_acquisitions(&self) -> u64 {
        self.append_locks.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Count intact records and the byte offset where they end.
    fn scan(file: &mut File, epoch: FormatEpoch) -> Result<(u64, u64)> {
        file.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let (records, end) = parse_frames(&data, epoch);
        Ok((records.len() as u64, HEADER_LEN + end as u64))
    }

    /// Read every intact record with its LSN (lock held by caller).
    /// Drains the write buffer, reads through the raw file, and leaves
    /// the cursor back at end-of-file for the next append.
    fn read_locked(inner: &mut FileLogInner) -> Result<Vec<(Lsn, Vec<u8>)>> {
        inner.writer.flush()?;
        let file = inner.writer.get_mut();
        file.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        file.seek(SeekFrom::End(0))?;
        let (records, _) = parse_frames(&data, inner.epoch);
        Ok(records
            .into_iter()
            .enumerate()
            .map(|(i, payload)| (Lsn(inner.base + i as u64 + 1), payload))
            .collect())
    }

    /// Upgrade a V1 file to the V2 epoch in place: drain the write
    /// buffer, rewrite the 8-byte magic, and restore the end-of-file
    /// cursor. Called (under the lock) by the first `append_batch` on
    /// a pre-batching log, *before* any batch bytes are written — on
    /// failure the file is still a valid V1 log.
    fn upgrade_epoch(inner: &mut FileLogInner) -> Result<()> {
        inner.writer.flush()?;
        let file = inner.writer.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&FILE_MAGIC_V2.to_le_bytes())?;
        file.sync_data()?;
        file.seek(SeekFrom::End(0))?;
        inner.epoch = FormatEpoch::V2;
        Ok(())
    }

    /// After a failed append the `BufWriter` may hold — and the file
    /// may already contain — part of a frame. Drop the buffered bytes
    /// *without flushing* and truncate the file back to the end of the
    /// last intact record, so a later successful flush cannot persist
    /// a torn frame: recovery stops at the first corrupt frame and
    /// would otherwise silently discard every acknowledged record
    /// behind it. Best-effort: if the writer cannot be rebuilt the
    /// original append error still reaches the caller.
    fn discard_partial_append(inner: &mut FileLogInner) {
        let good_end = HEADER_LEN + inner.bytes;
        let spare = match inner.writer.get_ref().try_clone() {
            Ok(f) => f,
            Err(_) => match OpenOptions::new().read(true).write(true).open(&inner.path) {
                Ok(f) => f,
                Err(_) => return,
            },
        };
        // `into_parts` discards the buffer without flushing it.
        let old = std::mem::replace(&mut inner.writer, BufWriter::new(spare));
        let (file, _partial_frame) = old.into_parts();
        let _ = file.set_len(good_end);
        let _ = inner.writer.get_mut().seek(SeekFrom::Start(good_end));
    }
}

impl LogSink for FileLog {
    fn append(&self, payload: &[u8]) -> Result<Lsn> {
        if payload.len() as u64 >= BATCH_SENTINEL as u64 {
            return Err(btrim_common::BtrimError::Invalid(
                "log record too large".into(),
            ));
        }
        // Frame header on the stack, built before the lock; the cursor
        // is already at end-of-file, so the critical section is two
        // buffered writes and nothing else.
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.append_locks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let wrote = inner
            .writer
            .write_all(&header) // lint: allow(no-io-under-lock) -- the log mutex is the designed append serialization point; this is a buffered copy, not a syscall
            .and_then(|()| inner.writer.write_all(payload)); // lint: allow(no-io-under-lock) -- second half of the frame; must land under the same lock as the header
        if let Err(e) = wrote {
            Self::discard_partial_append(&mut inner);
            return Err(e.into());
        }
        inner.count += 1;
        inner.bytes += payload.len() as u64 + 8;
        Ok(Lsn(inner.count))
    }

    fn append_batch(&self, payloads: &[&[u8]]) -> Result<LsnRange> {
        if payloads.is_empty() {
            return Err(btrim_common::BtrimError::Invalid("empty log batch".into()));
        }
        // The whole frame — lengths, payloads, CRC — is assembled by
        // the committing thread before the mutex is taken.
        let frame = build_batch_frame(payloads);
        self.append_locks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.epoch == FormatEpoch::V1 {
            // First batch on a pre-batching log: bump the epoch so the
            // sentinel becomes parseable. Fails before any frame bytes
            // are written, leaving the V1 log intact.
            Self::upgrade_epoch(&mut inner)?;
        }
        // lint: allow(no-io-under-lock) -- one pre-built buffered write is the whole critical section; the lock is what makes the batch atomic
        if let Err(e) = inner.writer.write_all(&frame) {
            Self::discard_partial_append(&mut inner);
            return Err(e.into());
        }
        let first = inner.count + 1;
        inner.count += payloads.len() as u64;
        inner.bytes += frame.len() as u64;
        Ok(LsnRange {
            first: Lsn(first),
            last: Lsn(inner.count),
        })
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?; // lint: allow(no-io-under-lock) -- commit-boundary drain; appends must not interleave into the fsync window
        inner.writer.get_ref().sync_data()?; // lint: allow(no-io-under-lock) -- the durability point itself; group commit amortizes it across waiters
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
        let mut inner = self.inner.lock();
        Self::read_locked(&mut inner)
    }

    fn record_count(&self) -> u64 {
        self.inner.lock().count
    }

    fn byte_size(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        let mut inner = self.inner.lock();
        if upto.0 <= inner.base {
            return Ok(()); // nothing to drop
        }
        let keep: Vec<(Lsn, Vec<u8>)> = Self::read_locked(&mut inner)?
            .into_iter()
            .filter(|(lsn, _)| *lsn > upto)
            .collect();
        let new_base = upto.0.min(inner.count);
        // Rewrite through a temp file, then rename into place.
        let tmp_path = inner.path.with_extension("wal.tmp");
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            let magic = match inner.epoch {
                FormatEpoch::V1 => FILE_MAGIC_V1,
                FormatEpoch::V2 => FILE_MAGIC_V2,
            };
            tmp.write_all(&magic.to_le_bytes())?; // lint: allow(no-io-under-lock) -- checkpoint-time rewrite; appends must stay excluded while the file is replaced
            tmp.write_all(&new_base.to_le_bytes())?; // lint: allow(no-io-under-lock) -- see above: temp-file header
            let mut bytes = 0u64;
            for (_, payload) in &keep {
                tmp.write_all(&(payload.len() as u32).to_le_bytes())?; // lint: allow(no-io-under-lock) -- re-framing survivors into the temp file, still excluding appends
                tmp.write_all(&crc32(payload).to_le_bytes())?; // lint: allow(no-io-under-lock) -- see above
                tmp.write_all(payload)?; // lint: allow(no-io-under-lock) -- see above
                bytes += payload.len() as u64 + 8;
            }
            tmp.sync_data()?; // lint: allow(no-io-under-lock) -- temp file must be durable before the rename publishes it
            inner.bytes = bytes;
        }
        std::fs::rename(&tmp_path, &inner.path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&inner.path)?;
        file.seek(SeekFrom::End(0))?; // lint: allow(no-io-under-lock) -- repositions the writer on the renamed file before appends resume
        inner.writer = BufWriter::new(file);
        inner.base = new_base;
        Ok(())
    }
}

/// Typed writer over a sink: encodes records and supports group flush.
pub struct LogWriter<R> {
    sink: std::sync::Arc<dyn LogSink>,
    /// Optional latency histograms (nanoseconds) for appends and
    /// flushes; attached by the engine's observability layer. Held as
    /// bare histograms so this crate stays independent of `btrim-obs`.
    append_hist: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    flush_hist: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    _marker: std::marker::PhantomData<fn(R)>,
}

impl<R> LogWriter<R>
where
    R: crate::record::Encodable,
{
    /// Wrap a sink.
    pub fn new(sink: std::sync::Arc<dyn LogSink>) -> Self {
        LogWriter {
            sink,
            append_hist: None,
            flush_hist: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Attach append/flush latency histograms (builder style, like the
    /// buffer cache's `with_io_retry`).
    pub fn with_histograms(
        mut self,
        append: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
        flush: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    ) -> Self {
        self.append_hist = append;
        self.flush_hist = flush;
        self
    }

    /// The underlying sink.
    pub fn sink(&self) -> &std::sync::Arc<dyn LogSink> {
        &self.sink
    }

    /// Append one record.
    pub fn append(&self, record: &R) -> Result<Lsn> {
        let t = self.append_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.append(&record.encode());
        if let (Some(h), Some(t)) = (&self.append_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Append one pre-encoded record (the staged-commit path, where
    /// records were serialized at DML time).
    pub fn append_raw(&self, payload: &[u8]) -> Result<Lsn> {
        let t = self.append_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.append(payload);
        if let (Some(h), Some(t)) = (&self.append_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Append pre-encoded records as one atomic batch (one latency
    /// sample covers the whole batch — it is one sink operation).
    pub fn append_batch(&self, payloads: &[&[u8]]) -> Result<LsnRange> {
        let t = self.append_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.append_batch(payloads);
        if let (Some(h), Some(t)) = (&self.append_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Durably flush (commit boundary).
    pub fn flush(&self) -> Result<()> {
        let t = self.flush_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.flush();
        if let (Some(h), Some(t)) = (&self.flush_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Decode every intact record.
    pub fn read_all(&self) -> Result<Vec<(Lsn, R)>> {
        self.sink
            .read_all()?
            .into_iter()
            .map(|(lsn, bytes)| R::decode(&bytes).map(|r| (lsn, r)))
            .collect()
    }

    /// Decode records until the first one that fails, returning the
    /// decodable prefix plus the number of records dropped behind it.
    ///
    /// Frame-level corruption is already truncated by the sink's CRC
    /// contract; this extends the same truncate-at-first-bad-record
    /// policy to the decode layer, so recovery can salvage the intact
    /// prefix of a log whose tail carries a corrupt (but CRC-framed)
    /// record instead of failing wholesale.
    pub fn read_all_salvage(&self) -> Result<(Vec<(Lsn, R)>, u64)> {
        let raw = self.sink.read_all()?;
        let total = raw.len();
        let mut out = Vec::with_capacity(total);
        for (lsn, bytes) in raw {
            match R::decode(&bytes) {
                Ok(r) => out.push((lsn, r)),
                Err(_) => break,
            }
        }
        let dropped = (total - out.len()) as u64;
        Ok((out, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memlog_append_read_roundtrip() {
        let log = MemLog::new();
        assert_eq!(log.append(b"one").unwrap(), Lsn(1));
        assert_eq!(log.append(b"two").unwrap(), Lsn(2));
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (Lsn(1), b"one".to_vec()));
        assert_eq!(all[1], (Lsn(2), b"two".to_vec()));
        assert_eq!(log.record_count(), 2);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrim-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn filelog_roundtrip_and_reopen() {
        let path = tmp("log1.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta").unwrap();
            log.flush().unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 2);
            let all = log.read_all().unwrap();
            assert_eq!(all[1].1, b"beta");
            // Appends continue the sequence.
            assert_eq!(log.append(b"gamma").unwrap(), Lsn(3));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filelog_tolerates_torn_tail() {
        let path = tmp("log2.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"good record").unwrap();
            log.flush().unwrap();
        }
        // Simulate a torn write: append garbage half-frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[42u8; 7]).unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 1, "torn tail ignored");
            let all = log.read_all().unwrap();
            assert_eq!(all.len(), 1);
            assert_eq!(all[0].1, b"good record");
            // New appends after the truncated tail still read back.
            log.append(b"after crash").unwrap();
            assert_eq!(log.read_all().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_leaves_no_torn_frame_behind() {
        let path = tmp("log5.wal");
        let log = FileLog::open(&path).unwrap();
        log.append(b"keep").unwrap();
        log.flush().unwrap();
        {
            // Simulate an append that failed mid-frame: part of the
            // frame already flushed to the file, part still buffered.
            let mut inner = log.inner.lock();
            inner.writer.write_all(&[0xAB; 5]).unwrap();
            inner.writer.flush().unwrap();
            inner.writer.write_all(&[0xCD; 3]).unwrap();
            FileLog::discard_partial_append(&mut inner);
        }
        // Later appends land right after the last intact record, and
        // neither the live reader nor a reopen scan sees torn bytes.
        log.append(b"after").unwrap();
        log.flush().unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(
            all,
            vec![(Lsn(1), b"keep".to_vec()), (Lsn(2), b"after".to_vec())]
        );
        drop(log);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.record_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_all_salvage_truncates_at_first_bad_decode() {
        use crate::record::PageLogRecord;
        use btrim_common::TxnId;
        let sink = std::sync::Arc::new(MemLog::new());
        let w: LogWriter<PageLogRecord> = LogWriter::new(sink.clone());
        w.append(&PageLogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&PageLogRecord::Abort { txn: TxnId(1) }).unwrap();
        // A CRC-framed but undecodable record mid-log (e.g. written by
        // a lying device), followed by a good one.
        sink.append(&[0xFF, 0xFF]).unwrap();
        w.append(&PageLogRecord::Begin { txn: TxnId(2) }).unwrap();

        assert!(w.read_all().is_err(), "strict read fails wholesale");
        let (salvaged, dropped) = w.read_all_salvage().unwrap();
        assert_eq!(salvaged.len(), 2, "intact prefix survives");
        assert_eq!(dropped, 2, "bad record and everything behind it drop");
        assert_eq!(salvaged[1].1, PageLogRecord::Abort { txn: TxnId(1) });
    }

    #[test]
    fn filelog_detects_corrupt_payload() {
        let path = tmp("log3.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"aaaa").unwrap();
            log.append(b"bbbb").unwrap();
            log.flush().unwrap();
        }
        // Flip a byte in the second record's payload.
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut data = Vec::new();
            f.read_to_end(&mut data).unwrap();
            let last = data.len() - 1;
            data[last] ^= 0xFF;
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(&data).unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 1, "corrupt record dropped");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod crc_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slice_by_8_matches_ieee_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slice_by_8_matches_bitwise_on_awkward_lengths() {
        // Exercise every remainder length around the 8-byte chunking.
        for n in 0..=33usize {
            let data: Vec<u8> = (0..n as u8).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
            assert_eq!(crc32(&data), crc32_bitwise(&data), "len {n}");
        }
    }

    proptest! {
        #[test]
        fn slice_by_8_matches_bitwise(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(crc32(&data), crc32_bitwise(&data));
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrim-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Hand-write a V1-epoch (pre-batching) log file: old header magic
    /// plus per-record frames, exactly as the previous format wrote it.
    fn write_v1_log(path: &std::path::Path, base: u64, payloads: &[&[u8]]) {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .unwrap();
        f.write_all(&FILE_MAGIC_V1.to_le_bytes()).unwrap();
        f.write_all(&base.to_le_bytes()).unwrap();
        for p in payloads {
            f.write_all(&(p.len() as u32).to_le_bytes()).unwrap();
            f.write_all(&crc32(p).to_le_bytes()).unwrap();
            f.write_all(p).unwrap();
        }
        f.sync_data().unwrap();
    }

    #[test]
    fn memlog_batch_roundtrip_and_single_lock() {
        let log = MemLog::new();
        log.append(b"solo").unwrap();
        let locks_before = log.append_lock_acquisitions();
        let range = log
            .append_batch(&[b"a".as_ref(), b"bb".as_ref(), b"ccc".as_ref()])
            .unwrap();
        assert_eq!(
            range,
            LsnRange {
                first: Lsn(2),
                last: Lsn(4)
            }
        );
        assert_eq!(range.len(), 3);
        assert_eq!(
            log.append_lock_acquisitions() - locks_before,
            1,
            "one lock acquisition for the whole batch"
        );
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[2], (Lsn(3), b"bb".to_vec()));
        // Sequence continues after the batch.
        assert_eq!(log.append(b"tail").unwrap(), Lsn(5));
        assert!(log.append_batch(&[]).is_err(), "empty batch rejected");
    }

    #[test]
    fn filelog_batch_roundtrip_reopen_and_single_lock() {
        let path = tmp("b1.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"pre").unwrap();
            let locks_before = log.append_lock_acquisitions();
            let range = log
                .append_batch(&[b"one".as_ref(), b"two".as_ref(), b"three".as_ref()])
                .unwrap();
            assert_eq!(
                range,
                LsnRange {
                    first: Lsn(2),
                    last: Lsn(4)
                }
            );
            assert_eq!(log.append_lock_acquisitions() - locks_before, 1);
            log.append(b"post").unwrap();
            log.flush().unwrap();
            assert_eq!(log.read_all().unwrap().len(), 5);
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.record_count(), 5);
        let all = log.read_all().unwrap();
        assert_eq!(all[1], (Lsn(2), b"one".to_vec()));
        assert_eq!(all[4], (Lsn(5), b"post".to_vec()));
        assert_eq!(log.epoch(), FormatEpoch::V2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_batch_drops_whole_batch_never_a_prefix() {
        let path = tmp("b2.wal");
        let full_len;
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"keeper").unwrap();
            log.flush().unwrap();
            log.append_batch(&[
                b"r1-aaaa".as_ref(),
                b"r2-bbbb".as_ref(),
                b"r3-cccc".as_ref(),
            ])
            .unwrap();
            log.flush().unwrap();
            full_len = std::fs::metadata(&path).unwrap().len();
        }
        // Tear the batch frame at every possible byte boundary — after
        // the sentinel, inside the header, after one payload, one byte
        // short of complete. The whole batch must vanish every time;
        // the record before it must survive.
        let batch_start = full_len - (BATCH_HEADER_LEN as u64 + 3 * 4 + 3 * 7);
        for cut in batch_start..full_len {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let log = FileLog::open(&path).unwrap();
            let all = log.read_all().unwrap();
            assert_eq!(all.len(), 1, "cut at {cut}: batch must drop whole");
            assert_eq!(all[0].1, b"keeper");
            // Restore the full file for the next cut.
            drop(log);
            let log = FileLog::open(&path).unwrap();
            log.append_batch(&[
                b"r1-aaaa".as_ref(),
                b"r2-bbbb".as_ref(),
                b"r3-cccc".as_ref(),
            ])
            .unwrap();
            log.flush().unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_batch_crc_drops_whole_batch() {
        let path = tmp("b3.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"first").unwrap();
            log.append_batch(&[b"xx".as_ref(), b"yy".as_ref()]).unwrap();
            log.flush().unwrap();
        }
        // Flip a byte in the batch body (the last payload byte).
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let end = f.metadata().unwrap().len();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(end - 1)).unwrap();
            f.write_all(&[b[0] ^ 0xFF]).unwrap();
        }
        let log = FileLog::open(&path).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 1, "both batch records gone, not just one");
        assert_eq!(all[0].1, b"first");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_log_replays_and_first_batch_upgrades_epoch() {
        let path = tmp("b4.wal");
        write_v1_log(&path, 0, &[b"old-1", b"old-2"]);
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.epoch(), FormatEpoch::V1);
            assert_eq!(log.record_count(), 2, "pre-refactor frames replay");
            // Per-record appends keep the file V1…
            log.append(b"old-3").unwrap();
            log.flush().unwrap();
            assert_eq!(log.epoch(), FormatEpoch::V1);
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.epoch(), FormatEpoch::V1);
            // …and the first batch bumps it, making a mixed-format log.
            let range = log
                .append_batch(&[b"new-1".as_ref(), b"new-2".as_ref()])
                .unwrap();
            assert_eq!(
                range,
                LsnRange {
                    first: Lsn(4),
                    last: Lsn(5)
                }
            );
            assert_eq!(log.epoch(), FormatEpoch::V2);
            log.flush().unwrap();
        }
        // Mixed-format: V1 frames followed by a batch frame, all read
        // back in order after reopen.
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.epoch(), FormatEpoch::V2);
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].1, b"old-1");
        assert_eq!(all[2].1, b"old-3");
        assert_eq!(all[4], (Lsn(5), b"new-2".to_vec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_log_with_truncated_base_keeps_lsns() {
        // A truncated pre-refactor log (non-zero base) still lines up.
        let path = tmp("b5.wal");
        write_v1_log(&path, 7, &[b"r8", b"r9"]);
        let log = FileLog::open(&path).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(all[0].0, Lsn(8));
        assert_eq!(log.append(b"r10").unwrap(), Lsn(10));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sentinel_garbage_in_v1_log_is_a_torn_tail_not_a_batch() {
        let path = tmp("b6.wal");
        write_v1_log(&path, 0, &[b"good"]);
        // Append bytes that would parse as a plausible batch frame under
        // V2 — under the V1 epoch check they are a torn tail.
        {
            let frame = build_batch_frame(&[b"evil".as_ref()]);
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&frame).unwrap();
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.record_count(), 1, "sentinel not parsed under V1");
        assert_eq!(log.read_all().unwrap()[0].1, b"good");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_single_record_rejected() {
        // The sentinel value must stay unambiguous: a single append may
        // never write a length that collides with it. (Allocating a real
        // 4 GiB payload is not testable; the guard is on the length.)
        let log = MemLog::new();
        // MemLog has no framing, so only FileLog guards; check the
        // batch path still counts records correctly near the boundary.
        let range = log.append_batch(&[b"ok".as_ref()]).unwrap();
        assert_eq!(range.first, range.last);
    }

    #[test]
    fn default_trait_batch_falls_back_to_loop() {
        // A sink that doesn't override append_batch still works (no
        // atomicity, but correct LSNs).
        struct Plain(MemLog);
        impl LogSink for Plain {
            fn append(&self, p: &[u8]) -> Result<Lsn> {
                self.0.append(p)
            }
            fn flush(&self) -> Result<()> {
                self.0.flush()
            }
            fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
                self.0.read_all()
            }
            fn record_count(&self) -> u64 {
                self.0.record_count()
            }
            fn byte_size(&self) -> u64 {
                self.0.byte_size()
            }
            fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
                self.0.truncate_prefix(upto)
            }
        }
        let sink = Plain(MemLog::new());
        let range = sink.append_batch(&[b"a".as_ref(), b"b".as_ref()]).unwrap();
        assert_eq!(
            range,
            LsnRange {
                first: Lsn(1),
                last: Lsn(2)
            }
        );
        assert!(sink.append_batch(&[]).is_err());
    }

    #[test]
    fn truncate_prefix_preserves_batch_survivors() {
        let path = tmp("b7.wal");
        let log = FileLog::open(&path).unwrap();
        log.append(b"a").unwrap();
        log.append_batch(&[b"b".as_ref(), b"c".as_ref(), b"d".as_ref()])
            .unwrap();
        // Truncate through the middle of what was a batch: survivors
        // keep their LSNs (the rewrite re-frames them per-record, which
        // is fine — they are durable, acknowledged records by then).
        log.truncate_prefix(Lsn(3)).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(all, vec![(Lsn(4), b"d".to_vec())]);
        drop(log);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), vec![(Lsn(4), b"d".to_vec())]);
        assert_eq!(log.append(b"e").unwrap(), Lsn(5));
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;

    #[test]
    fn memlog_truncation_keeps_lsns_stable() {
        let log = MemLog::new();
        for i in 0..10u8 {
            log.append(&[i]).unwrap();
        }
        log.truncate_prefix(Lsn(4)).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (Lsn(5), vec![4u8]));
        assert_eq!(all[5], (Lsn(10), vec![9u8]));
        // Appends continue the global sequence.
        assert_eq!(log.append(b"x").unwrap(), Lsn(11));
        assert_eq!(log.record_count(), 11);
        // Truncating an already-dropped prefix is a no-op.
        log.truncate_prefix(Lsn(2)).unwrap();
        assert_eq!(log.read_all().unwrap().len(), 7);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrim-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn filelog_truncation_survives_reopen() {
        let path = tmp("t1.wal");
        {
            let log = FileLog::open(&path).unwrap();
            for i in 0..10u8 {
                log.append(&[i; 3]).unwrap();
            }
            let bytes_before = log.byte_size();
            log.truncate_prefix(Lsn(7)).unwrap();
            assert!(log.byte_size() < bytes_before, "bytes reclaimed");
            let all = log.read_all().unwrap();
            assert_eq!(all.len(), 3);
            assert_eq!(all[0], (Lsn(8), vec![7u8; 3]));
            // Appends keep the sequence after truncation.
            assert_eq!(log.append(b"new").unwrap(), Lsn(11));
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 11);
            let all = log.read_all().unwrap();
            assert_eq!(all.first().unwrap().0, Lsn(8));
            assert_eq!(all.last().unwrap(), &(Lsn(11), b"new".to_vec()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filelog_truncate_everything_then_append() {
        let path = tmp("t2.wal");
        let log = FileLog::open(&path).unwrap();
        for i in 0..5u8 {
            log.append(&[i]).unwrap();
        }
        log.truncate_prefix(Lsn(5)).unwrap();
        assert!(log.read_all().unwrap().is_empty());
        assert_eq!(log.append(b"a").unwrap(), Lsn(6));
        assert_eq!(log.read_all().unwrap(), vec![(Lsn(6), b"a".to_vec())]);
        std::fs::remove_file(&path).unwrap();
    }
}
