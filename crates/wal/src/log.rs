//! Append-only log sinks with CRC-checked framing.
//!
//! Frame layout: `[len: u32][crc32: u32][payload: len bytes]`. A reader
//! stops at the first truncated or corrupt frame, which makes a torn
//! tail after a crash harmless (the incomplete record was, by
//! definition, unacknowledged).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use btrim_common::{Lsn, Result};

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table-free bitwise implementation; the log framing is not a
    // throughput bottleneck at experiment scale.
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only, crash-consistent byte log.
pub trait LogSink: Send + Sync {
    /// Append one framed record; returns its LSN (sequence number).
    fn append(&self, payload: &[u8]) -> Result<Lsn>;
    /// Durably flush all appended records.
    fn flush(&self) -> Result<()>;
    /// Read every intact record in order (recovery). LSNs are stable
    /// across truncation: a truncated prefix leaves a gap at the front.
    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>>;
    /// Number of records appended over the log's lifetime (monotonic;
    /// not reduced by truncation).
    fn record_count(&self) -> u64;
    /// Bytes currently retained (frames included).
    fn byte_size(&self) -> u64;
    /// Drop every record with `lsn <= upto` (log recycling after a
    /// checkpoint). LSNs of the surviving records are unchanged.
    fn truncate_prefix(&self, upto: Lsn) -> Result<()>;
}

/// In-memory log (tests and deterministic experiments).
#[derive(Default)]
pub struct MemLog {
    inner: Mutex<MemLogInner>,
}

#[derive(Default)]
struct MemLogInner {
    /// LSN of the first retained record minus one (grows on truncate).
    base: u64,
    records: Vec<Vec<u8>>,
    bytes: u64,
}

impl MemLog {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogSink for MemLog {
    fn append(&self, payload: &[u8]) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        inner.records.push(payload.to_vec());
        inner.bytes += payload.len() as u64 + 8;
        Ok(Lsn(inner.base + inner.records.len() as u64))
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
        let inner = self.inner.lock();
        Ok(inner
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (Lsn(inner.base + i as u64 + 1), r.clone()))
            .collect())
    }

    fn record_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.records.len() as u64
    }

    fn byte_size(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        let mut inner = self.inner.lock();
        let drop_n = upto
            .0
            .saturating_sub(inner.base)
            .min(inner.records.len() as u64) as usize;
        let dropped_bytes: u64 = inner
            .records
            .drain(..drop_n)
            .map(|r| r.len() as u64 + 8)
            .sum();
        inner.bytes -= dropped_bytes;
        inner.base += drop_n as u64;
        Ok(())
    }
}

/// File-backed log.
///
/// Layout: a 16-byte header `[magic u64][base_lsn u64]` followed by
/// CRC-framed records. `base_lsn` is the LSN of the last truncated
/// record (0 for a fresh log); it keeps LSNs stable across
/// [`truncate_prefix`](LogSink::truncate_prefix), which rewrites the
/// file through a temp file + atomic rename.
pub struct FileLog {
    inner: Mutex<FileLogInner>,
}

const FILE_MAGIC: u64 = 0x4254_5249_4D57_414C; // "BTRIMWAL"
const HEADER_LEN: u64 = 16;

struct FileLogInner {
    path: std::path::PathBuf,
    /// Kept positioned at end-of-file between appends, so the append
    /// fast path is pure buffered writes — no seek, no syscall until
    /// the buffer fills or a flush (commit boundary) drains it.
    writer: BufWriter<File>,
    base: u64,
    count: u64,
    bytes: u64,
}

impl FileLog {
    /// Open (or create) a log file, scanning existing intact records to
    /// position the sequence counter.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let base = if len < HEADER_LEN {
            // Fresh (or header-less legacy) log: write a header.
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&FILE_MAGIC.to_le_bytes())?;
            file.write_all(&0u64.to_le_bytes())?;
            0
        } else {
            let mut hdr = [0u8; 16];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut hdr)?;
            let magic = u64::from_le_bytes(hdr[..8].try_into().unwrap());
            if magic != FILE_MAGIC {
                return Err(btrim_common::BtrimError::Corrupt(
                    "log file header magic mismatch".into(),
                ));
            }
            u64::from_le_bytes(hdr[8..].try_into().unwrap())
        };
        let (count, end) = Self::scan(&mut file)?;
        // Truncate any torn tail so future appends start clean.
        file.set_len(end)?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileLog {
            inner: Mutex::new(FileLogInner {
                path: path.to_path_buf(),
                writer: BufWriter::new(file),
                base,
                count: base + count,
                bytes: end - HEADER_LEN,
            }),
        })
    }

    /// Count intact records and the byte offset where they end.
    fn scan(file: &mut File) -> Result<(u64, u64)> {
        file.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let mut off = 0usize;
        let mut count = 0u64;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            if off + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            off += 8 + len;
            count += 1;
        }
        Ok((count, HEADER_LEN + off as u64))
    }

    /// Read every intact record with its LSN (lock held by caller).
    /// Drains the write buffer, reads through the raw file, and leaves
    /// the cursor back at end-of-file for the next append.
    fn read_locked(inner: &mut FileLogInner) -> Result<Vec<(Lsn, Vec<u8>)>> {
        inner.writer.flush()?;
        let file = inner.writer.get_mut();
        file.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        file.seek(SeekFrom::End(0))?;
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            if off + 8 + len > data.len() {
                break;
            }
            let payload = &data[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                break;
            }
            out.push((Lsn(inner.base + out.len() as u64 + 1), payload.to_vec()));
            off += 8 + len;
        }
        Ok(out)
    }

    /// After a failed append the `BufWriter` may hold — and the file
    /// may already contain — part of a frame. Drop the buffered bytes
    /// *without flushing* and truncate the file back to the end of the
    /// last intact record, so a later successful flush cannot persist
    /// a torn frame: recovery stops at the first corrupt frame and
    /// would otherwise silently discard every acknowledged record
    /// behind it. Best-effort: if the writer cannot be rebuilt the
    /// original append error still reaches the caller.
    fn discard_partial_append(inner: &mut FileLogInner) {
        let good_end = HEADER_LEN + inner.bytes;
        let spare = match inner.writer.get_ref().try_clone() {
            Ok(f) => f,
            Err(_) => match OpenOptions::new().read(true).write(true).open(&inner.path) {
                Ok(f) => f,
                Err(_) => return,
            },
        };
        // `into_parts` discards the buffer without flushing it.
        let old = std::mem::replace(&mut inner.writer, BufWriter::new(spare));
        let (file, _partial_frame) = old.into_parts();
        let _ = file.set_len(good_end);
        let _ = inner.writer.get_mut().seek(SeekFrom::Start(good_end));
    }
}

impl LogSink for FileLog {
    fn append(&self, payload: &[u8]) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        // Frame header on the stack; the cursor is already at
        // end-of-file, so this is two buffered writes and nothing else.
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        let wrote = inner
            .writer
            .write_all(&header)
            .and_then(|()| inner.writer.write_all(payload));
        if let Err(e) = wrote {
            Self::discard_partial_append(&mut inner);
            return Err(e.into());
        }
        inner.count += 1;
        inner.bytes += payload.len() as u64 + 8;
        Ok(Lsn(inner.count))
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        inner.writer.get_ref().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
        let mut inner = self.inner.lock();
        Self::read_locked(&mut inner)
    }

    fn record_count(&self) -> u64 {
        self.inner.lock().count
    }

    fn byte_size(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        let mut inner = self.inner.lock();
        if upto.0 <= inner.base {
            return Ok(()); // nothing to drop
        }
        let keep: Vec<(Lsn, Vec<u8>)> = Self::read_locked(&mut inner)?
            .into_iter()
            .filter(|(lsn, _)| *lsn > upto)
            .collect();
        let new_base = upto.0.min(inner.count);
        // Rewrite through a temp file, then rename into place.
        let tmp_path = inner.path.with_extension("wal.tmp");
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            tmp.write_all(&FILE_MAGIC.to_le_bytes())?;
            tmp.write_all(&new_base.to_le_bytes())?;
            let mut bytes = 0u64;
            for (_, payload) in &keep {
                tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
                tmp.write_all(&crc32(payload).to_le_bytes())?;
                tmp.write_all(payload)?;
                bytes += payload.len() as u64 + 8;
            }
            tmp.sync_data()?;
            inner.bytes = bytes;
        }
        std::fs::rename(&tmp_path, &inner.path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&inner.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.writer = BufWriter::new(file);
        inner.base = new_base;
        Ok(())
    }
}

/// Typed writer over a sink: encodes records and supports group flush.
pub struct LogWriter<R> {
    sink: std::sync::Arc<dyn LogSink>,
    /// Optional latency histograms (nanoseconds) for appends and
    /// flushes; attached by the engine's observability layer. Held as
    /// bare histograms so this crate stays independent of `btrim-obs`.
    append_hist: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    flush_hist: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    _marker: std::marker::PhantomData<fn(R)>,
}

impl<R> LogWriter<R>
where
    R: crate::record::Encodable,
{
    /// Wrap a sink.
    pub fn new(sink: std::sync::Arc<dyn LogSink>) -> Self {
        LogWriter {
            sink,
            append_hist: None,
            flush_hist: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Attach append/flush latency histograms (builder style, like the
    /// buffer cache's `with_io_retry`).
    pub fn with_histograms(
        mut self,
        append: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
        flush: Option<std::sync::Arc<btrim_common::LatencyHistogram>>,
    ) -> Self {
        self.append_hist = append;
        self.flush_hist = flush;
        self
    }

    /// The underlying sink.
    pub fn sink(&self) -> &std::sync::Arc<dyn LogSink> {
        &self.sink
    }

    /// Append one record.
    pub fn append(&self, record: &R) -> Result<Lsn> {
        let t = self.append_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.append(&record.encode());
        if let (Some(h), Some(t)) = (&self.append_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Durably flush (commit boundary).
    pub fn flush(&self) -> Result<()> {
        let t = self.flush_hist.as_ref().map(|_| std::time::Instant::now());
        let out = self.sink.flush();
        if let (Some(h), Some(t)) = (&self.flush_hist, t) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Decode every intact record.
    pub fn read_all(&self) -> Result<Vec<(Lsn, R)>> {
        self.sink
            .read_all()?
            .into_iter()
            .map(|(lsn, bytes)| R::decode(&bytes).map(|r| (lsn, r)))
            .collect()
    }

    /// Decode records until the first one that fails, returning the
    /// decodable prefix plus the number of records dropped behind it.
    ///
    /// Frame-level corruption is already truncated by the sink's CRC
    /// contract; this extends the same truncate-at-first-bad-record
    /// policy to the decode layer, so recovery can salvage the intact
    /// prefix of a log whose tail carries a corrupt (but CRC-framed)
    /// record instead of failing wholesale.
    pub fn read_all_salvage(&self) -> Result<(Vec<(Lsn, R)>, u64)> {
        let raw = self.sink.read_all()?;
        let total = raw.len();
        let mut out = Vec::with_capacity(total);
        for (lsn, bytes) in raw {
            match R::decode(&bytes) {
                Ok(r) => out.push((lsn, r)),
                Err(_) => break,
            }
        }
        let dropped = (total - out.len()) as u64;
        Ok((out, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memlog_append_read_roundtrip() {
        let log = MemLog::new();
        assert_eq!(log.append(b"one").unwrap(), Lsn(1));
        assert_eq!(log.append(b"two").unwrap(), Lsn(2));
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (Lsn(1), b"one".to_vec()));
        assert_eq!(all[1], (Lsn(2), b"two".to_vec()));
        assert_eq!(log.record_count(), 2);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrim-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn filelog_roundtrip_and_reopen() {
        let path = tmp("log1.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta").unwrap();
            log.flush().unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 2);
            let all = log.read_all().unwrap();
            assert_eq!(all[1].1, b"beta");
            // Appends continue the sequence.
            assert_eq!(log.append(b"gamma").unwrap(), Lsn(3));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filelog_tolerates_torn_tail() {
        let path = tmp("log2.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"good record").unwrap();
            log.flush().unwrap();
        }
        // Simulate a torn write: append garbage half-frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[42u8; 7]).unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 1, "torn tail ignored");
            let all = log.read_all().unwrap();
            assert_eq!(all.len(), 1);
            assert_eq!(all[0].1, b"good record");
            // New appends after the truncated tail still read back.
            log.append(b"after crash").unwrap();
            assert_eq!(log.read_all().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_leaves_no_torn_frame_behind() {
        let path = tmp("log5.wal");
        let log = FileLog::open(&path).unwrap();
        log.append(b"keep").unwrap();
        log.flush().unwrap();
        {
            // Simulate an append that failed mid-frame: part of the
            // frame already flushed to the file, part still buffered.
            let mut inner = log.inner.lock();
            inner.writer.write_all(&[0xAB; 5]).unwrap();
            inner.writer.flush().unwrap();
            inner.writer.write_all(&[0xCD; 3]).unwrap();
            FileLog::discard_partial_append(&mut inner);
        }
        // Later appends land right after the last intact record, and
        // neither the live reader nor a reopen scan sees torn bytes.
        log.append(b"after").unwrap();
        log.flush().unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(
            all,
            vec![(Lsn(1), b"keep".to_vec()), (Lsn(2), b"after".to_vec())]
        );
        drop(log);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.record_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_all_salvage_truncates_at_first_bad_decode() {
        use crate::record::PageLogRecord;
        use btrim_common::TxnId;
        let sink = std::sync::Arc::new(MemLog::new());
        let w: LogWriter<PageLogRecord> = LogWriter::new(sink.clone());
        w.append(&PageLogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&PageLogRecord::Abort { txn: TxnId(1) }).unwrap();
        // A CRC-framed but undecodable record mid-log (e.g. written by
        // a lying device), followed by a good one.
        sink.append(&[0xFF, 0xFF]).unwrap();
        w.append(&PageLogRecord::Begin { txn: TxnId(2) }).unwrap();

        assert!(w.read_all().is_err(), "strict read fails wholesale");
        let (salvaged, dropped) = w.read_all_salvage().unwrap();
        assert_eq!(salvaged.len(), 2, "intact prefix survives");
        assert_eq!(dropped, 2, "bad record and everything behind it drop");
        assert_eq!(salvaged[1].1, PageLogRecord::Abort { txn: TxnId(1) });
    }

    #[test]
    fn filelog_detects_corrupt_payload() {
        let path = tmp("log3.wal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"aaaa").unwrap();
            log.append(b"bbbb").unwrap();
            log.flush().unwrap();
        }
        // Flip a byte in the second record's payload.
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut data = Vec::new();
            f.read_to_end(&mut data).unwrap();
            let last = data.len() - 1;
            data[last] ^= 0xFF;
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(&data).unwrap();
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 1, "corrupt record dropped");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;

    #[test]
    fn memlog_truncation_keeps_lsns_stable() {
        let log = MemLog::new();
        for i in 0..10u8 {
            log.append(&[i]).unwrap();
        }
        log.truncate_prefix(Lsn(4)).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (Lsn(5), vec![4u8]));
        assert_eq!(all[5], (Lsn(10), vec![9u8]));
        // Appends continue the global sequence.
        assert_eq!(log.append(b"x").unwrap(), Lsn(11));
        assert_eq!(log.record_count(), 11);
        // Truncating an already-dropped prefix is a no-op.
        log.truncate_prefix(Lsn(2)).unwrap();
        assert_eq!(log.read_all().unwrap().len(), 7);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrim-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn filelog_truncation_survives_reopen() {
        let path = tmp("t1.wal");
        {
            let log = FileLog::open(&path).unwrap();
            for i in 0..10u8 {
                log.append(&[i; 3]).unwrap();
            }
            let bytes_before = log.byte_size();
            log.truncate_prefix(Lsn(7)).unwrap();
            assert!(log.byte_size() < bytes_before, "bytes reclaimed");
            let all = log.read_all().unwrap();
            assert_eq!(all.len(), 3);
            assert_eq!(all[0], (Lsn(8), vec![7u8; 3]));
            // Appends keep the sequence after truncation.
            assert_eq!(log.append(b"new").unwrap(), Lsn(11));
        }
        {
            let log = FileLog::open(&path).unwrap();
            assert_eq!(log.record_count(), 11);
            let all = log.read_all().unwrap();
            assert_eq!(all.first().unwrap().0, Lsn(8));
            assert_eq!(all.last().unwrap(), &(Lsn(11), b"new".to_vec()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filelog_truncate_everything_then_append() {
        let path = tmp("t2.wal");
        let log = FileLog::open(&path).unwrap();
        for i in 0..5u8 {
            log.append(&[i]).unwrap();
        }
        log.truncate_prefix(Lsn(5)).unwrap();
        assert!(log.read_all().unwrap().is_empty());
        assert_eq!(log.append(b"a").unwrap(), Lsn(6));
        assert_eq!(log.read_all().unwrap(), vec![(Lsn(6), b"a".to_vec())]);
        std::fs::remove_file(&path).unwrap();
    }
}
