//! Log analysis for recovery.
//!
//! The engine drives recovery in lock-step (§II): the page-store log is
//! analysed and replayed first (redo winners, undo losers), then the
//! redo-only IMRS log is replayed forward. This module implements the
//! analysis pass; the physical replay lives in the engine, which owns
//! the stores the records apply to.

use std::collections::{HashMap, HashSet};

use btrim_common::{Lsn, Timestamp, TxnId};

use crate::record::PageLogRecord;

/// Outcome of the analysis pass over `syslogs`.
#[derive(Debug, Default)]
pub struct LogAnalysis {
    /// Committed transactions and their commit timestamps.
    pub winners: HashMap<TxnId, Timestamp>,
    /// Transactions with a Begin but no Commit/Abort (in-flight at
    /// crash): their changes must be undone.
    pub losers: HashSet<TxnId>,
    /// Transactions that aborted cleanly (already undone before the
    /// crash, because our undo happens online at rollback).
    pub aborted: HashSet<TxnId>,
    /// LSN of the last checkpoint record, if any. Redo may start here
    /// because all earlier page changes were flushed.
    pub last_checkpoint: Option<Lsn>,
    /// Highest commit timestamp seen (clock resume point).
    pub max_commit_ts: Timestamp,
}

/// Analyse the page-store log: classify transactions and find the last
/// checkpoint.
pub fn analyze_page_log(records: &[(Lsn, PageLogRecord)]) -> LogAnalysis {
    let mut a = LogAnalysis::default();
    let mut seen: HashSet<TxnId> = HashSet::new();
    for (lsn, rec) in records {
        match rec {
            PageLogRecord::Begin { txn } => {
                seen.insert(*txn);
                a.losers.insert(*txn);
            }
            PageLogRecord::Commit { txn, ts } => {
                a.losers.remove(txn);
                a.winners.insert(*txn, *ts);
                if *ts > a.max_commit_ts {
                    a.max_commit_ts = *ts;
                }
            }
            PageLogRecord::Abort { txn } => {
                a.losers.remove(txn);
                a.aborted.insert(*txn);
            }
            PageLogRecord::Checkpoint => {
                a.last_checkpoint = Some(*lsn);
            }
            PageLogRecord::Insert { txn, .. }
            | PageLogRecord::Update { txn, .. }
            | PageLogRecord::Delete { txn, .. } => {
                // A change record without Begin still marks the txn as
                // in-flight until a Commit/Abort shows up.
                if !seen.contains(txn) && !a.winners.contains_key(txn) && !a.aborted.contains(txn) {
                    seen.insert(*txn);
                    a.losers.insert(*txn);
                }
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_common::{PageId, PartitionId, RowId, SlotId};

    fn ins(txn: u64) -> PageLogRecord {
        PageLogRecord::Insert {
            txn: TxnId(txn),
            partition: PartitionId(0),
            row: RowId(1),
            page: PageId(0),
            slot: SlotId(0),
            data: vec![1],
        }
    }

    fn with_lsns(recs: Vec<PageLogRecord>) -> Vec<(Lsn, PageLogRecord)> {
        recs.into_iter()
            .enumerate()
            .map(|(i, r)| (Lsn(i as u64 + 1), r))
            .collect()
    }

    #[test]
    fn classifies_winners_losers_aborted() {
        let log = with_lsns(vec![
            PageLogRecord::Begin { txn: TxnId(1) },
            ins(1),
            PageLogRecord::Commit {
                txn: TxnId(1),
                ts: Timestamp(10),
            },
            PageLogRecord::Begin { txn: TxnId(2) },
            ins(2),
            PageLogRecord::Abort { txn: TxnId(2) },
            PageLogRecord::Begin { txn: TxnId(3) },
            ins(3),
            // txn 3 never finishes: loser.
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.winners.get(&TxnId(1)), Some(&Timestamp(10)));
        assert!(a.aborted.contains(&TxnId(2)));
        assert!(a.losers.contains(&TxnId(3)));
        assert!(!a.losers.contains(&TxnId(1)));
        assert!(!a.losers.contains(&TxnId(2)));
        assert_eq!(a.max_commit_ts, Timestamp(10));
    }

    #[test]
    fn change_without_begin_counts_as_loser() {
        let log = with_lsns(vec![ins(9)]);
        let a = analyze_page_log(&log);
        assert!(a.losers.contains(&TxnId(9)));
    }

    #[test]
    fn last_checkpoint_wins() {
        let log = with_lsns(vec![
            PageLogRecord::Checkpoint,
            PageLogRecord::Begin { txn: TxnId(1) },
            PageLogRecord::Checkpoint,
            PageLogRecord::Commit {
                txn: TxnId(1),
                ts: Timestamp(5),
            },
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.last_checkpoint, Some(Lsn(3)));
    }

    #[test]
    fn empty_log_analysis() {
        let a = analyze_page_log(&[]);
        assert!(a.winners.is_empty());
        assert!(a.losers.is_empty());
        assert_eq!(a.last_checkpoint, None);
        assert_eq!(a.max_commit_ts, Timestamp::ZERO);
    }
}
