//! Log analysis for recovery.
//!
//! The engine drives recovery in lock-step (§II): the page-store log is
//! analysed and replayed first (redo winners, undo losers), then the
//! redo-only IMRS log is replayed forward. This module implements the
//! analysis pass; the physical replay lives in the engine, which owns
//! the stores the records apply to.

use std::collections::{HashMap, HashSet};

use btrim_common::{Lsn, Timestamp, TxnId};

use crate::record::PageLogRecord;

/// Outcome of the analysis pass over `syslogs`.
#[derive(Debug, Default)]
pub struct LogAnalysis {
    /// Committed transactions and their commit timestamps.
    pub winners: HashMap<TxnId, Timestamp>,
    /// Transactions with a Begin but no Commit/Abort (in-flight at
    /// crash): their changes must be undone.
    pub losers: HashSet<TxnId>,
    /// Transactions that aborted cleanly (already undone before the
    /// crash, because our undo happens online at rollback).
    pub aborted: HashSet<TxnId>,
    /// LSN of the last **complete** checkpoint, if any: a legacy
    /// [`Checkpoint`](PageLogRecord::Checkpoint) record, or the
    /// `CheckpointBegin` of a begin/end pair whose end arrived. A torn
    /// pair (Begin without End) is ignored, falling back to the
    /// previous complete checkpoint.
    pub last_checkpoint: Option<Lsn>,
    /// Redo floor certified by the last complete checkpoint: every
    /// page change with `lsn < redo_low_water` is durably on disk.
    /// For a legacy checkpoint this equals its LSN; for a fuzzy pair
    /// it is the `low_water` carried by the Begin record (or the
    /// Begin's own LSN when the record encodes `Lsn::ZERO`, meaning no
    /// writers were in flight).
    pub redo_low_water: Option<Lsn>,
    /// Checkpoint Begin records left open at the log tail (crash
    /// mid-checkpoint). Diagnostic only — torn pairs certify nothing.
    pub torn_checkpoints: u64,
    /// Highest commit timestamp seen (clock resume point).
    pub max_commit_ts: Timestamp,
}

impl LogAnalysis {
    /// LSN below which forward redo may skip change records. Records
    /// with `lsn < redo_floor()` are certified durable; the floor
    /// itself must still replay.
    pub fn redo_floor(&self) -> Lsn {
        self.redo_low_water.unwrap_or(Lsn::ZERO)
    }
}

/// Analyse the page-store log: classify transactions and find the last
/// checkpoint.
pub fn analyze_page_log(records: &[(Lsn, PageLogRecord)]) -> LogAnalysis {
    let mut a = LogAnalysis::default();
    let mut seen: HashSet<TxnId> = HashSet::new();
    // Open fuzzy checkpoint, if any: (begin lsn, effective low-water).
    let mut pending_ckpt: Option<(Lsn, Lsn)> = None;
    for (lsn, rec) in records {
        match rec {
            PageLogRecord::Begin { txn } => {
                seen.insert(*txn);
                a.losers.insert(*txn);
            }
            PageLogRecord::Commit { txn, ts } => {
                a.losers.remove(txn);
                a.winners.insert(*txn, *ts);
                if *ts > a.max_commit_ts {
                    a.max_commit_ts = *ts;
                }
            }
            PageLogRecord::Abort { txn } => {
                a.losers.remove(txn);
                a.aborted.insert(*txn);
            }
            PageLogRecord::Checkpoint => {
                a.last_checkpoint = Some(*lsn);
                a.redo_low_water = Some(*lsn);
            }
            PageLogRecord::CheckpointBegin { low_water, .. } => {
                // A Begin overtaking an earlier unmatched Begin means
                // the earlier checkpoint crashed mid-flight: torn.
                if pending_ckpt.is_some() {
                    a.torn_checkpoints += 1;
                }
                let floor = if low_water.0 == 0 { *lsn } else { *low_water };
                pending_ckpt = Some((*lsn, floor));
            }
            PageLogRecord::CheckpointEnd { begin_lsn } => {
                // Only the matching pair certifies; an End whose Begin
                // was truncated away (or never written) is ignored.
                if let Some((begin, floor)) = pending_ckpt.take() {
                    if begin == *begin_lsn {
                        a.last_checkpoint = Some(begin);
                        a.redo_low_water = Some(floor);
                    }
                }
            }
            PageLogRecord::Insert { txn, .. }
            | PageLogRecord::Update { txn, .. }
            | PageLogRecord::Delete { txn, .. } => {
                // A change record without Begin still marks the txn as
                // in-flight until a Commit/Abort shows up.
                if !seen.contains(txn) && !a.winners.contains_key(txn) && !a.aborted.contains(txn) {
                    seen.insert(*txn);
                    a.losers.insert(*txn);
                }
            }
        }
    }
    if pending_ckpt.is_some() {
        a.torn_checkpoints += 1;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_common::{PageId, PartitionId, RowId, SlotId};

    fn ins(txn: u64) -> PageLogRecord {
        PageLogRecord::Insert {
            txn: TxnId(txn),
            partition: PartitionId(0),
            row: RowId(1),
            page: PageId(0),
            slot: SlotId(0),
            data: vec![1],
        }
    }

    fn with_lsns(recs: Vec<PageLogRecord>) -> Vec<(Lsn, PageLogRecord)> {
        recs.into_iter()
            .enumerate()
            .map(|(i, r)| (Lsn(i as u64 + 1), r))
            .collect()
    }

    #[test]
    fn classifies_winners_losers_aborted() {
        let log = with_lsns(vec![
            PageLogRecord::Begin { txn: TxnId(1) },
            ins(1),
            PageLogRecord::Commit {
                txn: TxnId(1),
                ts: Timestamp(10),
            },
            PageLogRecord::Begin { txn: TxnId(2) },
            ins(2),
            PageLogRecord::Abort { txn: TxnId(2) },
            PageLogRecord::Begin { txn: TxnId(3) },
            ins(3),
            // txn 3 never finishes: loser.
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.winners.get(&TxnId(1)), Some(&Timestamp(10)));
        assert!(a.aborted.contains(&TxnId(2)));
        assert!(a.losers.contains(&TxnId(3)));
        assert!(!a.losers.contains(&TxnId(1)));
        assert!(!a.losers.contains(&TxnId(2)));
        assert_eq!(a.max_commit_ts, Timestamp(10));
    }

    #[test]
    fn change_without_begin_counts_as_loser() {
        let log = with_lsns(vec![ins(9)]);
        let a = analyze_page_log(&log);
        assert!(a.losers.contains(&TxnId(9)));
    }

    #[test]
    fn last_checkpoint_wins() {
        let log = with_lsns(vec![
            PageLogRecord::Checkpoint,
            PageLogRecord::Begin { txn: TxnId(1) },
            PageLogRecord::Checkpoint,
            PageLogRecord::Commit {
                txn: TxnId(1),
                ts: Timestamp(5),
            },
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.last_checkpoint, Some(Lsn(3)));
    }

    #[test]
    fn empty_log_analysis() {
        let a = analyze_page_log(&[]);
        assert!(a.winners.is_empty());
        assert!(a.losers.is_empty());
        assert_eq!(a.last_checkpoint, None);
        assert_eq!(a.redo_low_water, None);
        assert_eq!(a.redo_floor(), Lsn::ZERO);
        assert_eq!(a.max_commit_ts, Timestamp::ZERO);
    }

    fn ckpt_begin(low_water: u64) -> PageLogRecord {
        PageLogRecord::CheckpointBegin {
            low_water: Lsn(low_water),
            dirty_pages: vec![PageId(3)],
        }
    }

    #[test]
    fn complete_fuzzy_pair_sets_floor_from_low_water() {
        let log = with_lsns(vec![
            PageLogRecord::Begin { txn: TxnId(1) }, // lsn 1, still active
            ins(1),                                 // lsn 2
            ckpt_begin(1),                          // lsn 3, low-water = txn 1's Begin
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(3) }, // lsn 4
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.last_checkpoint, Some(Lsn(3)));
        assert_eq!(a.redo_low_water, Some(Lsn(1)));
        assert_eq!(a.redo_floor(), Lsn(1));
        assert_eq!(a.torn_checkpoints, 0);
    }

    #[test]
    fn zero_low_water_means_begin_own_lsn() {
        let log = with_lsns(vec![
            ckpt_begin(0), // lsn 1: no in-flight writers at begin
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(1) },
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.redo_low_water, Some(Lsn(1)));
    }

    #[test]
    fn torn_pair_falls_back_to_previous_complete_checkpoint() {
        let log = with_lsns(vec![
            ckpt_begin(0),                                      // lsn 1: completes below
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(1) }, // lsn 2
            PageLogRecord::Begin { txn: TxnId(5) },             // lsn 3
            ckpt_begin(3), // lsn 4: crash before its End — torn
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(
            a.last_checkpoint,
            Some(Lsn(1)),
            "torn pair must not move the floor"
        );
        assert_eq!(a.redo_low_water, Some(Lsn(1)));
        assert_eq!(a.torn_checkpoints, 1);
    }

    #[test]
    fn end_without_matching_begin_is_ignored() {
        // An End whose Begin was truncated away, plus an End that
        // names the wrong Begin (overlapping checkpoints can't happen,
        // but a corrupt record could claim anything).
        let log = with_lsns(vec![
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(77) }, // lsn 1: orphan
            ckpt_begin(0),                                       // lsn 2
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(99) }, // lsn 3: mismatched
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.last_checkpoint, None);
        assert_eq!(a.redo_low_water, None);
    }

    #[test]
    fn later_torn_begin_then_legacy_checkpoint_still_counts_torn() {
        let log = with_lsns(vec![
            ckpt_begin(0),             // lsn 1: torn (overtaken)
            ckpt_begin(0),             // lsn 2: torn (never ends)
            PageLogRecord::Checkpoint, // lsn 3: legacy, complete
        ]);
        let a = analyze_page_log(&log);
        assert_eq!(a.last_checkpoint, Some(Lsn(3)));
        assert_eq!(a.redo_low_water, Some(Lsn(3)));
        assert_eq!(a.torn_checkpoints, 2);
    }
}
