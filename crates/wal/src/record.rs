//! Log-record vocabulary for the two transaction logs.
//!
//! Page-store records ([`PageLogRecord`]) carry before-images for undo;
//! IMRS records ([`ImrsLogRecord`]) are redo-only and are written at
//! commit time, already stamped with the commit timestamp.

use btrim_common::codec::{Decoder, Encoder};
use btrim_common::{BtrimError, Lsn, PageId, PartitionId, Result, RowId, SlotId, Timestamp, TxnId};

/// A record type that can be framed into a log sink.
pub trait Encodable: Sized {
    /// Serialize to bytes.
    fn encode(&self) -> Vec<u8>;
    /// Deserialize from bytes.
    fn decode(data: &[u8]) -> Result<Self>;
}

/// Compact tag mirroring the IMRS `RowOrigin` enum in log records
/// (wal does not depend on imrs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RowOriginTag {
    /// Row first inserted in the IMRS.
    Inserted = 0,
    /// Row migrated (update) from the page store.
    Migrated = 1,
    /// Row cached (select) from the page store.
    Cached = 2,
}

impl RowOriginTag {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(RowOriginTag::Inserted),
            1 => Ok(RowOriginTag::Migrated),
            2 => Ok(RowOriginTag::Cached),
            _ => Err(BtrimError::Corrupt(format!("bad origin tag {v}"))),
        }
    }
}

/// Records of the redo-undo page-store log (`syslogs`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PageLogRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit; `ts` is the database commit timestamp.
    Commit { txn: TxnId, ts: Timestamp },
    /// Transaction rollback completed.
    Abort { txn: TxnId },
    /// Row inserted on a heap page.
    Insert {
        txn: TxnId,
        partition: PartitionId,
        row: RowId,
        page: PageId,
        slot: SlotId,
        data: Vec<u8>,
    },
    /// Row updated in place (before- and after-image).
    Update {
        txn: TxnId,
        partition: PartitionId,
        row: RowId,
        page: PageId,
        slot: SlotId,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// Row deleted from a heap page (before-image for undo).
    Delete {
        txn: TxnId,
        partition: PartitionId,
        row: RowId,
        page: PageId,
        slot: SlotId,
        old: Vec<u8>,
    },
    /// Checkpoint: every page change below this point is on disk.
    /// Legacy stop-the-world form; still decoded and honored by
    /// analysis, no longer written by the fuzzy checkpoint path.
    Checkpoint,
    /// Fuzzy checkpoint opened. `low_water` is the redo floor this
    /// checkpoint will certify **once its matching
    /// [`CheckpointEnd`](PageLogRecord::CheckpointEnd) lands**: the
    /// minimum of this record's own LSN and the first-record LSN of
    /// every transaction in flight when the checkpoint began
    /// (`Lsn::ZERO` encodes "no in-flight writers — use this record's
    /// own LSN"). `dirty_pages` is the dirty-page table snapshotted at
    /// begin; the checkpoint flushes exactly these pages, in batches,
    /// without quiescing writers. A Begin with no matching End is a
    /// torn checkpoint and certifies nothing.
    CheckpointBegin {
        low_water: Lsn,
        dirty_pages: Vec<PageId>,
    },
    /// Fuzzy checkpoint closed: every page named in the
    /// [`CheckpointBegin`](PageLogRecord::CheckpointBegin) at
    /// `begin_lsn` has been written back and synced. Only the pair
    /// (matched by `begin_lsn`) moves the redo floor.
    CheckpointEnd { begin_lsn: Lsn },
}

impl Encodable for PageLogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            PageLogRecord::Begin { txn } => {
                e.put_u8(0);
                e.put_u64(txn.0);
            }
            PageLogRecord::Commit { txn, ts } => {
                e.put_u8(1);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
            }
            PageLogRecord::Abort { txn } => {
                e.put_u8(2);
                e.put_u64(txn.0);
            }
            PageLogRecord::Insert {
                txn,
                partition,
                row,
                page,
                slot,
                data,
            } => {
                e.put_u8(3);
                e.put_u64(txn.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_u32(page.0);
                e.put_u16(slot.0);
                e.put_bytes(data);
            }
            PageLogRecord::Update {
                txn,
                partition,
                row,
                page,
                slot,
                old,
                new,
            } => {
                e.put_u8(4);
                e.put_u64(txn.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_u32(page.0);
                e.put_u16(slot.0);
                e.put_bytes(old);
                e.put_bytes(new);
            }
            PageLogRecord::Delete {
                txn,
                partition,
                row,
                page,
                slot,
                old,
            } => {
                e.put_u8(5);
                e.put_u64(txn.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_u32(page.0);
                e.put_u16(slot.0);
                e.put_bytes(old);
            }
            PageLogRecord::Checkpoint => {
                e.put_u8(6);
            }
            PageLogRecord::CheckpointBegin {
                low_water,
                dirty_pages,
            } => {
                e.put_u8(7);
                e.put_u64(low_water.0);
                e.put_u32(dirty_pages.len() as u32);
                for p in dirty_pages {
                    e.put_u32(p.0);
                }
            }
            PageLogRecord::CheckpointEnd { begin_lsn } => {
                e.put_u8(8);
                e.put_u64(begin_lsn.0);
            }
        }
        e.into_vec()
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(data);
        let tag = d.get_u8()?;
        Ok(match tag {
            0 => PageLogRecord::Begin {
                txn: TxnId(d.get_u64()?),
            },
            1 => PageLogRecord::Commit {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
            },
            2 => PageLogRecord::Abort {
                txn: TxnId(d.get_u64()?),
            },
            3 => PageLogRecord::Insert {
                txn: TxnId(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                page: PageId(d.get_u32()?),
                slot: SlotId(d.get_u16()?),
                data: d.get_bytes()?,
            },
            4 => PageLogRecord::Update {
                txn: TxnId(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                page: PageId(d.get_u32()?),
                slot: SlotId(d.get_u16()?),
                old: d.get_bytes()?,
                new: d.get_bytes()?,
            },
            5 => PageLogRecord::Delete {
                txn: TxnId(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                page: PageId(d.get_u32()?),
                slot: SlotId(d.get_u16()?),
                old: d.get_bytes()?,
            },
            6 => PageLogRecord::Checkpoint,
            7 => {
                let low_water = Lsn(d.get_u64()?);
                let n = d.get_u32()? as usize;
                let mut dirty_pages = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    dirty_pages.push(PageId(d.get_u32()?));
                }
                PageLogRecord::CheckpointBegin {
                    low_water,
                    dirty_pages,
                }
            }
            8 => PageLogRecord::CheckpointEnd {
                begin_lsn: Lsn(d.get_u64()?),
            },
            t => return Err(BtrimError::Corrupt(format!("bad page log tag {t}"))),
        })
    }
}

impl PageLogRecord {
    /// Transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            PageLogRecord::Begin { txn }
            | PageLogRecord::Commit { txn, .. }
            | PageLogRecord::Abort { txn }
            | PageLogRecord::Insert { txn, .. }
            | PageLogRecord::Update { txn, .. }
            | PageLogRecord::Delete { txn, .. } => Some(*txn),
            PageLogRecord::Checkpoint
            | PageLogRecord::CheckpointBegin { .. }
            | PageLogRecord::CheckpointEnd { .. } => None,
        }
    }
}

/// Records of the redo-only IMRS log (`sysimrslogs`). Every record is
/// written at commit with its commit timestamp; recovery is a single
/// forward replay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImrsLogRecord {
    /// Row entered the IMRS (insert, migration, or caching) with image.
    Insert {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        row: RowId,
        origin: RowOriginTag,
        data: Vec<u8>,
    },
    /// New committed image of an IMRS row.
    Update {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        row: RowId,
        data: Vec<u8>,
    },
    /// Committed delete of an IMRS row.
    Delete {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        row: RowId,
    },
    /// Row packed out of the IMRS (the paired page-store insert lives
    /// in syslogs). Carries the pack transaction's id so replay can
    /// gate the record on the syslog commit outcome of that
    /// transaction, exactly like DML records.
    Pack {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        row: RowId,
    },
    /// A batch of page-resident rows re-encoded into an immutable
    /// columnar frozen extent. `data` is the complete encoded extent
    /// (magic through CRC, self-validating); the paired page-store
    /// deletes live in syslogs under the same freeze transaction, so
    /// replay gates this record on that transaction's syslog verdict,
    /// exactly like Pack in the opposite direction.
    Freeze {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        extent: u32,
        data: Vec<u8>,
    },
    /// A single slot of a frozen extent stopped being the current
    /// version of its row: the row was thawed back to the IMRS for an
    /// update, or deleted outright. Redo re-marks the slot dead.
    ExtentRowGone {
        txn: TxnId,
        ts: Timestamp,
        partition: PartitionId,
        row: RowId,
        extent: u32,
        idx: u16,
    },
    /// Written by recovery: the listed transactions lost (crashed
    /// in-flight or aborted) and their earlier records in this log must
    /// never replay. The IMRS log is not truncated at checkpoints, but
    /// the page-store log — where Begin/Commit evidence lives — is, so
    /// the loser verdict has to be made durable here or a *second*
    /// recovery after a checkpoint would mistake stale loser records
    /// for committed work. Transaction ids are never reused across
    /// incarnations (recovery bumps the id floors above everything in
    /// both logs), so poisoning an id is safe forever.
    Discard { txns: Vec<TxnId> },
}

impl Encodable for ImrsLogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            ImrsLogRecord::Insert {
                txn,
                ts,
                partition,
                row,
                origin,
                data,
            } => {
                e.put_u8(0);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_u8(*origin as u8);
                e.put_bytes(data);
            }
            ImrsLogRecord::Update {
                txn,
                ts,
                partition,
                row,
                data,
            } => {
                e.put_u8(1);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_bytes(data);
            }
            ImrsLogRecord::Delete {
                txn,
                ts,
                partition,
                row,
            } => {
                e.put_u8(2);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
            }
            ImrsLogRecord::Pack {
                txn,
                ts,
                partition,
                row,
            } => {
                e.put_u8(3);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
            }
            ImrsLogRecord::Freeze {
                txn,
                ts,
                partition,
                extent,
                data,
            } => {
                e.put_u8(5);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u32(*extent);
                e.put_bytes(data);
            }
            ImrsLogRecord::ExtentRowGone {
                txn,
                ts,
                partition,
                row,
                extent,
                idx,
            } => {
                e.put_u8(6);
                e.put_u64(txn.0);
                e.put_u64(ts.0);
                e.put_u32(partition.0);
                e.put_u64(row.0);
                e.put_u32(*extent);
                e.put_u16(*idx);
            }
            ImrsLogRecord::Discard { txns } => {
                e.put_u8(4);
                e.put_u32(txns.len() as u32);
                for t in txns {
                    e.put_u64(t.0);
                }
            }
        }
        e.into_vec()
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(data);
        let tag = d.get_u8()?;
        Ok(match tag {
            0 => ImrsLogRecord::Insert {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                origin: RowOriginTag::from_u8(d.get_u8()?)?,
                data: d.get_bytes()?,
            },
            1 => ImrsLogRecord::Update {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                data: d.get_bytes()?,
            },
            2 => ImrsLogRecord::Delete {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
            },
            3 => ImrsLogRecord::Pack {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
            },
            4 => {
                let n = d.get_u32()? as usize;
                let mut txns = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    txns.push(TxnId(d.get_u64()?));
                }
                ImrsLogRecord::Discard { txns }
            }
            5 => ImrsLogRecord::Freeze {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                extent: d.get_u32()?,
                data: d.get_bytes()?,
            },
            6 => ImrsLogRecord::ExtentRowGone {
                txn: TxnId(d.get_u64()?),
                ts: Timestamp(d.get_u64()?),
                partition: PartitionId(d.get_u32()?),
                row: RowId(d.get_u64()?),
                extent: d.get_u32()?,
                idx: d.get_u16()?,
            },
            t => return Err(BtrimError::Corrupt(format!("bad imrs log tag {t}"))),
        })
    }
}

impl ImrsLogRecord {
    /// Transaction that produced the record (`None` for the
    /// recovery-written [`Discard`](ImrsLogRecord::Discard) marker).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            ImrsLogRecord::Insert { txn, .. }
            | ImrsLogRecord::Update { txn, .. }
            | ImrsLogRecord::Delete { txn, .. }
            | ImrsLogRecord::Pack { txn, .. }
            | ImrsLogRecord::Freeze { txn, .. }
            | ImrsLogRecord::ExtentRowGone { txn, .. } => Some(*txn),
            ImrsLogRecord::Discard { .. } => None,
        }
    }

    /// Commit timestamp carried by the record (`ZERO` for `Discard`).
    pub fn ts(&self) -> Timestamp {
        match self {
            ImrsLogRecord::Insert { ts, .. }
            | ImrsLogRecord::Update { ts, .. }
            | ImrsLogRecord::Delete { ts, .. }
            | ImrsLogRecord::Pack { ts, .. }
            | ImrsLogRecord::Freeze { ts, .. }
            | ImrsLogRecord::ExtentRowGone { ts, .. } => *ts,
            ImrsLogRecord::Discard { .. } => Timestamp::ZERO,
        }
    }

    /// Row the record concerns (`RowId(0)` for `Discard` and for
    /// `Freeze`, which carries a whole batch of rows in its extent).
    pub fn row(&self) -> RowId {
        match self {
            ImrsLogRecord::Insert { row, .. }
            | ImrsLogRecord::Update { row, .. }
            | ImrsLogRecord::Delete { row, .. }
            | ImrsLogRecord::Pack { row, .. }
            | ImrsLogRecord::ExtentRowGone { row, .. } => *row,
            ImrsLogRecord::Discard { .. } | ImrsLogRecord::Freeze { .. } => RowId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_page(r: PageLogRecord) {
        let bytes = r.encode();
        assert_eq!(PageLogRecord::decode(&bytes).unwrap(), r);
    }

    fn roundtrip_imrs(r: ImrsLogRecord) {
        let bytes = r.encode();
        assert_eq!(ImrsLogRecord::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn page_records_roundtrip() {
        roundtrip_page(PageLogRecord::Begin { txn: TxnId(7) });
        roundtrip_page(PageLogRecord::Commit {
            txn: TxnId(7),
            ts: Timestamp(99),
        });
        roundtrip_page(PageLogRecord::Abort { txn: TxnId(7) });
        roundtrip_page(PageLogRecord::Insert {
            txn: TxnId(1),
            partition: PartitionId(2),
            row: RowId(3),
            page: PageId(4),
            slot: SlotId(5),
            data: vec![1, 2, 3],
        });
        roundtrip_page(PageLogRecord::Update {
            txn: TxnId(1),
            partition: PartitionId(2),
            row: RowId(3),
            page: PageId(4),
            slot: SlotId(5),
            old: vec![9],
            new: vec![1, 2, 3],
        });
        roundtrip_page(PageLogRecord::Delete {
            txn: TxnId(1),
            partition: PartitionId(2),
            row: RowId(3),
            page: PageId(4),
            slot: SlotId(5),
            old: vec![7, 7],
        });
        roundtrip_page(PageLogRecord::Checkpoint);
        roundtrip_page(PageLogRecord::CheckpointBegin {
            low_water: Lsn(42),
            dirty_pages: vec![PageId(1), PageId(9), PageId(4000)],
        });
        roundtrip_page(PageLogRecord::CheckpointBegin {
            low_water: Lsn::ZERO,
            dirty_pages: vec![],
        });
        roundtrip_page(PageLogRecord::CheckpointEnd { begin_lsn: Lsn(43) });
    }

    #[test]
    fn imrs_records_roundtrip() {
        roundtrip_imrs(ImrsLogRecord::Insert {
            txn: TxnId(1),
            ts: Timestamp(10),
            partition: PartitionId(2),
            row: RowId(3),
            origin: RowOriginTag::Migrated,
            data: b"image".to_vec(),
        });
        roundtrip_imrs(ImrsLogRecord::Update {
            txn: TxnId(1),
            ts: Timestamp(11),
            partition: PartitionId(2),
            row: RowId(3),
            data: b"image2".to_vec(),
        });
        roundtrip_imrs(ImrsLogRecord::Delete {
            txn: TxnId(1),
            ts: Timestamp(12),
            partition: PartitionId(2),
            row: RowId(3),
        });
        roundtrip_imrs(ImrsLogRecord::Pack {
            txn: TxnId(9),
            ts: Timestamp(13),
            partition: PartitionId(2),
            row: RowId(3),
        });
        roundtrip_imrs(ImrsLogRecord::Discard {
            txns: vec![TxnId(4), TxnId(9), TxnId(1 << 63 | 5)],
        });
        roundtrip_imrs(ImrsLogRecord::Discard { txns: vec![] });
        roundtrip_imrs(ImrsLogRecord::Freeze {
            txn: TxnId(1 << 63 | 7),
            ts: Timestamp(14),
            partition: PartitionId(2),
            extent: 11,
            data: vec![0xBB; 300],
        });
        roundtrip_imrs(ImrsLogRecord::ExtentRowGone {
            txn: TxnId(5),
            ts: Timestamp(15),
            partition: PartitionId(2),
            row: RowId(77),
            extent: 11,
            idx: 42,
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PageLogRecord::decode(&[99]).is_err());
        assert!(ImrsLogRecord::decode(&[99]).is_err());
        assert!(PageLogRecord::decode(&[]).is_err());
    }

    #[test]
    fn txn_and_accessors() {
        assert_eq!(PageLogRecord::Checkpoint.txn(), None);
        assert_eq!(
            PageLogRecord::CheckpointBegin {
                low_water: Lsn(1),
                dirty_pages: vec![],
            }
            .txn(),
            None
        );
        assert_eq!(
            PageLogRecord::CheckpointEnd { begin_lsn: Lsn(1) }.txn(),
            None
        );
        assert_eq!(PageLogRecord::Begin { txn: TxnId(4) }.txn(), Some(TxnId(4)));
        let r = ImrsLogRecord::Pack {
            txn: TxnId(8),
            ts: Timestamp(5),
            partition: PartitionId(1),
            row: RowId(2),
        };
        assert_eq!(r.txn(), Some(TxnId(8)));
        assert_eq!(r.ts(), Timestamp(5));
        assert_eq!(r.row(), RowId(2));
        let d = ImrsLogRecord::Discard {
            txns: vec![TxnId(3)],
        };
        assert_eq!(d.txn(), None);
        assert_eq!(d.ts(), Timestamp::ZERO);
        let f = ImrsLogRecord::Freeze {
            txn: TxnId(6),
            ts: Timestamp(7),
            partition: PartitionId(1),
            extent: 3,
            data: vec![],
        };
        assert_eq!(f.txn(), Some(TxnId(6)));
        assert_eq!(f.ts(), Timestamp(7));
        assert_eq!(f.row(), RowId(0), "freeze carries a batch, not one row");
        let g = ImrsLogRecord::ExtentRowGone {
            txn: TxnId(6),
            ts: Timestamp(8),
            partition: PartitionId(1),
            row: RowId(9),
            extent: 3,
            idx: 0,
        };
        assert_eq!(g.txn(), Some(TxnId(6)));
        assert_eq!(g.row(), RowId(9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoders must never panic on arbitrary byte soup — a corrupt
        /// log tail surfaces as `Err(Corrupt)`, not a crash during
        /// recovery.
        #[test]
        fn page_record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = PageLogRecord::decode(&bytes);
        }

        #[test]
        fn imrs_record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ImrsLogRecord::decode(&bytes);
        }

        /// Round-trip stability under arbitrary payload contents.
        #[test]
        fn page_insert_roundtrips_any_payload(
            txn in any::<u64>(), part in any::<u32>(), row in any::<u64>(),
            page in any::<u32>(), slot in any::<u16>(),
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let rec = PageLogRecord::Insert {
                txn: TxnId(txn),
                partition: PartitionId(part),
                row: RowId(row),
                page: PageId(page),
                slot: SlotId(slot),
                data,
            };
            prop_assert_eq!(PageLogRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }
}
