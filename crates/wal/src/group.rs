//! Group commit: coalesce concurrent durable-commit flushes.
//!
//! With `durable_commits` every committing transaction needs its log
//! records on stable storage before acknowledging. Syncing the device
//! once per transaction serializes commits behind the sync latency;
//! the classic fix is leader/follower group commit: the first waiter
//! becomes the leader and performs one sync that covers every record
//! appended before it started, and all concurrent waiters ride along.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use btrim_common::Result;

use crate::log::LogSink;

#[derive(Default)]
struct State {
    /// Highest flush generation requested by a committer.
    requested: u64,
    /// Highest generation known durable.
    flushed: u64,
    /// Whether a leader is currently syncing.
    flushing: bool,
}

/// Leader/follower flush coalescer over one log sink.
pub struct GroupCommitter {
    sink: Arc<dyn LogSink>,
    state: Mutex<State>,
    cv: Condvar,
    syncs: std::sync::atomic::AtomicU64,
    /// Optional fsync latency histogram (nanoseconds): records the
    /// leader's device sync only — followers ride along for free and
    /// timing them would double-count the same sync.
    flush_hist: Option<Arc<btrim_common::LatencyHistogram>>,
}

impl GroupCommitter {
    /// Wrap a sink.
    pub fn new(sink: Arc<dyn LogSink>) -> Self {
        GroupCommitter {
            sink,
            state: Mutex::with_rank(parking_lot::lock_rank::GROUP_COMMIT, State::default()),
            cv: Condvar::new(),
            syncs: std::sync::atomic::AtomicU64::new(0),
            flush_hist: None,
        }
    }

    /// Attach a leader-sync latency histogram (builder style).
    pub fn with_histogram(mut self, hist: Option<Arc<btrim_common::LatencyHistogram>>) -> Self {
        self.flush_hist = hist;
        self
    }

    /// Device syncs actually performed (tests / stats).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Make everything appended so far durable. Returns once a sync
    /// covering the caller's records has completed; concurrent callers
    /// share syncs.
    pub fn commit_flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        st.requested += 1;
        let my_gen = st.requested;
        loop {
            if st.flushed >= my_gen {
                return Ok(());
            }
            if !st.flushing {
                // Become the leader: sync covers every request made so
                // far (their appends happened before they requested).
                st.flushing = true;
                let covers = st.requested;
                drop(st);
                let t = self.flush_hist.as_ref().map(|_| std::time::Instant::now());
                let result = self.sink.flush();
                if let (Some(h), Some(t)) = (&self.flush_hist, t) {
                    h.record(t.elapsed().as_nanos() as u64);
                }
                self.syncs
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                st = self.state.lock();
                st.flushing = false;
                if result.is_ok() {
                    st.flushed = st.flushed.max(covers);
                }
                self.cv.notify_all();
                result?;
            } else {
                // Follow: wait for the in-flight (or next) leader.
                self.cv.wait(&mut st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MemLog;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A sink that counts flushes and makes each one slow, so that
    /// concurrent committers pile up behind the leader.
    struct SlowSink {
        inner: MemLog,
        flushes: AtomicU64,
    }

    impl LogSink for SlowSink {
        fn append(&self, payload: &[u8]) -> Result<btrim_common::Lsn> {
            self.inner.append(payload)
        }
        fn flush(&self) -> Result<()> {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.inner.flush()
        }
        fn read_all(&self) -> Result<Vec<(btrim_common::Lsn, Vec<u8>)>> {
            self.inner.read_all()
        }
        fn record_count(&self) -> u64 {
            self.inner.record_count()
        }
        fn byte_size(&self) -> u64 {
            self.inner.byte_size()
        }
        fn truncate_prefix(&self, upto: btrim_common::Lsn) -> Result<()> {
            self.inner.truncate_prefix(upto)
        }
    }

    #[test]
    fn single_committer_flushes_once() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = GroupCommitter::new(sink.clone());
        sink.append(b"r").unwrap();
        g.commit_flush().unwrap();
        assert_eq!(g.sync_count(), 1);
    }

    #[test]
    fn concurrent_commits_share_syncs() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = Arc::new(GroupCommitter::new(sink.clone()));
        let committers = 16;
        let per = 10;
        std::thread::scope(|s| {
            for t in 0..committers {
                let g = Arc::clone(&g);
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..per {
                        sink.append(&[t as u8, i as u8]).unwrap();
                        g.commit_flush().unwrap();
                    }
                });
            }
        });
        let total_commits = (committers * per) as u64;
        let syncs = g.sync_count();
        assert!(syncs >= 1);
        assert!(
            syncs < total_commits / 2,
            "group commit must coalesce: {syncs} syncs for {total_commits} commits"
        );
        assert_eq!(sink.record_count(), total_commits);
    }

    /// A sink whose flushes block until the device "dies", then fail —
    /// and keep failing — so concurrent committers are caught mid-sync.
    struct DyingSink {
        inner: MemLog,
        dead: std::sync::atomic::AtomicBool,
        entered: AtomicU64,
    }

    impl LogSink for DyingSink {
        fn append(&self, payload: &[u8]) -> Result<btrim_common::Lsn> {
            self.inner.append(payload)
        }
        fn append_batch(&self, payloads: &[&[u8]]) -> Result<crate::log::LsnRange> {
            self.inner.append_batch(payloads)
        }
        fn flush(&self) -> Result<()> {
            self.entered.fetch_add(1, Ordering::SeqCst);
            // Hold the leader in the sync until the device dies.
            while !self.dead.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(btrim_common::BtrimError::Io(std::io::Error::other(
                "log device died mid-sync",
            )))
        }
        fn read_all(&self) -> Result<Vec<(btrim_common::Lsn, Vec<u8>)>> {
            self.inner.read_all()
        }
        fn record_count(&self) -> u64 {
            self.inner.record_count()
        }
        fn byte_size(&self) -> u64 {
            self.inner.byte_size()
        }
        fn truncate_prefix(&self, upto: btrim_common::Lsn) -> Result<()> {
            self.inner.truncate_prefix(upto)
        }
    }

    #[test]
    fn device_death_mid_sync_errors_leader_and_all_followers() {
        let sink = Arc::new(DyingSink {
            inner: MemLog::new(),
            dead: std::sync::atomic::AtomicBool::new(false),
            entered: AtomicU64::new(0),
        });
        let g = Arc::new(GroupCommitter::new(sink.clone()));
        let committers = 8;
        let (tx, rx) = std::sync::mpsc::channel::<Result<()>>();
        let mut handles = Vec::new();
        for t in 0..committers {
            let g = Arc::clone(&g);
            let sink = Arc::clone(&sink);
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                sink.append(&[t as u8]).unwrap();
                let _ = tx.send(g.commit_flush());
            }));
        }
        drop(tx);
        // Let a leader enter the sync and followers pile up on the
        // condvar, then kill the device.
        while sink.entered.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        sink.dead.store(true, Ordering::SeqCst);
        // Every committer must return an error *promptly* — nobody may
        // hang on the condvar waiting for a flush that will never come.
        let deadline = std::time::Duration::from_secs(10);
        let mut errors = 0;
        for _ in 0..committers {
            match rx.recv_timeout(deadline) {
                Ok(res) => {
                    assert!(res.is_err(), "sync died: commit_flush must fail");
                    errors += 1;
                }
                Err(_) => panic!("a committer is stranded on the condvar"),
            }
        }
        assert_eq!(errors, committers);
        for h in handles {
            h.join().unwrap();
        }
        // Followers that woke to a failed leader retried as leaders
        // themselves and hit the dead device; the sync was attempted at
        // least once and nobody was left flushing.
        assert!(sink.entered.load(Ordering::SeqCst) >= 1);
        assert!(!g.state.lock().flushing);
    }

    #[test]
    fn generation_covers_batch_lsn_range() {
        // A batch append reserves its whole LSN range before the flush
        // request is made, so the leader's sync generation covers every
        // record of the batch — verified by checking the sink saw all
        // records at flush time.
        struct CountAtFlush {
            inner: MemLog,
            seen_at_flush: AtomicU64,
        }
        impl LogSink for CountAtFlush {
            fn append(&self, payload: &[u8]) -> Result<btrim_common::Lsn> {
                self.inner.append(payload)
            }
            fn append_batch(&self, payloads: &[&[u8]]) -> Result<crate::log::LsnRange> {
                self.inner.append_batch(payloads)
            }
            fn flush(&self) -> Result<()> {
                self.seen_at_flush
                    .store(self.inner.record_count(), Ordering::SeqCst);
                self.inner.flush()
            }
            fn read_all(&self) -> Result<Vec<(btrim_common::Lsn, Vec<u8>)>> {
                self.inner.read_all()
            }
            fn record_count(&self) -> u64 {
                self.inner.record_count()
            }
            fn byte_size(&self) -> u64 {
                self.inner.byte_size()
            }
            fn truncate_prefix(&self, upto: btrim_common::Lsn) -> Result<()> {
                self.inner.truncate_prefix(upto)
            }
        }
        let sink = Arc::new(CountAtFlush {
            inner: MemLog::new(),
            seen_at_flush: AtomicU64::new(0),
        });
        let g = GroupCommitter::new(sink.clone());
        let range = sink
            .append_batch(&[b"a".as_ref(), b"b".as_ref(), b"c".as_ref(), b"d".as_ref()])
            .unwrap();
        g.commit_flush().unwrap();
        assert!(
            sink.seen_at_flush.load(Ordering::SeqCst) >= range.last.0,
            "sync must cover the whole batch LSN range"
        );
    }

    #[test]
    fn sequential_commits_each_get_their_own_sync() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = GroupCommitter::new(sink.clone());
        for i in 0..5u8 {
            sink.append(&[i]).unwrap();
            g.commit_flush().unwrap();
        }
        // No concurrency to coalesce: every commit sync is real.
        assert_eq!(g.sync_count(), 5);
    }
}
