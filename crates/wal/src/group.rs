//! Group commit: coalesce concurrent durable-commit flushes.
//!
//! With `durable_commits` every committing transaction needs its log
//! records on stable storage before acknowledging. Syncing the device
//! once per transaction serializes commits behind the sync latency;
//! the classic fix is leader/follower group commit: the first waiter
//! becomes the leader and performs one sync that covers every record
//! appended before it started, and all concurrent waiters ride along.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use btrim_common::Result;

use crate::log::LogSink;

#[derive(Default)]
struct State {
    /// Highest flush generation requested by a committer.
    requested: u64,
    /// Highest generation known durable.
    flushed: u64,
    /// Whether a leader is currently syncing.
    flushing: bool,
}

/// Leader/follower flush coalescer over one log sink.
pub struct GroupCommitter {
    sink: Arc<dyn LogSink>,
    state: Mutex<State>,
    cv: Condvar,
    syncs: std::sync::atomic::AtomicU64,
    /// Optional fsync latency histogram (nanoseconds): records the
    /// leader's device sync only — followers ride along for free and
    /// timing them would double-count the same sync.
    flush_hist: Option<Arc<btrim_common::LatencyHistogram>>,
}

impl GroupCommitter {
    /// Wrap a sink.
    pub fn new(sink: Arc<dyn LogSink>) -> Self {
        GroupCommitter {
            sink,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            syncs: std::sync::atomic::AtomicU64::new(0),
            flush_hist: None,
        }
    }

    /// Attach a leader-sync latency histogram (builder style).
    pub fn with_histogram(mut self, hist: Option<Arc<btrim_common::LatencyHistogram>>) -> Self {
        self.flush_hist = hist;
        self
    }

    /// Device syncs actually performed (tests / stats).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Make everything appended so far durable. Returns once a sync
    /// covering the caller's records has completed; concurrent callers
    /// share syncs.
    pub fn commit_flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        st.requested += 1;
        let my_gen = st.requested;
        loop {
            if st.flushed >= my_gen {
                return Ok(());
            }
            if !st.flushing {
                // Become the leader: sync covers every request made so
                // far (their appends happened before they requested).
                st.flushing = true;
                let covers = st.requested;
                drop(st);
                let t = self.flush_hist.as_ref().map(|_| std::time::Instant::now());
                let result = self.sink.flush();
                if let (Some(h), Some(t)) = (&self.flush_hist, t) {
                    h.record(t.elapsed().as_nanos() as u64);
                }
                self.syncs
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                st = self.state.lock();
                st.flushing = false;
                if result.is_ok() {
                    st.flushed = st.flushed.max(covers);
                }
                self.cv.notify_all();
                result?;
            } else {
                // Follow: wait for the in-flight (or next) leader.
                self.cv.wait(&mut st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MemLog;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A sink that counts flushes and makes each one slow, so that
    /// concurrent committers pile up behind the leader.
    struct SlowSink {
        inner: MemLog,
        flushes: AtomicU64,
    }

    impl LogSink for SlowSink {
        fn append(&self, payload: &[u8]) -> Result<btrim_common::Lsn> {
            self.inner.append(payload)
        }
        fn flush(&self) -> Result<()> {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.inner.flush()
        }
        fn read_all(&self) -> Result<Vec<(btrim_common::Lsn, Vec<u8>)>> {
            self.inner.read_all()
        }
        fn record_count(&self) -> u64 {
            self.inner.record_count()
        }
        fn byte_size(&self) -> u64 {
            self.inner.byte_size()
        }
        fn truncate_prefix(&self, upto: btrim_common::Lsn) -> Result<()> {
            self.inner.truncate_prefix(upto)
        }
    }

    #[test]
    fn single_committer_flushes_once() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = GroupCommitter::new(sink.clone());
        sink.append(b"r").unwrap();
        g.commit_flush().unwrap();
        assert_eq!(g.sync_count(), 1);
    }

    #[test]
    fn concurrent_commits_share_syncs() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = Arc::new(GroupCommitter::new(sink.clone()));
        let committers = 16;
        let per = 10;
        std::thread::scope(|s| {
            for t in 0..committers {
                let g = Arc::clone(&g);
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..per {
                        sink.append(&[t as u8, i as u8]).unwrap();
                        g.commit_flush().unwrap();
                    }
                });
            }
        });
        let total_commits = (committers * per) as u64;
        let syncs = g.sync_count();
        assert!(syncs >= 1);
        assert!(
            syncs < total_commits / 2,
            "group commit must coalesce: {syncs} syncs for {total_commits} commits"
        );
        assert_eq!(sink.record_count(), total_commits);
    }

    #[test]
    fn sequential_commits_each_get_their_own_sync() {
        let sink = Arc::new(SlowSink {
            inner: MemLog::new(),
            flushes: AtomicU64::new(0),
        });
        let g = GroupCommitter::new(sink.clone());
        for i in 0..5u8 {
            sink.append(&[i]).unwrap();
            g.commit_flush().unwrap();
        }
        // No concurrency to coalesce: every commit sync is real.
        assert_eq!(g.sync_count(), 5);
    }
}
