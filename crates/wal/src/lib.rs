//! Dual write-ahead logs and recovery scaffolding.
//!
//! The BTrim architecture keeps two disk-based transaction logs (§II):
//!
//! * **syslogs** — the traditional redo-undo log for page-store
//!   changes. Page-store recovery is classic checkpoint-based
//!   redo-undo.
//! * **sysimrslogs** — a redo-only log for in-memory DMLs. IMRS
//!   changes are logged at commit time with their commit timestamp, so
//!   recovery is a single forward redo pass; checkpoint never flushes
//!   IMRS data.
//!
//! [`log`] provides the append-only sinks (in-memory and file-backed)
//! with CRC-checked framing that tolerates a torn tail; [`record`]
//! defines the log-record vocabulary for both logs; [`recovery`]
//! implements log analysis (winners/losers) and the record streams the
//! engine replays. The two logs are recovered independently with
//! lock-step ordering — the engine replays syslogs fully before
//! sysimrslogs — ensuring a consistent database post-recovery (§II).

#![forbid(unsafe_code)]

pub mod group;
pub mod log;
pub mod record;
pub mod recovery;

pub use group::GroupCommitter;
pub use log::{FileLog, FormatEpoch, LogSink, LogWriter, LsnRange, MemLog};
pub use record::{Encodable, ImrsLogRecord, PageLogRecord, RowOriginTag};
pub use recovery::{analyze_page_log, LogAnalysis};
