//! Criterion micro-benchmarks for the design choices DESIGN.md calls
//! out as ablations:
//!
//! * sharded per-CPU counters vs a single shared atomic (§V.A's
//!   motivation);
//! * best-fit fragment allocator throughput;
//! * IMRS point operations vs page-store point operations (§III's
//!   contention/locality motivation);
//! * hash-index fast path vs B+tree point lookup (§II);
//! * relaxed-LRU queue maintenance cost (§VI.B — must be cheap because
//!   GC performs it for every row).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use btrim_common::ShardedCounter;
use btrim_core::catalog::{Partitioner, TableOpts};
use btrim_core::{Engine, EngineConfig, EngineMode};
use btrim_imrs::FragmentAllocator;
use btrim_index::{BTreeIndex, HashIndex};
use btrim_pagestore::{BufferCache, MemDisk};

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counters");
    g.sample_size(20);

    // Single shared atomic, 8 threads hammering one cache line.
    g.bench_function("shared_atomic_8thr", |b| {
        b.iter(|| {
            let counter = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..20_000 {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        })
    });

    // Sharded counter, same work.
    g.bench_function("sharded_counter_8thr", |b| {
        b.iter(|| {
            let counter = Arc::new(ShardedCounter::new());
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..20_000 {
                            counter.inc();
                        }
                    });
                }
            });
            counter.load()
        })
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("fragment_allocator");
    g.sample_size(20);
    let payload = vec![0xABu8; 120];

    g.bench_function("alloc_free_cycle", |b| {
        let a = FragmentAllocator::new(64 * 1024 * 1024, 4 * 1024 * 1024);
        b.iter(|| {
            let h = a.alloc(&payload).unwrap();
            a.free(h);
        })
    });

    g.bench_function("alloc_churn_mixed_sizes", |b| {
        let a = FragmentAllocator::new(64 * 1024 * 1024, 4 * 1024 * 1024);
        let mut held = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            let size = 32 + (i * 37) % 400;
            i += 1;
            held.push(a.alloc(&vec![1u8; size]).unwrap());
            if held.len() > 256 {
                a.free(held.swap_remove(i % 256));
            }
        })
    });
    g.finish();
}

fn make_engine(mode: EngineMode) -> (Arc<Engine>, Arc<btrim_core::catalog::TableDesc>) {
    let engine = Arc::new(Engine::new(EngineConfig {
        mode,
        imrs_budget: 64 * 1024 * 1024,
        imrs_chunk_size: 4 * 1024 * 1024,
        buffer_frames: 4096,
        ..Default::default()
    }));
    let table = engine
        .create_table(TableOpts {
            name: "bench".into(),
            imrs_enabled: true,
            pinned: false,
            partitioner: Partitioner::Single,
            primary_key: Arc::new(|row: &[u8]| row[..8].to_vec()),
            layout: None,
        })
        .unwrap();
    let mut txn = engine.begin();
    for i in 0..10_000u64 {
        let mut row = i.to_be_bytes().to_vec();
        row.extend_from_slice(&[7u8; 100]);
        engine.insert(&mut txn, &table, &row).unwrap();
    }
    engine.commit(txn).unwrap();
    (engine, table)
}

fn bench_point_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("point_ops");
    g.sample_size(20);

    // IMRS-resident point selects (ILM_OFF keeps everything resident).
    let (e_imrs, t_imrs) = make_engine(EngineMode::IlmOff);
    g.bench_function("select_imrs", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || e_imrs.begin(),
            |txn| {
                i = (i + 7919) % 10_000;
                let r = e_imrs.get(&txn, &t_imrs, &i.to_be_bytes()).unwrap();
                e_imrs.commit(txn).unwrap();
                r
            },
            BatchSize::SmallInput,
        )
    });

    // Same selects through the lock-free snapshot path: no row locks,
    // no metrics bumps — the gap vs `select_imrs` is the cost the
    // locking read pays even without any writer contention.
    g.bench_function("select_snapshot_imrs", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || e_imrs.begin_snapshot(),
            |snap| {
                i = (i + 7919) % 10_000;
                let r = e_imrs
                    .get_snapshot(&snap, &t_imrs, &i.to_be_bytes())
                    .unwrap();
                e_imrs.end_snapshot(snap);
                r
            },
            BatchSize::SmallInput,
        )
    });

    // Page-store point selects.
    let (e_page, t_page) = make_engine(EngineMode::PageOnly);
    g.bench_function("select_pagestore", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || e_page.begin(),
            |txn| {
                i = (i + 7919) % 10_000;
                let r = e_page.get(&txn, &t_page, &i.to_be_bytes()).unwrap();
                e_page.commit(txn).unwrap();
                r
            },
            BatchSize::SmallInput,
        )
    });

    // Update paths.
    let (e_imrs2, t_imrs2) = make_engine(EngineMode::IlmOff);
    g.bench_function("update_imrs", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || e_imrs2.begin(),
            |mut txn| {
                i = (i + 7919) % 10_000;
                let mut row = i.to_be_bytes().to_vec();
                row.extend_from_slice(&[9u8; 100]);
                e_imrs2
                    .update(&mut txn, &t_imrs2, &i.to_be_bytes(), &row)
                    .unwrap();
                e_imrs2.commit(txn).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    let (e_page2, t_page2) = make_engine(EngineMode::PageOnly);
    g.bench_function("update_pagestore", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || e_page2.begin(),
            |mut txn| {
                i = (i + 7919) % 10_000;
                let mut row = i.to_be_bytes().to_vec();
                row.extend_from_slice(&[9u8; 100]);
                e_page2
                    .update(&mut txn, &t_page2, &i.to_be_bytes(), &row)
                    .unwrap();
                e_page2.commit(txn).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_indexes(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_lookup");
    g.sample_size(20);
    let cache = Arc::new(BufferCache::new(Arc::new(MemDisk::new()), 4096));
    let btree = BTreeIndex::new(cache, btrim_common::PartitionId(0), true).unwrap();
    let hash = HashIndex::new();
    for i in 0..50_000u64 {
        let k = i.to_be_bytes();
        btree.insert(&k, btrim_common::RowId(i)).unwrap();
        hash.insert(&k, btrim_common::RowId(i));
    }
    g.bench_function("btree_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 104729) % 50_000;
            btree.get(&i.to_be_bytes()).unwrap()
        })
    });
    g.bench_function("hash_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 104729) % 50_000;
            hash.get(&i.to_be_bytes())
        })
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("ilm_queues");
    g.sample_size(20);
    use btrim_core::queues::PartitionQueues;
    use btrim_imrs::RowOrigin;

    g.bench_function("push_pop_rotate", |b| {
        let q = PartitionQueues::default();
        for i in 0..1_000u64 {
            q.push_tail(RowOrigin::Inserted, btrim_common::RowId(i));
        }
        b.iter(|| {
            // The steady-state pack pattern: pop the head, rotate it to
            // the tail (hot-row case).
            if let Some((row, origin)) = q.pop_head() {
                q.push_tail(origin, row);
            }
        })
    });
    g.finish();
}

fn bench_commit_path(c: &mut Criterion) {
    // Full transaction cost: one insert + commit, including WAL append
    // and (for the IMRS) version creation + redo-only logging.
    let mut g = c.benchmark_group("commit_path");
    g.sample_size(20);
    for (label, mode) in [
        ("insert_txn_imrs", EngineMode::IlmOff),
        ("insert_txn_page", EngineMode::PageOnly),
    ] {
        let (engine, table) = make_engine(mode);
        let mut key = 1_000_000u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                key += 1;
                let mut row = key.to_be_bytes().to_vec();
                row.extend_from_slice(&[5u8; 100]);
                let mut txn = engine.begin();
                engine.insert(&mut txn, &table, &row).unwrap();
                engine.commit(txn).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_commit_batching(c: &mut Criterion) {
    // The stage-and-batch commit pipeline vs the per-record fallback:
    // multi-record transactions committing concurrently, so the cost
    // under test is sysimrslogs lock traffic (one acquisition per commit
    // when batched, one per record when not). Fresh engine per
    // iteration keeps memory bounded and the IMRS state identical
    // across samples.
    use btrim_wal::MemLog;

    const TXNS_PER_THREAD: u64 = 50;
    const ROWS_PER_TXN: u64 = 8;

    let mut g = c.benchmark_group("commit_batching");
    g.sample_size(10);
    for threads in [1u64, 4, 8] {
        for (label, batched) in [("per_record", false), ("batched", true)] {
            g.bench_function(format!("{label}_{threads}thr"), |b| {
                b.iter_batched(
                    || {
                        let engine = Arc::new(Engine::with_devices(
                            EngineConfig {
                                mode: EngineMode::IlmOff,
                                imrs_budget: 64 * 1024 * 1024,
                                maintenance_interval_txns: 1_000_000,
                                batched_commit: batched,
                                ..Default::default()
                            },
                            Arc::new(MemDisk::new()),
                            Arc::new(MemLog::new()),
                            Arc::new(MemLog::new()),
                        ));
                        let table = engine
                            .create_table(TableOpts {
                                name: "bench".into(),
                                imrs_enabled: true,
                                pinned: false,
                                partitioner: Partitioner::Single,
                                primary_key: Arc::new(|row: &[u8]| row[..8].to_vec()),
                                layout: None,
                            })
                            .unwrap();
                        (engine, table)
                    },
                    |(engine, table)| {
                        std::thread::scope(|s| {
                            for t in 0..threads {
                                let engine = Arc::clone(&engine);
                                let table = Arc::clone(&table);
                                s.spawn(move || {
                                    for i in 0..TXNS_PER_THREAD {
                                        let mut txn = engine.begin();
                                        for j in 0..ROWS_PER_TXN {
                                            let key = t * 1_000_000 + i * ROWS_PER_TXN + j;
                                            let mut row = key.to_be_bytes().to_vec();
                                            row.extend_from_slice(&[5u8; 40]);
                                            engine.insert(&mut txn, &table, &row).unwrap();
                                        }
                                        engine.commit(txn).unwrap();
                                    }
                                });
                            }
                        });
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }
    g.finish();
}

fn bench_obs(c: &mut Criterion) {
    // The observability hot path in isolation: one histogram record,
    // and the full start/record_since pair the engine pays per
    // operation — enabled and disabled. The disabled pair must be
    // near-free (no clock read), and the enabled pair must stay two
    // orders of magnitude under the cheapest engine operation.
    use btrim_common::LatencyHistogram;
    use btrim_core::{Obs, OpClass};

    let mut g = c.benchmark_group("obs");
    let h = LatencyHistogram::new();
    let mut v = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            h.record(black_box(v >> 40));
        })
    });
    let on = Obs::new(true, 1024);
    g.bench_function("timed_record_enabled", |b| {
        b.iter(|| {
            let t = on.start();
            on.record_since(OpClass::Commit, black_box(t));
        })
    });
    let off = Obs::new(false, 0);
    g.bench_function("timed_record_disabled", |b| {
        b.iter(|| {
            let t = off.start();
            off.record_since(OpClass::Commit, black_box(t));
        })
    });
    g.finish();
}

fn bench_buffer_cache(c: &mut Criterion) {
    // Concurrent hit-path throughput of the sharded buffer cache vs the
    // pre-shard design, where every hit serialized on one process-wide
    // mutex. All pages stay resident, so the benchmark isolates lookup +
    // pin cost under lock contention (no disk I/O, no eviction).
    use btrim_common::{PageId, PartitionId};
    use btrim_pagestore::PageType;
    use std::collections::HashMap;
    use std::sync::{Mutex, RwLock};

    const PAGES: usize = 512;
    const OPS_PER_THREAD: usize = 4_000;

    type SharedPage = Arc<RwLock<Box<[u8]>>>;

    /// The old design in miniature: one mutex guards the whole page
    /// table, and every fetch — hit or miss — takes it.
    struct GlobalMutexCache {
        map: Mutex<HashMap<PageId, SharedPage>>,
    }

    impl GlobalMutexCache {
        fn fetch(&self, id: PageId) -> SharedPage {
            Arc::clone(self.map.lock().unwrap().get(&id).expect("resident"))
        }
    }

    let mut g = c.benchmark_group("buffer_cache");
    g.sample_size(10);

    let sharded = Arc::new(BufferCache::with_shards(
        Arc::new(MemDisk::new()),
        PAGES * 2,
        8,
    ));
    let ids: Arc<Vec<PageId>> = Arc::new(
        (0..PAGES)
            .map(|_| {
                sharded
                    .new_page(PageType::Heap, PartitionId(0))
                    .unwrap()
                    .page_id()
            })
            .collect(),
    );

    let global = Arc::new(GlobalMutexCache {
        map: Mutex::new(
            ids.iter()
                .map(|&id| {
                    (
                        id,
                        Arc::new(RwLock::new(
                            vec![0u8; btrim_pagestore::PAGE_SIZE].into_boxed_slice(),
                        )),
                    )
                })
                .collect(),
        ),
    });

    for threads in [1usize, 4, 8] {
        g.bench_function(format!("global_mutex_hit_{threads}thr"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let global = Arc::clone(&global);
                        let ids = Arc::clone(&ids);
                        s.spawn(move || {
                            let mut x = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                            let mut acc = 0u64;
                            for _ in 0..OPS_PER_THREAD {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                let id = ids[(x % PAGES as u64) as usize];
                                let page = global.fetch(id);
                                acc += page.read().unwrap()[0] as u64;
                            }
                            black_box(acc)
                        });
                    }
                })
            })
        });

        g.bench_function(format!("sharded_hit_{threads}thr"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let cache = Arc::clone(&sharded);
                        let ids = Arc::clone(&ids);
                        s.spawn(move || {
                            let mut x = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                            let mut acc = 0u64;
                            for _ in 0..OPS_PER_THREAD {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                let id = ids[(x % PAGES as u64) as usize];
                                let guard = cache.fetch(id).unwrap();
                                acc += guard.with_read(|buf| buf[0]) as u64;
                            }
                            black_box(acc)
                        });
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_counters,
    bench_allocator,
    bench_point_ops,
    bench_indexes,
    bench_queues,
    bench_commit_path,
    bench_commit_batching,
    bench_obs,
    bench_buffer_cache
);
criterion_main!(benches);
