//! Experiment harness for the paper's evaluation (§VIII).
//!
//! Every table and figure has a regenerating binary in `src/bin/`; this
//! library holds the shared machinery: engine construction per mode,
//! epoch-based TPC-C runs with per-epoch snapshots, and small output
//! helpers. Absolute numbers differ from the paper's 4-socket testbed;
//! the binaries reproduce the *shapes* (who wins, by what factor, where
//! the crossovers are). See EXPERIMENTS.md for paper-vs-measured notes.

#![forbid(unsafe_code)]

use std::sync::Arc;

use btrim_core::{Engine, EngineConfig, EngineMode, EngineSnapshot, OpClass};
use btrim_tpcc::driver::{Driver, DriverStats};
use btrim_tpcc::loader::{load, LoadSpec};

/// One experiment's knobs.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Storage mode under test.
    pub mode: EngineMode,
    /// TPC-C population scale.
    pub spec: LoadSpec,
    /// Number of measurement epochs (the x-axis of time-series plots).
    pub epochs: usize,
    /// Transactions per epoch.
    pub txns_per_epoch: u64,
    /// Worker threads.
    pub threads: usize,
    /// IMRS budget in bytes.
    pub imrs_budget: u64,
    /// Steady cache utilization threshold.
    pub steady: f64,
    /// Pack apportioning policy (ablation knob).
    pub pack_policy: btrim_core::config::PackPolicy,
    /// Master pack switch (held off by the Fig. 8 queue probe).
    pub pack_enabled: bool,
    /// Timestamp Filter switch (ablation).
    pub tsf_enabled: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            mode: EngineMode::IlmOn,
            spec: LoadSpec {
                warehouses: 2,
                items: 1_000,
                customers_per_district: 120,
                orders_per_district: 120,
                seed: 0xB7B1,
            },
            epochs: 10,
            txns_per_epoch: 4_000,
            threads: 2,
            imrs_budget: 12 * 1024 * 1024,
            steady: 0.70,
            pack_policy: btrim_core::config::PackPolicy::Partitioned,
            pack_enabled: true,
            tsf_enabled: true,
        }
    }
}

/// Build an engine + loaded TPC-C database + driver for a config.
pub fn build(cfg: &ExpConfig) -> (Arc<Engine>, Driver) {
    let engine_cfg = EngineConfig {
        mode: cfg.mode,
        imrs_budget: match cfg.mode {
            // ILM_OFF emulates an unlimited IMRS (the paper configured
            // 150 GB); give it plenty so it never fills.
            EngineMode::IlmOff => cfg.imrs_budget.max(512 * 1024 * 1024),
            _ => cfg.imrs_budget,
        },
        imrs_chunk_size: 2 * 1024 * 1024,
        buffer_frames: 8192,
        steady_utilization: cfg.steady,
        maintenance_interval_txns: 64,
        tuning_window_txns: 2_000,
        // Let pack be the primary cold-data outlet (as in the paper's
        // runs): partitions are only disabled under real memory
        // pressure, above the steady threshold.
        tuning_utilization_floor: (cfg.steady + 0.10).min(0.95),
        hysteresis_windows: 3,
        // TSF-bypass threshold, rescaled for laptop-size runs: the
        // paper's order_line saw ~0.93 re-uses per row on a 240-warehouse
        // database; at our scale the same table shows ~2-3 (StockLevel
        // and Delivery revisit a larger fraction of a small district's
        // orders). 4.0 reproduces the paper's classification: the
        // insert-heavy tables (order_line, orders, history, new_order)
        // bypass the TSF and pack early, while stock / customer / item
        // (re-use 10-100+) stay TSF-protected.
        low_reuse_threshold: 4.0,
        pack_policy: cfg.pack_policy,
        pack_enabled: cfg.pack_enabled,
        tsf_enabled: cfg.tsf_enabled,
        ..Default::default()
    };
    let engine = Arc::new(Engine::new(engine_cfg));
    let tables = Arc::new(load(&engine, &cfg.spec).expect("load TPC-C"));
    // Maintenance (GC, tuning, pack) runs on background threads, as in
    // the paper's deployment — client transactions never pay for it.
    engine.spawn_background();
    let driver = Driver::new(Arc::clone(&engine), tables, &cfg.spec);
    (engine, driver)
}

/// Per-epoch record from a run.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Engine state at the end of the epoch.
    pub snapshot: EngineSnapshot,
    /// Driver counters for this epoch only.
    pub stats: DriverStats,
    /// Wall-clock TPM of this epoch.
    pub tpm: f64,
}

/// Run one epoch of the configured workload and snapshot the engine.
pub fn run_one_epoch(driver: &Driver, cfg: &ExpConfig, epoch: usize) -> EpochRecord {
    let seed = cfg.spec.seed ^ (0xE0C4 + epoch as u64 * 7919);
    let stats = driver.run(cfg.txns_per_epoch, cfg.threads, seed);
    let tpm = stats.tpm();
    // Settle maintenance so snapshots reflect steady state.
    driver.engine().run_maintenance();
    EpochRecord {
        epoch,
        snapshot: driver.engine().snapshot(),
        stats,
        tpm,
    }
}

/// Run the configured workload epoch by epoch, snapshotting after each.
pub fn run_epochs(driver: &Driver, cfg: &ExpConfig) -> Vec<EpochRecord> {
    let mut out = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        out.push(run_one_epoch(driver, cfg, epoch));
    }
    // Stop background threads (queues, TSF state, and counters remain
    // intact for post-run probes).
    let _ = driver.engine().shutdown();
    out
}

/// Run several configurations in lock-step: epoch 0 of every driver,
/// then epoch 1, and so on. Throughput comparisons between the modes
/// are then computed on *adjacent* measurements, which cancels most of
/// the host's scheduling noise.
pub fn run_epochs_interleaved(drivers: &[(&Driver, &ExpConfig)]) -> Vec<Vec<EpochRecord>> {
    let epochs = drivers.iter().map(|(_, c)| c.epochs).min().unwrap_or(0);
    let mut out: Vec<Vec<EpochRecord>> = drivers.iter().map(|_| Vec::new()).collect();
    for epoch in 0..epochs {
        for (i, (driver, cfg)) in drivers.iter().enumerate() {
            out[i].push(run_one_epoch(driver, cfg, epoch));
        }
    }
    for (driver, _) in drivers {
        let _ = driver.engine().shutdown();
    }
    out
}

/// Standard small scale used by most figures. Override fields as
/// needed.
pub fn default_config(mode: EngineMode) -> ExpConfig {
    ExpConfig {
        mode,
        ..Default::default()
    }
}

/// Print a TSV header line.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Print a TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Bytes → MiB with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// `p50/p95/p99` in µs for one operation class of a snapshot, or `-`
/// if the class never fired. Slash-separated so it stays one TSV cell.
pub fn latency_cell(snap: &EngineSnapshot, class: OpClass) -> String {
    snap.latency
        .iter()
        .find(|(c, _)| *c == class)
        .filter(|(_, s)| s.count > 0)
        .map(|(_, s)| {
            format!(
                "{:.0}/{:.0}/{:.0}",
                s.p50 as f64 / 1_000.0,
                s.p95 as f64 / 1_000.0,
                s.p99 as f64 / 1_000.0
            )
        })
        .unwrap_or_else(|| "-".to_string())
}

/// Write a snapshot's JSON export to `$BTRIM_JSON_DIR/<name>.json` for
/// downstream tooling (plots, regression diffing). A no-op when the
/// variable is unset, keeping default TSV output clean.
pub fn dump_json(name: &str, snap: &EngineSnapshot) {
    let Ok(dir) = std::env::var("BTRIM_JSON_DIR") else {
        return;
    };
    std::fs::create_dir_all(&dir).expect("create BTRIM_JSON_DIR");
    let path = std::path::Path::new(&dir).join(format!("{name}.json"));
    std::fs::write(&path, snap.to_json()).expect("write JSON snapshot");
    eprintln!("# wrote {}", path.display());
}

/// The nine TPC-C table names, in the paper's reporting order.
pub const TABLES: [&str; 9] = [
    "warehouse",
    "district",
    "stock",
    "item",
    "history",
    "order_line",
    "orders",
    "customer",
    "new_order",
];
