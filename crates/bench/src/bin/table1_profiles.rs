//! Table 1: profile of tables seen in the TPC-C schema.
//!
//! Runs the standard mix and prints each table's observed workload
//! role. Expected shape (paper's Table 1): warehouse/district small
//! with high scan+update rates; stock large with frequent updates;
//! item read-only; history insert-only; order_line/orders large with
//! heavy inserts and very low re-use; customer update-heavy; new_order
//! queue-like (inserts + deletes).

use btrim_bench::{build, default_config, run_epochs};
use btrim_core::EngineMode;
use btrim_tpcc::profile;

fn main() {
    let mut cfg = default_config(EngineMode::IlmOff);
    cfg.epochs = 4;
    let (engine, driver) = build(&cfg);
    let records = run_epochs(&driver, &cfg);
    let last = records.last().expect("ran epochs");
    println!(
        "# Table 1 — profiles after {} committed txns",
        last.snapshot.committed_txns
    );
    let profiles = profile::table_profiles(&engine);
    print!("{}", profile::render(&profiles));
}
