//! Reader latency vs. writer count: MVCC snapshot reads against the
//! lock-coupled baseline (`snapshot_reads: false`).
//!
//! Read-mostly TPC-C slice: 4 OrderStatus-style readers (4 customer
//! point reads per snapshot) run against 1/4/8 Payment-style writers
//! (4 customer balance updates per transaction, locks held to commit).
//! Expected shape: snapshot-read p99 stays flat as writers scale —
//! readers touch no locks — while the baseline's p99 grows with writer
//! count because shared row locks queue behind writers' exclusive locks.
//!
//! ```sh
//! cargo run --release -p btrim-bench --bin mvcc_read_scaling
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use btrim_core::{Engine, EngineConfig, EngineMode};
use btrim_tpcc::loader::{load, LoadSpec};
use btrim_tpcc::schema::Customer;

const WAREHOUSES: u32 = 1;
const DISTRICTS: u32 = 10;
const CUSTOMERS: u32 = 60;
const READERS: usize = 4;
const READS_PER_SNAPSHOT: u32 = 4;
const WRITES_PER_TXN: u32 = 4;
const RUN: Duration = Duration::from_millis(1500);

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1_000.0 // ns → µs
}

struct Cell {
    reads: u64,
    writes: u64,
    p50_us: f64,
    p99_us: f64,
}

fn run_cell(snapshot_reads: bool, writers: usize) -> Cell {
    let engine = Arc::new(Engine::new(EngineConfig {
        mode: EngineMode::IlmOff,
        imrs_budget: 256 * 1024 * 1024,
        imrs_chunk_size: 2 * 1024 * 1024,
        buffer_frames: 1024,
        maintenance_interval_txns: 64,
        snapshot_reads,
        ..Default::default()
    }));
    let spec = LoadSpec {
        warehouses: WAREHOUSES,
        items: 200,
        customers_per_district: CUSTOMERS,
        orders_per_district: 30,
        seed: 0x5CA1E,
    };
    let tables = Arc::new(load(&engine, &spec).expect("load TPC-C"));

    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let engine = Arc::clone(&engine);
            let tables = Arc::clone(&tables);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            std::thread::spawn(move || {
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (w as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    let d = (xorshift(&mut rng) % DISTRICTS as u64) as u32 + 1;
                    let mut txn = engine.begin();
                    let mut ok = true;
                    for _ in 0..WRITES_PER_TXN {
                        let c = (xorshift(&mut rng) % CUSTOMERS as u64) as u32 + 1;
                        let key = Customer::key(1, d, c);
                        let res = engine.update_rmw(&mut txn, &tables.customer, &key, |row| {
                            let mut cust = Customer::decode(row).expect("decode customer");
                            cust.balance += 1.0;
                            cust.payment_cnt += 1;
                            cust.encode()
                        });
                        if res.is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        engine.abort(txn); // lock conflict: retry fresh
                    } else if engine.commit(txn).is_ok() {
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..READERS)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let tables = Arc::clone(&tables);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = 0xD1B5_4A32_D192_ED03u64 ^ (r as u64 + 1);
                let mut lat_ns: Vec<u64> = Vec::with_capacity(1 << 16);
                while !stop.load(Ordering::Relaxed) {
                    let d = (xorshift(&mut rng) % DISTRICTS as u64) as u32 + 1;
                    let t0 = Instant::now();
                    let snap = engine.begin_snapshot();
                    for _ in 0..READS_PER_SNAPSHOT {
                        let c = (xorshift(&mut rng) % CUSTOMERS as u64) as u32 + 1;
                        let key = Customer::key(1, d, c);
                        let row = engine
                            .get_snapshot(&snap, &tables.customer, &key)
                            .expect("snapshot read")
                            .expect("customer present");
                        debug_assert!(Customer::decode(&row).is_ok());
                    }
                    engine.end_snapshot(snap);
                    lat_ns.push(t0.elapsed().as_nanos() as u64);
                }
                lat_ns
            })
        })
        .collect();

    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in writer_handles {
        h.join().unwrap();
    }
    let mut lat: Vec<u64> = reader_handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    lat.sort_unstable();
    let cell = Cell {
        reads: lat.len() as u64,
        writes: writes.load(Ordering::Relaxed),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    };
    let _ = engine.shutdown();
    cell
}

fn main() {
    println!("# MVCC read scaling — 4 snapshot readers vs 1/4/8 writers");
    println!("# read txn = {READS_PER_SNAPSHOT} customer point reads; write txn = {WRITES_PER_TXN} balance updates");
    btrim_bench::header(&[
        "read_path",
        "writers",
        "reader_p50_us",
        "reader_p99_us",
        "read_txns",
        "write_txns",
    ]);
    for snapshot_reads in [true, false] {
        for writers in [1usize, 4, 8] {
            let cell = run_cell(snapshot_reads, writers);
            btrim_bench::row(&[
                if snapshot_reads { "mvcc" } else { "lock" }.to_string(),
                writers.to_string(),
                btrim_bench::f3(cell.p50_us),
                btrim_bench::f3(cell.p99_us),
                cell.reads.to_string(),
                cell.writes.to_string(),
            ]);
        }
    }
}
