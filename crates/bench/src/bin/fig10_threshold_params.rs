//! Fig. 10: normalized ILM/pack parameters across steady-utilization
//! thresholds.
//!
//! Expected shape: NumRowsPacked falls as the threshold rises (less
//! pressure), NumRowsSkipped rises gently (more rows qualify as hot),
//! and TPM stays roughly flat — hot data is retained at every setting.

use btrim_bench::{build, default_config, f3, run_epochs};
use btrim_core::EngineMode;

fn main() {
    let sweep = [0.50, 0.60, 0.70, 0.80, 0.90];
    let mut rows = Vec::new();
    for steady in sweep {
        let mut cfg = default_config(EngineMode::IlmOn);
        cfg.steady = steady;
        let (_engine, driver) = build(&cfg);
        let records = run_epochs(&driver, &cfg);
        let last = records.last().unwrap();
        let tpm: f64 = records.iter().map(|r| r.tpm).sum::<f64>() / records.len() as f64;
        rows.push((
            steady,
            tpm,
            last.snapshot.rows_packed as f64,
            last.snapshot.rows_skipped_hot as f64,
        ));
        eprintln!("# steady {steady} done");
    }
    let max_tpm = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-9);
    let max_packed = rows.iter().map(|r| r.2).fold(0.0f64, f64::max).max(1e-9);
    let max_skipped = rows.iter().map(|r| r.3).fold(0.0f64, f64::max).max(1e-9);

    println!("# Fig 10 — normalized TPM / NumRowsPacked / NumRowsSkipped");
    btrim_bench::header(&[
        "steady_threshold",
        "norm_tpm",
        "norm_rows_packed",
        "norm_rows_skipped",
    ]);
    for (s, tpm, packed, skipped) in rows {
        btrim_bench::row(&[
            f3(s),
            f3(tpm / max_tpm),
            f3(packed / max_packed),
            f3(skipped / max_skipped),
        ]);
    }
}
