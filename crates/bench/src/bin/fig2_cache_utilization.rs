//! Fig. 2: cache utilization, ILM_ON vs ILM_OFF.
//!
//! Expected shape: ILM_OFF utilization grows without bound as the run
//! progresses; ILM_ON stabilizes around the steady-utilization
//! threshold of its (smaller) budget.

use btrim_bench::{build, default_config, f3, mib, run_epochs};
use btrim_core::EngineMode;

fn main() {
    let cfg_off = default_config(EngineMode::IlmOff);
    let cfg_on = default_config(EngineMode::IlmOn);
    let (_e_off, d_off) = build(&cfg_off);
    let off = run_epochs(&d_off, &cfg_off);
    let (_e_on, d_on) = build(&cfg_on);
    let on = run_epochs(&d_on, &cfg_on);

    println!("# Fig 2 — cache utilization over the run");
    println!(
        "# ILM_ON budget: {} MiB (steady threshold {})",
        mib(cfg_on.imrs_budget),
        cfg_on.steady
    );
    btrim_bench::header(&["epoch", "ilm_off_mib", "ilm_on_mib", "ilm_on_utilization"]);
    for i in 0..on.len() {
        btrim_bench::row(&[
            i.to_string(),
            mib(off[i].snapshot.imrs_used_bytes),
            mib(on[i].snapshot.imrs_used_bytes),
            f3(on[i].snapshot.imrs_utilization),
        ]);
    }
    // Stability check: max-vs-min over the second half of the run.
    let half = &on[on.len() / 2..];
    let max = half
        .iter()
        .map(|r| r.snapshot.imrs_used_bytes)
        .max()
        .unwrap();
    let min = half
        .iter()
        .map(|r| r.snapshot.imrs_used_bytes)
        .min()
        .unwrap();
    println!(
        "# ILM_ON second-half stability: min {} MiB, max {} MiB (ratio {})",
        mib(min),
        mib(max),
        f3(max as f64 / min.max(1) as f64)
    );
}
