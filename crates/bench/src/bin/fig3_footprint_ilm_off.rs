//! Fig. 3: per-table IMRS memory footprint over time, ILM_OFF.
//!
//! Expected shape: most tables' footprints grow as the run progresses
//! (new inserts/updates keep bringing data in and nothing is packed);
//! growth is dominated by order_line, orders, and history.

use btrim_bench::{build, default_config, mib, run_epochs, TABLES};
use btrim_core::EngineMode;

fn main() {
    let cfg = default_config(EngineMode::IlmOff);
    let (_engine, driver) = build(&cfg);
    let records = run_epochs(&driver, &cfg);

    println!("# Fig 3 — per-table IMRS footprint (MiB), ILM_OFF");
    let mut cols = vec!["epoch"];
    cols.extend_from_slice(&TABLES);
    btrim_bench::header(&cols);
    for r in &records {
        let mut cells = vec![r.epoch.to_string()];
        for name in TABLES {
            let bytes = r.snapshot.table(name).map_or(0, |t| t.imrs_bytes());
            cells.push(mib(bytes));
        }
        btrim_bench::row(&cells);
    }
}
