//! Fig. 8: percentage of cold rows in every 10% band of the ILM queues.
//!
//! Expected shape: for frequently-accessed tables (warehouse, district,
//! stock) every band is similarly hot; for history/order_line the head
//! bands are overwhelmingly cold and coldness drops toward the tail —
//! the queues are "well-behaved" (§VIII.D.5).

use btrim_bench::{build, default_config, f3, run_epochs, TABLES};
use btrim_core::EngineMode;

fn main() {
    // Probe with pack held off but everything else — GC, queue
    // maintenance, TSF learning at the *real* steady threshold —
    // running normally: the queues then hold the full population and
    // the TSF classifies rows in place, which is the state the paper's
    // snapshot captures. (If pack ran, it would have already drained
    // the cold queue heads we want to observe.)
    // Sizing: the learned Ʈ covers `steady × cache-fill` worth of
    // transactions, so the run must write noticeably more than that
    // for any row to age out, while staying under one full cache fill
    // (pack is off, so overflow would divert inserts to the page
    // store). steady = 0.5 and 8 epochs give a run of ≈ 1.6 Ʈ at ≈ 80%
    // of the budget.
    let mut cfg = default_config(EngineMode::IlmOn);
    cfg.pack_enabled = false;
    cfg.steady = 0.50;
    cfg.imrs_budget = 12 * 1024 * 1024;
    cfg.epochs = 8;
    let (engine, driver) = build(&cfg);
    let _records = run_epochs(&driver, &cfg);

    println!("# Fig 8 — % cold rows per queue decile (head → tail)");
    let mut cols = vec!["table".to_string()];
    cols.extend((1..=10).map(|d| format!("d{d}")));
    println!("{}", cols.join("\t"));
    for name in TABLES {
        let Some(table) = engine.table(name) else {
            continue;
        };
        // Average the bands across the table's partitions, weighting
        // equally (partition queues are per-partition in the design).
        let mut acc = [0.0f64; 10];
        let mut n = 0usize;
        for &p in &table.partitions {
            let bands = engine.queue_coldness_bands(p, 10);
            if bands.iter().any(|&b| b > 0.0) {
                for (a, b) in acc.iter_mut().zip(bands) {
                    *a += b;
                }
                n += 1;
            }
        }
        if n > 0 {
            for a in acc.iter_mut() {
                *a /= n as f64;
            }
        }
        let mut cells = vec![name.to_string()];
        cells.extend(acc.iter().map(|&v| f3(v)));
        println!("{}", cells.join("\t"));
    }
}
