//! Ablation: the Timestamp Filter (§VI.D) on vs off.
//!
//! Without the TSF, steady-state pack treats every queued row as cold:
//! hot rows get packed and immediately migrate back on their next
//! access. The signature is a much higher `rows_in` (re-migrations /
//! re-caches) for the *hot* tables and a lower IMRS hit rate — wasted
//! work the paper's §VI.D machinery exists to prevent.

use btrim_bench::{build, default_config, f3, run_epochs, ExpConfig};
use btrim_core::EngineMode;

fn run(tsf: bool) -> (f64, u64, u64, u64) {
    let mut cfg: ExpConfig = default_config(EngineMode::IlmOn);
    cfg.tsf_enabled = tsf;
    let (_engine, driver) = build(&cfg);
    let records = run_epochs(&driver, &cfg);
    let last = records.last().unwrap();
    // Re-migration churn on the TSF-protected tables: rows brought in
    // beyond the initial load + inserts.
    let churn: u64 = ["stock", "customer", "item"]
        .iter()
        .filter_map(|n| last.snapshot.table(n))
        .map(|t| {
            let rows_in: u64 = t.partitions.iter().map(|p| p.rows_in).sum();
            let inserts: u64 = t.partitions.iter().map(|p| p.imrs_inserts).sum();
            rows_in.saturating_sub(inserts)
        })
        .sum();
    let hot_packed: u64 = ["stock", "customer", "item"]
        .iter()
        .filter_map(|n| last.snapshot.table(n))
        .map(|t| t.rows_packed())
        .sum();
    (
        last.snapshot.imrs_hit_rate(),
        churn,
        hot_packed,
        last.snapshot.rows_packed,
    )
}

fn main() {
    println!("# Ablation — Timestamp Filter (§VI.D) on vs off");
    btrim_bench::header(&[
        "tsf",
        "imrs_hit_rate",
        "hot_table_remigrations",
        "hot_table_rows_packed",
        "total_rows_packed",
    ]);
    for tsf in [true, false] {
        let (hit, churn, hot_packed, total) = run(tsf);
        btrim_bench::row(&[
            tsf.to_string(),
            f3(hit),
            churn.to_string(),
            hot_packed.to_string(),
            total.to_string(),
        ]);
    }
    println!("# expectation: tsf=off packs hot-table rows and re-migrates them (churn ≫), hit rate drops");
}
