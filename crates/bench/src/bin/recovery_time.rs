//! Recovery wall-clock: serial vs partitioned parallel replay, with
//! and without a mid-run fuzzy checkpoint bounding the redo suffix.
//!
//! The dataset is deliberately larger than the buffer pool (256 frames
//! against tens of thousands of rows packed onto pages), so page redo
//! and the heap rebuild do real eviction work instead of hitting a
//! warm cache. Each cell rebuilds the crashed media from scratch with
//! the identical single-threaded workload, then times `Engine::recover`
//! at 1/4/8 replay workers. Expected shape: parallel replay wins ≥2× at
//! 8 workers on multi-core hosts, and the fuzzy-checkpoint rows replay
//! only the post-low-water suffix (compare `syslog_replayed`).
//!
//! ```sh
//! cargo run --release -p btrim-bench --bin recovery_time
//! ```

use std::sync::Arc;
use std::time::Instant;

use btrim_core::catalog::{Partitioner, TableOpts};
use btrim_core::pack::{pack_cycle, PackLevel};
use btrim_core::{Engine, EngineConfig, EngineMode};
use btrim_pagestore::MemDisk;
use btrim_wal::MemLog;

const ROWS: u64 = 60_000;
const UPDATES: u64 = 30_000;
const TXN_CHUNK: u64 = 500;
const PARTS: u32 = 8;

fn mkrow(key: u64, v: u64) -> Vec<u8> {
    let mut r = key.to_be_bytes().to_vec();
    r.extend_from_slice(&v.to_be_bytes());
    r.extend_from_slice(&[0x42; 48]);
    r
}

fn opts() -> TableOpts {
    TableOpts {
        name: "restart".into(),
        imrs_enabled: true,
        pinned: false,
        partitioner: Partitioner::HashKey { parts: PARTS },
        primary_key: Arc::new(|row: &[u8]| row[..8].to_vec()),
        layout: None,
    }
}

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig {
        mode: EngineMode::IlmOn,
        // Small IMRS budget + small buffer pool: most rows live on
        // pages, and the pool holds only a sliver of them.
        imrs_budget: 8 * 1024 * 1024,
        imrs_chunk_size: 1024 * 1024,
        buffer_frames: 256,
        maintenance_interval_txns: u64::MAX / 2, // maintenance driven inline below
        recovery_workers: workers,
        ..Default::default()
    }
}

/// Run the deterministic workload onto fresh devices and crash (drop
/// without shutdown), leaving media for recovery to chew on.
#[allow(clippy::type_complexity)]
fn build_media(checkpoint: bool) -> (Arc<MemDisk>, Arc<MemLog>, Arc<MemLog>) {
    let disk = Arc::new(MemDisk::new());
    let syslog = Arc::new(MemLog::new());
    let imrslog = Arc::new(MemLog::new());
    let e = Engine::with_devices(cfg(1), disk.clone(), syslog.clone(), imrslog.clone());
    let t = e.create_table(opts()).expect("create table");
    let mut key = 0u64;
    while key < ROWS {
        let mut txn = e.begin();
        for _ in 0..TXN_CHUNK {
            e.insert(&mut txn, &t, &mkrow(key, key.wrapping_mul(0x9E37)))
                .expect("insert");
            key += 1;
        }
        e.commit(txn).expect("commit inserts");
        if key.is_multiple_of(10_000) {
            // Push cold rows onto pages: page-log records to redo and a
            // heap to rebuild.
            e.run_maintenance();
            pack_cycle(&e, PackLevel::Aggressive);
        }
    }
    if checkpoint {
        e.checkpoint().expect("fuzzy checkpoint");
    }
    let mut i = 0u64;
    while i < UPDATES {
        let mut txn = e.begin();
        for _ in 0..TXN_CHUNK {
            let k = (i * 7919) % ROWS;
            e.update(&mut txn, &t, &k.to_be_bytes(), &mkrow(k, i))
                .expect("update");
            i += 1;
        }
        e.commit(txn).expect("commit updates");
    }
    drop(e); // crash: no shutdown, no final checkpoint
    (disk, syslog, imrslog)
}

fn main() {
    println!("# Recovery time — serial vs partitioned parallel replay");
    println!(
        "# {ROWS} rows + {UPDATES} updates over {PARTS} partitions; pool 256 frames (dataset ≫ pool)"
    );
    btrim_bench::header(&[
        "checkpoint",
        "workers",
        "recover_ms",
        "analysis_us",
        "page_redo_us",
        "heap_rebuild_us",
        "imrs_replay_us",
        "syslog_replayed",
        "imrs_replayed",
    ]);
    for checkpoint in [false, true] {
        for workers in [1usize, 4, 8] {
            let (disk, syslog, imrslog) = build_media(checkpoint);
            let t0 = Instant::now();
            let e = Engine::recover(cfg(workers), disk, syslog, imrslog, |e| {
                e.create_table(opts()).map(|_| ())
            })
            .expect("recover");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let r = e.recovery_report();
            let variant = if checkpoint { "fuzzy" } else { "none" };
            btrim_bench::row(&[
                variant.to_string(),
                workers.to_string(),
                btrim_bench::f3(ms),
                r.analysis_micros.to_string(),
                r.page_redo_micros.to_string(),
                r.heap_rebuild_micros.to_string(),
                r.imrs_replay_micros.to_string(),
                r.syslog_redo_replayed.to_string(),
                r.imrs_records_replayed.to_string(),
            ]);
            btrim_bench::dump_json(
                &format!("recovery_time_{variant}_w{workers}"),
                &e.snapshot(),
            );
            let _ = e.shutdown();
        }
    }
}
