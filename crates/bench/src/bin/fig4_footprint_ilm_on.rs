//! Fig. 4: per-table IMRS memory footprint over time, ILM_ON.
//!
//! Expected shape: footprints stabilize for every table; the small hot
//! tables (warehouse, district) keep the same footprint as under
//! ILM_OFF, while the big cold tables (order_line, orders, history)
//! are held down by pack.

use btrim_bench::{build, default_config, mib, run_epochs, TABLES};
use btrim_core::EngineMode;

fn main() {
    let cfg = default_config(EngineMode::IlmOn);
    let (_engine, driver) = build(&cfg);
    let records = run_epochs(&driver, &cfg);

    println!("# Fig 4 — per-table IMRS footprint (MiB), ILM_ON");
    let mut cols = vec!["epoch"];
    cols.extend_from_slice(&TABLES);
    btrim_bench::header(&cols);
    for r in &records {
        let mut cells = vec![r.epoch.to_string()];
        for name in TABLES {
            let bytes = r.snapshot.table(name).map_or(0, |t| t.imrs_bytes());
            cells.push(mib(bytes));
        }
        btrim_bench::row(&cells);
    }
}
