//! Fig. 1 (evaluation): benefits of ILM strategies.
//!
//! Three identical TPC-C runs — PageOnly (reference), ILM_OFF
//! (everything in memory), ILM_ON (full ILM) — reporting per epoch:
//!
//! * relative TPM of ILM_ON vs ILM_OFF (paper: within ±10% of 1.0);
//! * % operations served by the IMRS under ILM_ON (paper: ~80%);
//! * % reduction in cache utilization vs ILM_OFF (paper: ~40% by the
//!   end of the run).

use btrim_bench::{build, default_config, f3, latency_cell};
use btrim_core::{EngineMode, OpClass};

fn main() {
    let cfg_off = default_config(EngineMode::IlmOff);
    let cfg_on = default_config(EngineMode::IlmOn);
    let cfg_page = default_config(EngineMode::PageOnly);

    let (_e_page, d_page) = build(&cfg_page);
    let (_e_off, d_off) = build(&cfg_off);
    let (_e_on, d_on) = build(&cfg_on);
    // Lock-step execution cancels host scheduling noise between modes.
    let mut recs = btrim_bench::run_epochs_interleaved(&[
        (&d_page, &cfg_page),
        (&d_off, &cfg_off),
        (&d_on, &cfg_on),
    ]);
    let on = recs.pop().unwrap();
    let off = recs.pop().unwrap();
    let page = recs.pop().unwrap();

    println!("# Fig 1 — benefits of ILM strategies");
    println!("# expectation: rel_tpm within ~0.9-1.1, hit_rate ~0.7-0.9, cache_reduction grows");
    btrim_bench::header(&[
        "epoch",
        "rel_tpm_on_vs_off",
        "imrs_hit_rate_on",
        "cache_reduction_vs_off",
        "tpm_gain_on_vs_page",
        "tpm_gain_off_vs_page",
        "commit_us_on_p50/95/99",
    ]);
    for i in 0..on.len() {
        let rel = on[i].tpm / off[i].tpm.max(1e-9);
        let hit = on[i].snapshot.imrs_hit_rate();
        let red = 1.0
            - on[i].snapshot.imrs_used_bytes as f64 / off[i].snapshot.imrs_used_bytes.max(1) as f64;
        let gain_on = on[i].tpm / page[i].tpm.max(1e-9);
        let gain_off = off[i].tpm / page[i].tpm.max(1e-9);
        btrim_bench::row(&[
            i.to_string(),
            f3(rel),
            f3(hit),
            f3(red),
            f3(gain_on),
            f3(gain_off),
            latency_cell(&on[i].snapshot, OpClass::Commit),
        ]);
    }
    let last = on.len() - 1;
    // Aggregate (noise-free) comparison over the whole run.
    let agg = |recs: &[btrim_bench::EpochRecord]| -> f64 {
        let committed: u64 = recs.iter().map(|r| r.stats.total_committed()).sum();
        let secs: f64 = recs.iter().map(|r| r.stats.elapsed.as_secs_f64()).sum();
        committed as f64 / (secs / 60.0)
    };
    let (tpm_on, tpm_off, tpm_page) = (agg(&on), agg(&off), agg(&page));
    println!(
        "# aggregate: rel_tpm_on_vs_off={} gain_on_vs_page={} gain_off_vs_page={}",
        f3(tpm_on / tpm_off),
        f3(tpm_on / tpm_page),
        f3(tpm_off / tpm_page),
    );
    println!(
        "# final: ILM_ON runs at {} of ILM_OFF throughput using {} of its cache, hit rate {}",
        f3(on[last].tpm / off[last].tpm.max(1e-9)),
        f3(on[last].snapshot.imrs_used_bytes as f64
            / off[last].snapshot.imrs_used_bytes.max(1) as f64),
        f3(on[last].snapshot.imrs_hit_rate()),
    );
    btrim_bench::dump_json("fig1_ilm_on", &on[last].snapshot);
    btrim_bench::dump_json("fig1_ilm_off", &off[last].snapshot);
    btrim_bench::dump_json("fig1_page_only", &page[last].snapshot);
}
