//! Fig. 7: rows selected for pack across tables, aggregated over 4
//! runs.
//!
//! Expected shape: packing concentrates on the high-footprint,
//! low-reuse tables — order_line, orders, history, new_order — while
//! the hot warehouse/district tables contribute almost nothing.

use btrim_bench::{build, default_config, run_epochs, TABLES};
use btrim_core::EngineMode;

fn main() {
    let mut totals: std::collections::HashMap<&str, u64> = Default::default();
    for run in 0..4u64 {
        let mut cfg = default_config(EngineMode::IlmOn);
        cfg.spec.seed ^= run * 0xABCD;
        let (_engine, driver) = build(&cfg);
        let records = run_epochs(&driver, &cfg);
        let last = records.last().expect("epochs ran");
        for name in TABLES {
            if let Some(t) = last.snapshot.table(name) {
                *totals.entry(name).or_default() += t.rows_packed();
            }
        }
        eprintln!("# run {run} complete");
    }
    println!("# Fig 7 — rows packed per table, aggregated over 4 runs");
    btrim_bench::header(&["table", "rows_packed"]);
    let mut rows: Vec<(&str, u64)> = TABLES
        .iter()
        .map(|&n| (n, *totals.get(n).unwrap_or(&0)))
        .collect();
    rows.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    for (name, v) in rows {
        btrim_bench::row(&[name.to_string(), v.to_string()]);
    }
}
