//! Fig. 5: pack overhead — normalized TPM with cumulative data packed.
//!
//! Expected shape: MB packed grows as the ILM_ON run progresses while
//! TPM stays within ~10% of the ILM_OFF reference (pack is a cheap
//! background operation).

use btrim_bench::{build, default_config, f3, latency_cell, mib};
use btrim_core::{EngineMode, OpClass};

fn main() {
    let cfg_off = default_config(EngineMode::IlmOff);
    let cfg_on = default_config(EngineMode::IlmOn);
    let (_e_off, d_off) = build(&cfg_off);
    let (_e_on, d_on) = build(&cfg_on);
    let mut recs = btrim_bench::run_epochs_interleaved(&[(&d_off, &cfg_off), (&d_on, &cfg_on)]);
    let on = recs.pop().unwrap();
    let off = recs.pop().unwrap();

    println!("# Fig 5 — normalized TpmC vs cumulative data packed (ILM_ON)");
    btrim_bench::header(&[
        "epoch",
        "normalized_tpm",
        "cumulative_packed_mib",
        "pack_txns",
        "pack_cycle_us_p50/95/99",
    ]);
    for i in 0..on.len() {
        btrim_bench::row(&[
            i.to_string(),
            f3(on[i].tpm / off[i].tpm.max(1e-9)),
            mib(on[i].snapshot.bytes_packed),
            on[i].snapshot.pack_cycles.to_string(),
            latency_cell(&on[i].snapshot, OpClass::PackCycle),
        ]);
    }
    let last = on.len() - 1;
    btrim_bench::dump_json("fig5_ilm_on", &on[last].snapshot);
}
