//! Fig. 9: high-water-mark cache utilization vs the steady cache
//! utilization threshold.
//!
//! Expected shape: observed HWM utilization tracks the configured
//! threshold across the sweep — pack and ILM balance demand around
//! whatever level the operator chooses.

use btrim_bench::{build, default_config, f3, run_epochs};
use btrim_core::EngineMode;

fn main() {
    println!("# Fig 9 — HWM utilization for different steady thresholds");
    btrim_bench::header(&["steady_threshold", "hwm_utilization", "final_utilization"]);
    for steady in [0.50, 0.60, 0.70, 0.80, 0.90] {
        let mut cfg = default_config(EngineMode::IlmOn);
        cfg.steady = steady;
        let (_engine, driver) = build(&cfg);
        let records = run_epochs(&driver, &cfg);
        let hwm = records
            .iter()
            .map(|r| r.snapshot.imrs_utilization)
            .fold(0.0f64, f64::max);
        let final_util = records.last().unwrap().snapshot.imrs_utilization;
        btrim_bench::row(&[f3(steady), f3(hwm), f3(final_util)]);
    }
}
