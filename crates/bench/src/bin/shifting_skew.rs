//! Shifting-skew memory-arbitration benchmark.
//!
//! The same memory, three ways of splitting it. A TPC-C-style workload
//! alternates between a STOCK-like phase (heavy re-use of a hot row
//! set that wants to live in the IMRS) and an ORDER-LINE-history phase
//! (wide uniform reads over a page-resident table that wants buffer
//! capacity), then swings back. Three engines with an identical total
//! budget and an identical op sequence:
//!
//! * `arbiter`  — one unified budget, the memory arbiter live;
//! * `static-even`  — fixed 50/50 IMRS / buffer split;
//! * `static-paper` — the paper-default shape (IMRS-light: the fig-1
//!   harness ratio of 12 MiB IMRS to a 64 MiB buffer pool).
//!
//! For each phase the *steady-state* window (the final third, after
//! the arbiter has had time to move budget) is scored on a combined
//! hit metric: the IMRS share of row operations plus the buffer-cache
//! hit rate — the two terms the arbiter's marginal-utility signal
//! trades against each other. The arbiter engine must match or beat
//! both static splits in every phase; the run aborts loudly if not.

use std::sync::Arc;

use btrim_bench::{dump_json, f3, header, mib, row};
use btrim_core::catalog::{Partitioner, TableOpts};
use btrim_core::{Engine, EngineConfig, EngineMode, EngineSnapshot};

/// One budget for everyone.
const TOTAL: u64 = 32 * 1024 * 1024;
/// Hot rows (~1 KiB each): the hot working set overflows *every*
/// static pool — bigger than the even split's IMRS, bigger than the
/// paper split's buffer — so hot phases reward moving nearly the whole
/// budget under the rows.
const HOT_ROWS: u64 = 22_000;
/// Cold page-store rows (~0.9 KiB each): the scan set overflows every
/// buffer configuration by a margin small enough that each MiB of
/// extra cache still buys a visible slice of hit rate.
const COLD_ROWS: u64 = 36_000;
const PHASE_TXNS: u64 = 24_000;
const OPS_PER_TXN: u64 = 4;

struct Contender {
    name: &'static str,
    engine: Arc<Engine>,
}

fn opts(name: &str, imrs: bool) -> TableOpts {
    TableOpts {
        name: name.into(),
        imrs_enabled: imrs,
        pinned: false,
        partitioner: Partitioner::Single,
        primary_key: Arc::new(|row: &[u8]| row[..8].to_vec()),
        layout: None,
    }
}

fn mkrow(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = key.to_be_bytes().to_vec();
    v.extend_from_slice(payload);
    v
}

fn base_cfg() -> EngineConfig {
    EngineConfig {
        mode: EngineMode::IlmOn,
        imrs_chunk_size: 1024 * 1024,
        steady_utilization: 0.80,
        maintenance_interval_txns: 64,
        // Quiesce the reuse tuner: this bench isolates the *budget*
        // dimension, and a tuner that disables the hot partition when
        // a shrunken IMRS churns would confound every engine's score.
        tuning_window_txns: u64::MAX / 2,
        ..Default::default()
    }
}

fn contender(name: &'static str, cfg: EngineConfig) -> Contender {
    let engine = Arc::new(Engine::new(cfg));
    let hot = engine.create_table(opts("stock_hot", true)).unwrap();
    let cold = engine.create_table(opts("order_line_hist", false)).unwrap();
    // Hot rows go through the IMRS; under the smaller splits the load
    // itself overflows the budget and pack drains it in the background.
    for base in (0..HOT_ROWS).step_by(50) {
        loop {
            let mut txn = engine.begin();
            let mut ok = true;
            for i in base..(base + 50).min(HOT_ROWS) {
                if engine
                    .insert(&mut txn, &hot, &mkrow(i, &[0xA5; 1024]))
                    .is_err()
                {
                    ok = false;
                    break;
                }
            }
            if ok {
                engine.commit(txn).unwrap();
                break;
            }
            engine.abort(txn);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    for base in (0..COLD_ROWS).step_by(100) {
        let mut txn = engine.begin();
        for i in base..(base + 100).min(COLD_ROWS) {
            engine
                .insert(&mut txn, &cold, &mkrow(1_000_000 + i, &[0x5A; 900]))
                .unwrap();
        }
        engine.commit(txn).unwrap();
    }
    Contender { name, engine }
}

/// Deterministic xorshift so every engine sees the same op sequence.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Run one phase against one engine. `hot_skew` selects the mix: the
/// hot phases are 7/8 hot-row traffic, half of it updates (like the
/// NewOrder/Payment stock writes) so rows that pressure packed out of
/// the IMRS keep re-promoting into whatever budget it currently has;
/// the cold phase is pure uniform history reads — the hot table goes
/// completely quiet, which is exactly the regime where its budget is
/// dead weight.
fn run_phase(c: &Contender, hot_skew: bool, seed: u64) {
    let engine = &c.engine;
    let hot = engine.table("stock_hot").unwrap();
    let cold = engine.table("order_line_hist").unwrap();
    let mut rng = Rng(seed | 1);
    for _ in 0..PHASE_TXNS {
        let mut txn = engine.begin();
        let mut aborted = false;
        for _op in 0..OPS_PER_TXN {
            let r = rng.next();
            let hot_op = hot_skew && r % 16 != 15;
            if hot_op {
                let key = (r >> 8) % HOT_ROWS;
                if hot_skew && (r >> 4).is_multiple_of(2) {
                    // Writing op: the update lands in the IMRS when it
                    // has headroom (promoting a packed-out row) and
                    // falls through to the page in place when not.
                    if engine
                        .update(
                            &mut txn,
                            &hot,
                            &key.to_be_bytes(),
                            &mkrow(key, &[0xA6; 1024]),
                        )
                        .is_err()
                    {
                        aborted = true; // IMRS backpressure: drop the txn
                        break;
                    }
                } else if engine.get(&txn, &hot, &key.to_be_bytes()).is_err() {
                    // Transient backpressure (e.g. a read-promotion
                    // racing a budget shrink): drop the txn and go on.
                    aborted = true;
                    break;
                }
            } else {
                let key = 1_000_000 + (r >> 8) % COLD_ROWS;
                if engine.get(&txn, &cold, &key.to_be_bytes()).is_err() {
                    aborted = true;
                    break;
                }
            }
        }
        if aborted {
            engine.abort(txn);
        } else {
            engine.commit(txn).unwrap();
        }
    }
}

/// Hit metrics over a snapshot delta. `imrs_share` is the IMRS hit
/// rate over row operations, `buffer_hit` the buffer-cache hit rate
/// over page accesses, and `combined` is their sum — the two terms
/// the arbiter's marginal-utility signal trades against each other.
/// The hot phases keep a cold trickle alive, so a split can only
/// score well there by serving the dominant traffic from the right
/// pool *and* not starving the minority stream below its utility; in
/// the pure-read cold phase `imrs_share` collapses to ~0 for every
/// engine and `buffer_hit` alone decides the score.
fn combined(before: &EngineSnapshot, after: &EngineSnapshot) -> (f64, f64, f64) {
    let imrs = after.imrs_ops - before.imrs_ops;
    let page = after.page_ops - before.page_ops;
    let hits = after.buffer.hits - before.buffer.hits;
    let misses = after.buffer.misses - before.buffer.misses;
    let imrs_share = if imrs + page > 0 {
        imrs as f64 / (imrs + page) as f64
    } else {
        1.0
    };
    let buffer_hit = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        1.0
    };
    (imrs_share, buffer_hit, imrs_share + buffer_hit)
}

fn main() {
    let contenders = vec![
        contender("arbiter", {
            EngineConfig {
                total_memory_budget: TOTAL,
                arbiter_initial_imrs_fraction: 0.5,
                arbiter_window_txns: 256,
                arbiter_hysteresis_windows: 3,
                arbiter_min_shift_bytes: 256 * 1024,
                arbiter_max_shift_fraction: 0.05,
                arbiter_imrs_floor: 0.05,
                arbiter_buffer_floor: 0.10,
                ..base_cfg()
            }
        }),
        contender("static-even", {
            EngineConfig {
                imrs_budget: TOTAL / 2,
                buffer_frames: (TOTAL / 2) as usize / btrim_pagestore::PAGE_SIZE,
                ..base_cfg()
            }
        }),
        contender("static-paper", {
            // The fig-1 harness shape (12 MiB IMRS : 64 MiB buffer),
            // rescaled to the shared total.
            EngineConfig {
                imrs_budget: TOTAL * 12 / 76,
                buffer_frames: (TOTAL * 64 / 76) as usize / btrim_pagestore::PAGE_SIZE,
                ..base_cfg()
            }
        }),
    ];
    for c in &contenders {
        c.engine.spawn_background();
    }

    println!(
        "# Shifting-skew memory arbitration — total budget {} MiB each",
        mib(TOTAL)
    );
    header(&[
        "phase",
        "engine",
        "imrs_share",
        "buffer_hit",
        "combined",
        "imrs_mib",
        "buffer_mib",
        "shifts",
    ]);

    let phases = [("hot-1", true), ("cold", false), ("hot-2", true)];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); contenders.len()];
    for (p, (phase, hot_skew)) in phases.iter().enumerate() {
        for (ci, c) in contenders.iter().enumerate() {
            // Transition + re-arbitration portion of the phase: two
            // legs, enough for the arbiter to walk its budget across
            // the pools and for displaced rows to re-promote …
            run_phase(c, *hot_skew, 0xC0FFEE ^ (p as u64) << 32);
            run_phase(c, *hot_skew, 0xFACADE ^ (p as u64) << 32);
            // … then the steady-state window that gets scored.
            let before = c.engine.snapshot();
            run_phase(c, *hot_skew, 0xBEEF ^ (p as u64) << 32);
            let after = c.engine.snapshot();
            let (imrs_share, buffer_hit, comb) = combined(&before, &after);
            scores[ci].push(comb);
            row(&[
                phase.to_string(),
                c.name.to_string(),
                f3(imrs_share),
                f3(buffer_hit),
                f3(comb),
                mib(after.imrs_budget),
                mib(after.buffer_capacity_frames * btrim_pagestore::PAGE_SIZE as u64),
                after.arbiter_shifts.to_string(),
            ]);
            dump_json(&format!("shifting_skew_{phase}_{}", c.name), &after);
        }
    }

    let final_snap = contenders[0].engine.snapshot();
    println!(
        "# arbiter: {} windows, {} shifts, {} MiB -> IMRS, {} MiB -> buffer",
        final_snap.arbiter_windows,
        final_snap.arbiter_shifts,
        mib(final_snap.arbiter_bytes_to_imrs),
        mib(final_snap.arbiter_bytes_to_buffer),
    );
    for c in &contenders {
        let _ = c.engine.shutdown();
    }

    // Acceptance: the arbiter matches or beats both static splits on
    // the steady-state combined metric in every phase.
    let mut ok = true;
    for (p, (phase, _)) in phases.iter().enumerate() {
        for (ci, c) in contenders.iter().enumerate().skip(1) {
            if scores[0][p] + 1e-9 < scores[ci][p] {
                println!(
                    "FAIL {phase}: arbiter {} < {} {}",
                    f3(scores[0][p]),
                    c.name,
                    f3(scores[ci][p])
                );
                ok = false;
            }
        }
    }
    assert!(
        final_snap.arbiter_shifts > 0,
        "the workload must actually drive budget shifts"
    );
    assert!(ok, "arbiter lost a phase to a static split");
    println!("# PASS: arbiter >= both static splits in all phases");
}
