//! Ablation: PI-based pack apportioning (§VI.C) vs the naive uniform
//! distribution the paper calls out as a strawman.
//!
//! Expected shape: under the uniform policy the small hot tables
//! (warehouse, district, item, customer, stock) lose rows to pack and
//! the IMRS hit rate drops; under the partitioned policy packing
//! concentrates on order_line / orders / history / new_order and the
//! hit rate stays high.

use btrim_bench::{build, default_config, f3, run_epochs, TABLES};
use btrim_core::config::PackPolicy;
use btrim_core::EngineMode;

fn main() {
    println!("# Ablation — pack apportioning policy (§VI.C)");
    for policy in [PackPolicy::Partitioned, PackPolicy::UniformNaive] {
        let mut cfg = default_config(EngineMode::IlmOn);
        cfg.pack_policy = policy;
        let (_engine, driver) = build(&cfg);
        let records = run_epochs(&driver, &cfg);
        let last = records.last().unwrap();
        let tpm: f64 = records.iter().map(|r| r.tpm).sum::<f64>() / records.len() as f64;
        println!(
            "## policy = {policy:?} (hit_rate {}, avg_tpm {:.0}, total_packed {})",
            f3(last.snapshot.imrs_hit_rate()),
            tpm,
            last.snapshot.rows_packed,
        );
        btrim_bench::header(&["table", "rows_packed", "imrs_rows_left"]);
        for n in TABLES {
            let t = last.snapshot.table(n);
            btrim_bench::row(&[
                n.to_string(),
                t.map_or(0, |t| t.rows_packed()).to_string(),
                t.map_or(0, |t| t.imrs_rows()).to_string(),
            ]);
        }
    }
}
