//! Fig. 6: average per-row re-use counts across tables (log scale in
//! the paper).
//!
//! Expected ranking: warehouse ≫ district ≫ stock/customer/item ≫
//! orders/new_order ≫ order_line/history (~0-1).

use btrim_bench::{build, default_config, f3, run_epochs, TABLES};
use btrim_core::EngineMode;

fn main() {
    let cfg = default_config(EngineMode::IlmOn);
    let (_engine, driver) = build(&cfg);
    let records = run_epochs(&driver, &cfg);
    let last = records.last().expect("epochs ran");

    println!("# Fig 6 — avg re-use per IMRS row, end of run (plot on log scale)");
    btrim_bench::header(&["table", "avg_reuse_per_row", "reuse_ops", "imrs_rows"]);
    for name in TABLES {
        if let Some(t) = last.snapshot.table(name) {
            btrim_bench::row(&[
                name.to_string(),
                f3(t.avg_reuse_per_row()),
                t.reuse_ops().to_string(),
                t.imrs_rows().to_string(),
            ]);
        }
    }
}
