//! HTAP analytic-scan benchmark: columnar frozen extents vs.
//! row-at-a-time evaluation over TPC-C ORDER-LINE.
//!
//! Loads a TPC-C database, packs ORDER-LINE cold and freezes it into
//! columnar extents, then times the same filtered aggregate (the
//! CH-benCHmark delivered-quantity query) two ways:
//!
//! * `analytic_scan` — the engine's snapshot scan, serving frozen rows
//!   straight from the bit-packed `delivery_d` / `quantity` columns
//!   with zone-map pruning;
//! * row-at-a-time — a primary-index range scan decoding every full
//!   ORDER-LINE row and evaluating the same predicate in the client.
//!
//! Also reports the freeze compression ratio (raw row bytes vs.
//! encoded extent bytes) for the acceptance target of ≥2×.

use std::time::Instant;

use btrim_core::freeze::freeze_tick;
use btrim_core::pack::{pack_cycle, PackLevel};
use btrim_core::{Engine, EngineConfig, EngineMode};
use btrim_tpcc::analytics;
use btrim_tpcc::loader::{load, LoadSpec};
use btrim_tpcc::schema::OrderLine;

fn main() {
    let engine = Engine::new(EngineConfig {
        mode: EngineMode::IlmOn,
        imrs_budget: 16 * 1024 * 1024,
        buffer_frames: 4096,
        maintenance_interval_txns: u64::MAX / 2,
        freeze_enabled: true,
        freeze_min_rows: 32,
        freeze_max_rows: 4096,
        ..Default::default()
    });
    let spec = LoadSpec {
        warehouses: 2,
        items: 1_000,
        customers_per_district: 60,
        orders_per_district: 120,
        seed: 42,
    };
    let tables = load(&engine, &spec).unwrap();

    // Cool ORDER-LINE all the way down: IMRS → pages → frozen extents.
    engine.run_maintenance();
    while pack_cycle(&engine, PackLevel::Aggressive) > 0 {}
    loop {
        let mut n = 0;
        for &p in &tables.order_line.partitions {
            n += btrim_core::freeze::freeze_partition(&engine, &tables.order_line, p);
        }
        if n == 0 {
            break;
        }
    }
    // Capture compression stats now, while ORDER-LINE is the only
    // frozen table (the later sweep adds opaque extents from tables
    // without declared layouts, which would muddy the ratio).
    let snap_stats = engine.snapshot();
    freeze_tick(&engine); // sweep any other table with cold pages
    println!("# HTAP analytic scan — ORDER-LINE, delivered-quantity aggregate");
    println!(
        "frozen: {} extents, {} rows, {:.1} KiB raw -> {:.1} KiB encoded ({:.2}x compression)",
        snap_stats.frozen_extents,
        snap_stats.rows_frozen,
        snap_stats.frozen_raw_bytes as f64 / 1024.0,
        snap_stats.frozen_encoded_bytes as f64 / 1024.0,
        snap_stats.frozen_raw_bytes as f64 / snap_stats.frozen_encoded_bytes.max(1) as f64
    );

    const ITERS: u32 = 50;
    let snap = engine.begin_snapshot();

    // Columnar: the engine's analytic scan.
    let mut col = Default::default();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        col = analytics::delivered_quantity(&engine, &snap, &tables).unwrap();
    }
    let columnar = t0.elapsed() / ITERS;

    // Row-at-a-time: decode every row, evaluate in the client.
    let txn = engine.begin();
    let mut row_matched = 0u64;
    let mut row_sum = 0u128;
    let mut row_scanned = 0u64;
    let t1 = Instant::now();
    for _ in 0..ITERS {
        row_matched = 0;
        row_sum = 0;
        row_scanned = 0;
        engine
            .scan_range(&txn, &tables.order_line, &[], None, |_k, _rid, row| {
                let ol = OrderLine::decode(row).unwrap();
                row_scanned += 1;
                if ol.delivery_d >= 1 {
                    row_matched += 1;
                    row_sum += ol.quantity as u128;
                }
                true
            })
            .unwrap();
    }
    let row_at_a_time = t1.elapsed() / ITERS;
    engine.commit(txn).unwrap();
    engine.end_snapshot(snap);

    assert_eq!(col.rows_scanned, row_scanned, "coverage diverged");
    assert_eq!(col.rows_matched, row_matched, "match counts diverged");
    assert_eq!(col.sums[0], row_sum, "aggregates diverged");

    btrim_bench::header(&[
        "path",
        "rows_scanned",
        "rows_frozen_served",
        "us_per_scan",
        "speedup",
    ]);
    let c_us = columnar.as_secs_f64() * 1e6;
    let r_us = row_at_a_time.as_secs_f64() * 1e6;
    btrim_bench::row(&[
        "analytic_scan".into(),
        col.rows_scanned.to_string(),
        col.frozen_rows.to_string(),
        format!("{c_us:.1}"),
        "1.00".into(),
    ]);
    btrim_bench::row(&[
        "row_at_a_time".into(),
        row_scanned.to_string(),
        "0".into(),
        format!("{r_us:.1}"),
        format!("{:.2}", r_us / c_us),
    ]);
}
