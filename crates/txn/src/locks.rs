//! Sharded row lock manager.
//!
//! Row-level locks are what keep online data movement safe (§VII.B):
//! DMLs move rows between stores while holding row locks; pack threads
//! request *conditional* locks and simply skip rows they cannot get, so
//! active DMLs never block pack and pack never blocks DMLs for long
//! (pack transactions are small and commit frequently).
//!
//! Modes: shared (read-committed scanners) and exclusive (writers,
//! pack). Blocking acquisition takes a timeout; expiry surfaces as
//! [`BtrimError::LockNotGranted`], which doubles as a coarse deadlock
//! breaker.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use btrim_common::{BtrimError, Result, RowId, TxnId};

/// Lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared: many readers.
    Shared,
    /// Exclusive: one writer.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockEntry {
    /// Holders in shared mode (contains exactly one id in exclusive
    /// mode).
    holders: Vec<TxnId>,
    exclusive: bool,
}

impl LockEntry {
    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        if self.holders.is_empty() {
            return true;
        }
        match mode {
            LockMode::Shared => {
                !self.exclusive || (self.holders.len() == 1 && self.holders[0] == txn)
            }
            LockMode::Exclusive => self.holders.len() == 1 && self.holders[0] == txn,
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                if !self.holders.contains(&txn) {
                    self.holders.push(txn);
                }
                // A holder that already has exclusive keeps it.
            }
            LockMode::Exclusive => {
                if self.holders.is_empty() {
                    self.holders.push(txn);
                } else {
                    debug_assert_eq!(self.holders, vec![txn], "upgrade requires sole holder");
                }
                self.exclusive = true;
            }
        }
    }
}

struct Shard {
    table: Mutex<HashMap<RowId, LockEntry>>,
    cv: Condvar,
}

const SHARDS: usize = 64;

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    default_timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(Duration::from_millis(500))
    }
}

impl LockManager {
    /// Create a manager with a default blocking timeout.
    pub fn new(default_timeout: Duration) -> Self {
        LockManager {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    table: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            default_timeout,
        }
    }

    #[inline]
    fn shard(&self, row: RowId) -> &Shard {
        let h = (row.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize;
        &self.shards[h % SHARDS]
    }

    /// Acquire a lock, blocking up to the default timeout.
    pub fn lock(&self, txn: TxnId, row: RowId, mode: LockMode) -> Result<()> {
        self.lock_timeout(txn, row, mode, self.default_timeout)
    }

    /// Acquire a lock, blocking up to `timeout`.
    pub fn lock_timeout(
        &self,
        txn: TxnId,
        row: RowId,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<()> {
        let shard = self.shard(row);
        let mut table = shard.table.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let entry = table.entry(row).or_default();
            if entry.can_grant(txn, mode) {
                entry.grant(txn, mode);
                return Ok(());
            }
            let holder = entry.holders.first().copied();
            if shard.cv.wait_until(&mut table, deadline).timed_out() {
                return Err(BtrimError::LockNotGranted { row, holder });
            }
        }
    }

    /// Conditional (try) lock: never blocks. This is the primitive pack
    /// threads use — "Pack threads request a conditional lock on rows.
    /// If a row-lock cannot be granted, row is skipped for pack"
    /// (§VII.B).
    pub fn try_lock(&self, txn: TxnId, row: RowId, mode: LockMode) -> bool {
        let shard = self.shard(row);
        let mut table = shard.table.lock();
        let entry = table.entry(row).or_default();
        if entry.can_grant(txn, mode) {
            entry.grant(txn, mode);
            true
        } else {
            false
        }
    }

    /// Release one lock. A no-op if `txn` does not hold it.
    pub fn unlock(&self, txn: TxnId, row: RowId) {
        let shard = self.shard(row);
        let mut table = shard.table.lock();
        if let Some(entry) = table.get_mut(&row) {
            entry.holders.retain(|&t| t != txn);
            if entry.holders.is_empty() {
                table.remove(&row);
            } else if entry.exclusive && entry.holders.iter().all(|&t| t != txn) {
                // The exclusive holder left; remaining shared holders
                // (possible after a failed upgrade path) demote the entry.
                entry.exclusive = false;
            }
        }
        drop(table);
        shard.cv.notify_all();
    }

    /// Release a batch of locks (commit/abort of strict 2PL txns).
    pub fn unlock_all<'a>(&self, txn: TxnId, rows: impl IntoIterator<Item = &'a RowId>) {
        for &row in rows {
            self.unlock(txn, row);
        }
    }

    /// Whether `txn` currently holds a lock on `row` (tests).
    pub fn holds(&self, txn: TxnId, row: RowId) -> bool {
        let shard = self.shard(row);
        let table = shard.table.lock();
        table.get(&row).is_some_and(|e| e.holders.contains(&txn))
    }

    /// Number of rows with at least one lock (tests/stats).
    pub fn locked_rows(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(50))
    }

    #[test]
    fn exclusive_excludes() {
        let m = mgr();
        assert!(m.try_lock(TxnId(1), RowId(1), LockMode::Exclusive));
        assert!(!m.try_lock(TxnId(2), RowId(1), LockMode::Exclusive));
        assert!(!m.try_lock(TxnId(2), RowId(1), LockMode::Shared));
        // Reentrant for the holder.
        assert!(m.try_lock(TxnId(1), RowId(1), LockMode::Exclusive));
        m.unlock(TxnId(1), RowId(1));
        assert!(m.try_lock(TxnId(2), RowId(1), LockMode::Exclusive));
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        assert!(m.try_lock(TxnId(1), RowId(1), LockMode::Shared));
        assert!(m.try_lock(TxnId(2), RowId(1), LockMode::Shared));
        // Exclusive blocked while two readers hold.
        assert!(!m.try_lock(TxnId(3), RowId(1), LockMode::Exclusive));
        m.unlock(TxnId(1), RowId(1));
        m.unlock(TxnId(2), RowId(1));
        assert!(m.try_lock(TxnId(3), RowId(1), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_when_sole_shared_holder() {
        let m = mgr();
        assert!(m.try_lock(TxnId(1), RowId(1), LockMode::Shared));
        assert!(m.try_lock(TxnId(1), RowId(1), LockMode::Exclusive));
        assert!(!m.try_lock(TxnId(2), RowId(1), LockMode::Shared));
    }

    #[test]
    fn blocking_lock_times_out_with_holder_info() {
        let m = mgr();
        assert!(m.try_lock(TxnId(1), RowId(7), LockMode::Exclusive));
        let err = m.lock(TxnId(2), RowId(7), LockMode::Exclusive).unwrap_err();
        match err {
            BtrimError::LockNotGranted { row, holder } => {
                assert_eq!(row, RowId(7));
                assert_eq!(holder, Some(TxnId(1)));
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn blocking_lock_wakes_on_release() {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        assert!(m.try_lock(TxnId(1), RowId(9), LockMode::Exclusive));
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || m2.lock(TxnId(2), RowId(9), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        m.unlock(TxnId(1), RowId(9));
        waiter.join().unwrap().unwrap();
        assert!(m.holds(TxnId(2), RowId(9)));
    }

    #[test]
    fn unlock_all_releases_everything() {
        let m = mgr();
        let rows = [RowId(1), RowId(2), RowId(3)];
        for r in rows {
            assert!(m.try_lock(TxnId(5), r, LockMode::Exclusive));
        }
        assert_eq!(m.locked_rows(), 3);
        m.unlock_all(TxnId(5), rows.iter());
        assert_eq!(m.locked_rows(), 0);
    }

    #[test]
    fn contended_counter_stays_consistent() {
        // 8 threads increment a shared "row" under the lock manager; the
        // final count proves mutual exclusion.
        let m = Arc::new(LockManager::new(Duration::from_secs(10)));
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let txn = TxnId(t * 1000 + i);
                        m.lock(txn, RowId(42), LockMode::Exclusive).unwrap();
                        *counter.lock() += 1;
                        m.unlock(txn, RowId(42));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 200);
        assert_eq!(m.locked_rows(), 0);
    }
}
