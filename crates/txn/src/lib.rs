//! Transactions and row-level locking.
//!
//! * [`manager`] — transaction lifecycle: begin (snapshot timestamp),
//!   commit (ticks the database commit timestamp, §VI.D), abort, the
//!   oldest-active-snapshot watermark that bounds IMRS garbage
//!   collection, and the committed-transaction counter that drives ILM
//!   tuning windows (§V.B).
//! * [`locks`] — a sharded row lock manager with shared/exclusive
//!   modes, blocking acquisition with timeout, and the *conditional*
//!   (try) locks pack threads use so they never block behind active
//!   DMLs (§VII.B).

#![forbid(unsafe_code)]

pub mod locks;
pub mod manager;

pub use locks::{LockManager, LockMode};
pub use manager::{TxnHandle, TxnManager};
