//! Transaction lifecycle management.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use btrim_common::{LogicalClock, Timestamp, TxnId};

/// A live transaction: identity plus its snapshot timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnHandle {
    /// Unique transaction id.
    pub id: TxnId,
    /// Begin timestamp: this transaction sees versions committed at or
    /// before this point.
    pub snapshot: Timestamp,
}

/// Transaction manager: ids, snapshots, the commit clock, and the
/// oldest-active watermark.
pub struct TxnManager {
    clock: Arc<LogicalClock>,
    next_txn: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    active: Mutex<HashMap<TxnId, Timestamp>>,
}

impl TxnManager {
    /// Create a manager over a shared commit clock.
    pub fn new(clock: Arc<LogicalClock>) -> Self {
        TxnManager {
            clock,
            next_txn: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
        }
    }

    /// The shared commit clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    /// Start a transaction with a snapshot at the current timestamp.
    ///
    /// The snapshot is read *while holding the active-set lock*: the
    /// GC horizon ([`oldest_active_snapshot`](Self::oldest_active_snapshot))
    /// takes the same lock, so a horizon computed before this
    /// transaction registers is provably ≤ its snapshot — otherwise a
    /// preemption between reading the clock and registering would let
    /// GC truncate versions this snapshot still needs.
    pub fn begin(&self) -> TxnHandle {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let mut active = self.active.lock();
        let snapshot = self.clock.now();
        active.insert(id, snapshot);
        TxnHandle { id, snapshot }
    }

    /// Commit: advances the database commit timestamp and returns it.
    /// The caller stamps this onto the transaction's versions.
    pub fn commit(&self, txn: TxnHandle) -> Timestamp {
        let ts = self.clock.tick();
        self.active.lock().remove(&txn.id);
        self.committed.fetch_add(1, Ordering::Relaxed);
        ts
    }

    /// Abort: no timestamp is consumed.
    pub fn abort(&self, txn: TxnHandle) {
        self.active.lock().remove(&txn.id);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the oldest active transaction, or `now` when idle.
    /// Versions committed at or before this point and superseded are
    /// unreachable — the GC horizon.
    pub fn oldest_active_snapshot(&self) -> Timestamp {
        self.active
            .lock()
            .values()
            .min()
            .copied()
            .unwrap_or_else(|| self.clock.now())
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Total committed transactions — the epoch counter that drives ILM
    /// tuning windows ("wakes up after some large number of
    /// transactions complete", §V.B).
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Total aborted transactions.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Raise the id allocator above `floor`. Recovery calls this with
    /// the highest transaction id found in either log so ids are never
    /// reused across incarnations — replay gates records by id, and a
    /// reused id would let a past incarnation's verdict (committed,
    /// discarded) leak onto a fresh transaction's records.
    pub fn bump_txn_floor(&self, floor: TxnId) {
        let min_next = floor.0.saturating_add(1);
        self.next_txn.fetch_max(min_next, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> TxnManager {
        TxnManager::new(Arc::new(LogicalClock::new()))
    }

    #[test]
    fn begin_commit_lifecycle() {
        let m = mgr();
        let t1 = m.begin();
        assert_eq!(t1.snapshot, Timestamp(0));
        assert_eq!(m.active_count(), 1);
        let ts = m.commit(t1);
        assert_eq!(ts, Timestamp(1));
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 1);
        // Next txn sees the new timestamp.
        let t2 = m.begin();
        assert_eq!(t2.snapshot, Timestamp(1));
        m.abort(t2);
        assert_eq!(m.aborted_count(), 1);
        assert_eq!(m.committed_count(), 1);
    }

    #[test]
    fn txn_ids_are_unique() {
        let m = mgr();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn oldest_active_tracks_minimum() {
        let m = mgr();
        let t1 = m.begin(); // snapshot 0
        m.commit(m.begin()); // ts -> 1
        m.commit(m.begin()); // ts -> 2
        let t2 = m.begin(); // snapshot 2
        assert_eq!(m.oldest_active_snapshot(), Timestamp(0));
        m.commit(t1);
        assert_eq!(m.oldest_active_snapshot(), Timestamp(2));
        m.commit(t2);
        // Idle: watermark rides the clock.
        assert_eq!(m.oldest_active_snapshot(), m.clock().now());
    }

    #[test]
    fn concurrent_begins_and_commits() {
        let m = Arc::new(mgr());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let t = m.begin();
                        m.commit(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.committed_count(), 8 * 500);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.clock().now(), Timestamp(8 * 500));
    }
}
