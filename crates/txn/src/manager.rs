//! Transaction lifecycle management.
//!
//! # The lock-free transaction registry
//!
//! Snapshot reads must never block writers (or each other), so `begin`,
//! `commit`, `abort`, and the GC-horizon scan all run on atomics for
//! the common case: a fixed array of registry *slots*, each one
//! `AtomicU64` holding `reservation + 1` while a transaction is in
//! flight (0 = free). Only when more transactions are concurrently
//! active than there are slots does `begin` spill into a ranked mutex
//! overflow table.
//!
//! ## Why the horizon can never pass an active snapshot
//!
//! `begin` runs the *reservation protocol*:
//!
//! 1. `r = clock.now()` — the reservation;
//! 2. CAS a free slot `0 → r+1` (SeqCst);
//! 3. `fence(SeqCst)`;
//! 4. `snapshot = clock.now()` — so `r ≤ snapshot`.
//!
//! The horizon scan reads `c = clock.now()`, fences (SeqCst), then
//! scans the slots, returning the minimum reservation capped at `c`.
//! For any in-flight transaction there are two cases in the
//! sequentially-consistent order:
//!
//! * the scan **sees** its slot → horizon ≤ r ≤ snapshot;
//! * the scan **misses** it → the CAS (step 2) ordered after the scan's
//!   slot read, hence after the scan's fence and clock read; the
//!   transaction's snapshot read (step 4) is later still, and the clock
//!   is monotone, so snapshot ≥ c ≥ horizon.
//!
//! Either way `horizon ≤ snapshot` for every active transaction, and
//! transactions that begin entirely after the scan read the clock after
//! `c` was read, so their snapshots are ≥ `c` too. A horizon, once
//! valid, is therefore valid forever — which is why the scan publishes
//! through a `fetch_max` cache and the watermark is monotone.
//!
//! The overflow path mirrors the same shape under its mutex: the
//! presence counter is bumped (SeqCst) *before* the snapshot is read,
//! so a scan that observes the counter at zero proves the overflow
//! transaction's snapshot is ≥ the scan's cap.
//!
//! ## Commit is split in two
//!
//! [`reserve_commit`](TxnManager::reserve_commit) allocates the commit
//! timestamp without making it visible; the engine stamps every version
//! with it; [`finish_commit`](TxnManager::finish_commit) publishes the
//! timestamp and deregisters. A reader beginning mid-commit therefore
//! either gets a snapshot below the commit timestamp (sees none of the
//! transaction) or begins after publication (sees all of it) — never a
//! torn snapshot. Deregistration strictly after publication keeps the
//! horizon conservative throughout.

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{lock_rank, Mutex};

use btrim_common::{LogicalClock, Timestamp, TxnId};

/// Number of lock-free registry slots. More concurrent transactions
/// than this spill to the (ranked, mutex-protected) overflow table.
const SLOTS: usize = 64;

/// Sentinel slot index: the transaction lives in the overflow table.
const OVERFLOW_SLOT: u32 = u32::MAX;

/// A live transaction: identity, snapshot timestamp, and where the
/// registry tracks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnHandle {
    /// Unique transaction id.
    pub id: TxnId,
    /// Begin timestamp: this transaction sees versions committed at or
    /// before this point.
    pub snapshot: Timestamp,
    /// Registry slot index, or `u32::MAX` for the overflow table.
    slot: u32,
}

/// Transaction manager: ids, snapshots, the commit clock, and the
/// oldest-active watermark over the lock-free registry.
pub struct TxnManager {
    clock: Arc<LogicalClock>,
    next_txn: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// Registry slots: 0 = free, else `reservation.0 + 1`.
    slots: Box<[AtomicU64]>,
    /// Spill table for bursts beyond `SLOTS` concurrent transactions.
    overflow: Mutex<HashMap<TxnId, Timestamp>>,
    /// Occupancy of `overflow`, published SeqCst *before* the spilled
    /// transaction reads its snapshot (see the module proof).
    overflow_len: AtomicUsize,
    /// Monotone cache of published horizons (`fetch_max` on scan).
    cached_horizon: AtomicU64,
}

impl TxnManager {
    /// Create a manager over a shared commit clock.
    pub fn new(clock: Arc<LogicalClock>) -> Self {
        TxnManager {
            clock,
            next_txn: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            slots: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            overflow: Mutex::with_rank(lock_rank::TXN_REGISTRY, HashMap::new()),
            overflow_len: AtomicUsize::new(0),
            cached_horizon: AtomicU64::new(0),
        }
    }

    /// The shared commit clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    /// Start a transaction with a snapshot at the current timestamp.
    ///
    /// Lock-free in the common case: the reservation protocol (see the
    /// module docs) CASes a free slot before reading the snapshot, so
    /// the horizon scan can never overtake the snapshot this handle
    /// carries. Falls back to the ranked overflow mutex only when all
    /// slots are taken.
    pub fn begin(&self) -> TxnHandle {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let r = self.clock.now();
        let start = (id.0 as usize).wrapping_mul(0x9E37_79B9) % SLOTS;
        for i in 0..SLOTS {
            let idx = (start + i) % SLOTS;
            // lint: allow(atomics-ordering) -- the Relaxed failure ordering
            // only observes "slot busy" before probing the next one; the
            // success side stays SeqCst.
            if self.slots[idx]
                .compare_exchange(0, r.0 + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                fence(Ordering::SeqCst);
                let snapshot = self.clock.now();
                return TxnHandle {
                    id,
                    snapshot,
                    slot: idx as u32,
                };
            }
        }
        // Every slot taken: spill. The presence counter goes up before
        // the snapshot read, mirroring the slot CAS ordering.
        let mut ov = self.overflow.lock();
        self.overflow_len.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let snapshot = self.clock.now();
        ov.insert(id, snapshot);
        TxnHandle {
            id,
            snapshot,
            slot: OVERFLOW_SLOT,
        }
    }

    fn deregister(&self, txn: TxnHandle) {
        if txn.slot == OVERFLOW_SLOT {
            let mut ov = self.overflow.lock();
            if ov.remove(&txn.id).is_some() {
                self.overflow_len.fetch_sub(1, Ordering::SeqCst);
            }
        } else {
            self.slots[txn.slot as usize].store(0, Ordering::SeqCst);
        }
    }

    /// Reserve the commit timestamp without publishing it. The caller
    /// stamps the transaction's versions (memory-only, infallible) and
    /// then calls [`finish_commit`](Self::finish_commit).
    pub fn reserve_commit(&self) -> Timestamp {
        self.clock.reserve()
    }

    /// Publish a reserved commit timestamp and retire the transaction.
    /// Deregistration happens strictly after publication so the
    /// watermark stays conservative while the commit is in flight.
    pub fn finish_commit(&self, txn: TxnHandle, ts: Timestamp) {
        self.clock.publish(ts);
        self.deregister(txn);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Commit: advances the database commit timestamp and returns it.
    /// A [`reserve_commit`](Self::reserve_commit) +
    /// [`finish_commit`](Self::finish_commit) pair for transactions
    /// with nothing to stamp in between (internal maintenance
    /// transactions, tests).
    pub fn commit(&self, txn: TxnHandle) -> Timestamp {
        let ts = self.reserve_commit();
        self.finish_commit(txn, ts);
        ts
    }

    /// Abort: no timestamp is consumed.
    pub fn abort(&self, txn: TxnHandle) {
        self.deregister(txn);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Retire a read-only snapshot transaction: deregisters without
    /// counting toward commits or aborts (it wrote nothing).
    pub fn release(&self, txn: TxnHandle) {
        self.deregister(txn);
    }

    /// Snapshot of the oldest active transaction, or `now` when idle.
    /// Versions committed at or before this point and superseded are
    /// unreachable — the GC horizon. Monotone: each scan publishes into
    /// a `fetch_max` cache (a valid horizon is a forever-valid lower
    /// bound; see the module docs).
    pub fn oldest_active_snapshot(&self) -> Timestamp {
        let cap = self.clock.now();
        fence(Ordering::SeqCst);
        let mut min = cap.0;
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::SeqCst);
            if v != 0 {
                min = min.min(v - 1);
            }
        }
        if self.overflow_len.load(Ordering::SeqCst) > 0 {
            let ov = self.overflow.lock();
            for ts in ov.values() {
                min = min.min(ts.0);
            }
        }
        let prev = self.cached_horizon.fetch_max(min, Ordering::AcqRel);
        Timestamp(prev.max(min))
    }

    /// Number of in-flight transactions (including read-only
    /// snapshots) — the registry-size gauge.
    pub fn active_count(&self) -> usize {
        let slots = self
            .slots
            .iter()
            // lint: allow(atomics-ordering) -- monitoring gauge, not the
            // reservation protocol; a torn count is fine.
            .filter(|slot| slot.load(Ordering::Relaxed) != 0)
            .count();
        // lint: allow(atomics-ordering) -- same gauge snapshot as above.
        slots + self.overflow_len.load(Ordering::Relaxed)
    }

    /// Total committed transactions — the epoch counter that drives ILM
    /// tuning windows ("wakes up after some large number of
    /// transactions complete", §V.B).
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Total aborted transactions.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Raise the id allocator above `floor`. Recovery calls this with
    /// the highest transaction id found in either log so ids are never
    /// reused across incarnations — replay gates records by id, and a
    /// reused id would let a past incarnation's verdict (committed,
    /// discarded) leak onto a fresh transaction's records.
    pub fn bump_txn_floor(&self, floor: TxnId) {
        let min_next = floor.0.saturating_add(1);
        self.next_txn.fetch_max(min_next, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> TxnManager {
        TxnManager::new(Arc::new(LogicalClock::new()))
    }

    #[test]
    fn begin_commit_lifecycle() {
        let m = mgr();
        let t1 = m.begin();
        assert_eq!(t1.snapshot, Timestamp(0));
        assert_eq!(m.active_count(), 1);
        let ts = m.commit(t1);
        assert_eq!(ts, Timestamp(1));
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 1);
        // Next txn sees the new timestamp.
        let t2 = m.begin();
        assert_eq!(t2.snapshot, Timestamp(1));
        m.abort(t2);
        assert_eq!(m.aborted_count(), 1);
        assert_eq!(m.committed_count(), 1);
    }

    #[test]
    fn txn_ids_are_unique() {
        let m = mgr();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn oldest_active_tracks_minimum() {
        let m = mgr();
        let t1 = m.begin(); // snapshot 0
        m.commit(m.begin()); // ts -> 1
        m.commit(m.begin()); // ts -> 2
        let t2 = m.begin(); // snapshot 2
        assert_eq!(m.oldest_active_snapshot(), Timestamp(0));
        m.commit(t1);
        assert_eq!(m.oldest_active_snapshot(), Timestamp(2));
        m.commit(t2);
        // Idle: watermark rides the clock.
        assert_eq!(m.oldest_active_snapshot(), m.clock().now());
    }

    #[test]
    fn release_retires_read_only_without_counting() {
        let m = mgr();
        let snap = m.begin();
        m.release(snap);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.committed_count(), 0);
        assert_eq!(m.aborted_count(), 0);
    }

    #[test]
    fn reserve_finish_split_hides_ts_until_stamped() {
        let m = mgr();
        let t = m.begin();
        let ts = m.reserve_commit();
        assert_eq!(ts, Timestamp(1));
        // The reserved timestamp is invisible: a concurrent begin still
        // snapshots below it, so it cannot see half a transaction.
        let reader = m.begin();
        assert_eq!(reader.snapshot, Timestamp(0));
        m.finish_commit(t, ts);
        assert_eq!(m.clock().now(), Timestamp(1));
        assert_eq!(m.begin().snapshot, Timestamp(1));
        // The in-flight commit kept the horizon at the reader's level.
        assert!(m.oldest_active_snapshot() <= reader.snapshot);
        m.release(reader);
    }

    #[test]
    fn overflow_beyond_slot_capacity() {
        let m = mgr();
        // Occupy every slot and then some: the spill must be invisible
        // to callers and still tracked by the watermark.
        let handles: Vec<_> = (0..(SLOTS + 16)).map(|_| m.begin()).collect();
        assert_eq!(m.active_count(), SLOTS + 16);
        assert!(handles.iter().filter(|h| h.slot == OVERFLOW_SLOT).count() >= 16);
        m.commit(m.begin()); // clock -> 1
        assert_eq!(m.oldest_active_snapshot(), Timestamp(0));
        for h in handles {
            m.commit(h);
        }
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.oldest_active_snapshot(), m.clock().now());
    }

    #[test]
    fn horizon_is_monotone_under_churn() {
        let m = Arc::new(mgr());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churners: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = m.begin();
                        m.commit(t);
                    }
                })
            })
            .collect();
        let mut last = Timestamp(0);
        for _ in 0..2000 {
            let h = m.oldest_active_snapshot();
            assert!(h >= last, "horizon regressed: {h:?} < {last:?}");
            last = h;
        }
        stop.store(true, Ordering::Relaxed);
        for c in churners {
            c.join().unwrap();
        }
    }

    #[test]
    fn horizon_never_passes_an_active_snapshot() {
        // 4 begin/commit churners + a scanner thread; every handle the
        // churners ever hold must satisfy horizon ≤ snapshot.
        let m = Arc::new(mgr());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churners: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = m.begin();
                        let h = m.oldest_active_snapshot();
                        assert!(
                            h <= t.snapshot,
                            "horizon {h:?} passed active snapshot {:?}",
                            t.snapshot
                        );
                        m.commit(t);
                    }
                })
            })
            .collect();
        for _ in 0..5000 {
            m.oldest_active_snapshot();
        }
        stop.store(true, Ordering::Relaxed);
        for c in churners {
            c.join().unwrap();
        }
    }

    #[test]
    fn concurrent_begins_and_commits() {
        let m = Arc::new(mgr());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let t = m.begin();
                        m.commit(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.committed_count(), 8 * 500);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.clock().now(), Timestamp(8 * 500));
    }
}
