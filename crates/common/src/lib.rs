//! Shared foundation types for the BTrim hybrid storage engine.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace: strongly-typed identifiers ([`ids`]), the error type
//! ([`error`]), cache-friendly sharded statistics counters ([`counters`],
//! the per-CPU counters of §V.A of the paper), a small binary
//! encode/decode layer ([`codec`]) used by row formats and log records,
//! a monotonic logical clock ([`clock`]) used for commit timestamps, and
//! the observability primitives — lock-free log-scale latency histograms
//! ([`hist`]) and a bounded trace ring ([`ring`]) — that `btrim-obs`
//! builds its per-operation-class registry and ILM decision trace on.

#![forbid(unsafe_code)]

pub mod atomics;
pub mod clock;
pub mod codec;
pub mod counters;
pub mod error;
pub mod hist;
pub mod ids;
pub mod ring;

pub use clock::LogicalClock;
pub use counters::ShardedCounter;
pub use error::{BtrimError, Result};
pub use hist::{HistSummary, HistogramSnapshot, LatencyHistogram};
pub use ids::{Lsn, PageId, PartitionId, RowId, SlotId, TableId, Timestamp, TxnId, NULL_PAGE_ID};
pub use ring::TraceRing;
