//! Shared foundation types for the BTrim hybrid storage engine.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace: strongly-typed identifiers ([`ids`]), the error type
//! ([`error`]), cache-friendly sharded statistics counters ([`counters`],
//! the per-CPU counters of §V.A of the paper), a small binary
//! encode/decode layer ([`codec`]) used by row formats and log records,
//! and a monotonic logical clock ([`clock`]) used for commit timestamps.

pub mod clock;
pub mod codec;
pub mod counters;
pub mod error;
pub mod ids;

pub use clock::LogicalClock;
pub use counters::ShardedCounter;
pub use error::{BtrimError, Result};
pub use ids::{Lsn, PageId, PartitionId, RowId, SlotId, TableId, Timestamp, TxnId, NULL_PAGE_ID};
