//! Engine-wide error type.

use std::fmt;
use std::io;

use crate::ids::{PageId, RowId, TxnId};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, BtrimError>;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum BtrimError {
    /// An I/O error from the disk backend or log device.
    Io(io::Error),
    /// The requested page does not exist on the device.
    PageNotFound(PageId),
    /// The requested row does not exist (or is not visible).
    RowNotFound(RowId),
    /// A row lock could not be acquired (conditional locks, deadlock
    /// avoidance timeouts).
    LockNotGranted { row: RowId, holder: Option<TxnId> },
    /// The transaction was aborted (e.g. write-write conflict under
    /// snapshot isolation).
    TxnAborted { txn: TxnId, reason: String },
    /// The IMRS fragment allocator could not satisfy an allocation and the
    /// engine is rejecting new in-memory rows (§VI.A "stop storing new
    /// rows in the IMRS").
    ImrsFull { requested: usize, available: usize },
    /// Every buffer-cache frame is pinned, so nothing could be evicted
    /// to make room. `pinned` close to `capacity` with a small capacity
    /// means the cache is undersized; `pinned` close to `capacity` with
    /// a generous capacity points at a pin (guard) leak.
    BufferExhausted { pinned: usize, capacity: usize },
    /// A record or page failed to decode (corruption or version skew).
    Corrupt(String),
    /// A page's stored checksum did not match its contents (torn write
    /// or media corruption). The page must never be served as valid data.
    ChecksumMismatch(PageId),
    /// A page buffer handed to the disk backend had the wrong length.
    ShortBuffer { expected: usize, got: usize },
    /// The engine is in the read-only health state (persistent storage
    /// failure); new writes are rejected until the device recovers.
    ReadOnly(String),
    /// Catalog-level misuse: unknown table, duplicate key, schema
    /// violation, and similar caller errors.
    Invalid(String),
    /// Unique-key violation on insert.
    DuplicateKey(String),
}

impl fmt::Display for BtrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtrimError::Io(e) => write!(f, "io error: {e}"),
            BtrimError::PageNotFound(p) => write!(f, "page not found: {p}"),
            BtrimError::RowNotFound(r) => write!(f, "row not found: {r}"),
            BtrimError::LockNotGranted { row, holder } => match holder {
                Some(t) => write!(f, "lock on {row} not granted (held by {t})"),
                None => write!(f, "lock on {row} not granted"),
            },
            BtrimError::TxnAborted { txn, reason } => {
                write!(f, "transaction {txn} aborted: {reason}")
            }
            BtrimError::ImrsFull {
                requested,
                available,
            } => write!(
                f,
                "IMRS cache full: requested {requested} bytes, {available} available"
            ),
            BtrimError::BufferExhausted { pinned, capacity } => write!(
                f,
                "buffer cache exhausted: {pinned} of {capacity} frames pinned"
            ),
            BtrimError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            BtrimError::ChecksumMismatch(p) => {
                write!(f, "checksum mismatch on {p} (torn write or corruption)")
            }
            BtrimError::ShortBuffer { expected, got } => {
                write!(f, "page buffer length {got}, expected {expected}")
            }
            BtrimError::ReadOnly(reason) => {
                write!(f, "engine is read-only: {reason}")
            }
            BtrimError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            BtrimError::DuplicateKey(msg) => write!(f, "duplicate key: {msg}"),
        }
    }
}

impl std::error::Error for BtrimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BtrimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BtrimError {
    fn from(e: io::Error) -> Self {
        BtrimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BtrimError::LockNotGranted {
            row: RowId(42),
            holder: Some(TxnId(7)),
        };
        let s = e.to_string();
        assert!(s.contains("RowId(42)"));
        assert!(s.contains("TxnId(7)"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: BtrimError = io::Error::other("boom").into();
        assert!(matches!(e, BtrimError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn fault_variants_display() {
        let e = BtrimError::ChecksumMismatch(PageId(5));
        assert!(e.to_string().contains("PageId(5)"));
        let e = BtrimError::ShortBuffer {
            expected: 8192,
            got: 100,
        };
        assert!(e.to_string().contains("8192"));
        assert!(e.to_string().contains("100"));
        let e = BtrimError::ReadOnly("log device failed".into());
        assert!(e.to_string().contains("read-only"));
        assert!(e.to_string().contains("log device failed"));
    }

    #[test]
    fn imrs_full_reports_sizes() {
        let e = BtrimError::ImrsFull {
            requested: 128,
            available: 16,
        };
        let s = e.to_string();
        assert!(s.contains("128"));
        assert!(s.contains("16"));
    }
}
