//! Bounded ring buffer for structured trace events.
//!
//! Unlike the latency histograms, ILM decision traces are produced on
//! cold paths (one tuner window per second, a handful of pack cycles
//! per maintenance tick), so a short mutex-protected deque is the right
//! tool: pushes are rare, and the lock guarantees events are never torn
//! or interleaved (satellite: the 8-thread hammer test in `btrim-obs`).
//! When the ring is full the oldest event is dropped and counted, so a
//! reader can always tell whether the window it sees is complete.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct TraceRing<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl<T: Clone> TraceRing<T> {
    /// A capacity of 0 disables the ring entirely: pushes are no-ops
    /// and are not counted as drops.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub fn push(&self, event: T) {
        if self.capacity == 0 {
            return;
        }
        let mut q = self.inner.lock();
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of events ever pushed (including ones since evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Number of events evicted to make room. Zero means `events()`
    /// returns the complete history.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<T> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Copy out up to the `n` most recent events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<T> {
        let q = self.inner.lock();
        let skip = q.len().saturating_sub(n);
        q.iter().skip(skip).cloned().collect()
    }

    /// Drop all retained events; the pushed/dropped counters keep their
    /// lifetime totals.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_and_counts_drops() {
        let r = TraceRing::new(3);
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.events(), vec![2, 3, 4]);
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let r = TraceRing::new(0);
        r.push(1u32);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.pushed(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn recent_returns_tail_in_order() {
        let r = TraceRing::new(10);
        for i in 0..6u32 {
            r.push(i);
        }
        assert_eq!(r.recent(3), vec![3, 4, 5]);
        assert_eq!(r.recent(100), vec![0, 1, 2, 3, 4, 5]);
    }
}
