//! Monotonic logical clock.
//!
//! The paper's hotness machinery is expressed entirely in units of the
//! *database commit timestamp* — "an atomic counter which is incremented
//! when a transaction in the database completes" (§VI.D). `LogicalClock`
//! is that counter. Using logical time instead of wall-clock time also
//! makes every experiment in `btrim-bench` deterministic.
//!
//! # Reservation vs. publication
//!
//! Snapshot reads pin their visibility horizon to `now()` at begin. If a
//! committing transaction made its timestamp visible to `now()` *before*
//! stamping that timestamp onto its versions, a reader beginning in the
//! window would hold a snapshot that covers the commit yet observe only
//! part of it — a torn snapshot. The clock therefore splits commit into
//! two steps:
//!
//! 1. [`reserve`](LogicalClock::reserve) allocates the next timestamp
//!    without making it visible; the committer stamps every version,
//!    redo record, and side-store entry with it.
//! 2. [`publish`](LogicalClock::publish) makes it visible to `now()`.
//!    Publication is in timestamp order: a publish waits (brief spin —
//!    the window covers only memory stores, never I/O) for all smaller
//!    reservations to publish first, so `now() == t` guarantees every
//!    transaction with commit timestamp ≤ `t` is fully stamped.
//!
//! [`tick`](LogicalClock::tick) remains for callers with nothing to
//! stamp between the two steps.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::atomics::AtomicOp;
use crate::ids::Timestamp;

/// This file's key in the shared atomics-discipline table.
const CLOCK_FILE: &str = "crates/common/src/clock.rs";

/// A shared, monotonically increasing logical clock.
#[derive(Debug, Default)]
pub struct LogicalClock {
    /// Highest timestamp handed out by [`reserve`](Self::reserve).
    allocated: AtomicU64,
    /// Highest timestamp visible to [`now`](Self::now). Invariant:
    /// `published ≤ allocated`, except transiently inside `advance_to`.
    published: AtomicU64,
}

impl LogicalClock {
    /// Create a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clock starting at a given timestamp (used by recovery to
    /// resume past the highest recovered commit timestamp).
    pub fn starting_at(ts: Timestamp) -> Self {
        LogicalClock {
            allocated: AtomicU64::new(ts.0),
            published: AtomicU64::new(ts.0),
        }
    }

    /// Read the current timestamp without advancing. Only published
    /// timestamps are visible: every transaction with a commit timestamp
    /// ≤ the returned value has finished stamping its versions.
    #[inline]
    pub fn now(&self) -> Timestamp {
        crate::atomics::witness(CLOCK_FILE, "published", AtomicOp::Load, Ordering::Acquire);
        Timestamp(self.published.load(Ordering::Acquire))
    }

    /// Allocate the next commit timestamp without making it visible to
    /// [`now`](Self::now). The caller must eventually
    /// [`publish`](Self::publish) it (commit has no fallible step
    /// between the two — stamping is memory-only).
    #[inline]
    pub fn reserve(&self) -> Timestamp {
        crate::atomics::witness(CLOCK_FILE, "allocated", AtomicOp::Rmw, Ordering::AcqRel);
        Timestamp(self.allocated.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Make a reserved timestamp visible. Publishes in timestamp order:
    /// spins until every smaller reservation has published (or the clock
    /// was advanced past `ts` by recovery).
    #[inline]
    pub fn publish(&self, ts: Timestamp) {
        debug_assert!(
            ts.0 <= self.allocated.load(Ordering::Acquire),
            "publish({}) beyond allocated {}",
            ts.0,
            self.allocated.load(Ordering::Acquire)
        );
        crate::atomics::witness(CLOCK_FILE, "published", AtomicOp::Rmw, Ordering::AcqRel);
        loop {
            match self.published.compare_exchange_weak(
                ts.0 - 1,
                ts.0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(cur) => {
                    if cur >= ts.0 {
                        // Recovery advanced past us; nothing to do.
                        return;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Advance the clock and return the *new* timestamp: a
    /// reserve+publish pair for callers with nothing to stamp in
    /// between (internal maintenance transactions, tests).
    #[inline]
    pub fn tick(&self) -> Timestamp {
        let ts = self.reserve();
        self.publish(ts);
        ts
    }

    /// Ensure the clock is at least `ts` (recovery replay; no concurrent
    /// reservations are in flight during recovery).
    pub fn advance_to(&self, ts: Timestamp) {
        self.allocated.fetch_max(ts.0, Ordering::AcqRel);
        self.published.fetch_max(ts.0, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_monotonic() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), Timestamp(0));
        assert_eq!(c.tick(), Timestamp(1));
        assert_eq!(c.tick(), Timestamp(2));
        assert_eq!(c.now(), Timestamp(2));
    }

    #[test]
    fn starting_at_resumes() {
        let c = LogicalClock::starting_at(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.tick(), Timestamp(101));
    }

    #[test]
    fn advance_to_never_regresses() {
        let c = LogicalClock::starting_at(Timestamp(50));
        c.advance_to(Timestamp(10));
        assert_eq!(c.now(), Timestamp(50));
        c.advance_to(Timestamp(99));
        assert_eq!(c.now(), Timestamp(99));
    }

    #[test]
    fn reserved_timestamps_stay_invisible_until_published() {
        let c = LogicalClock::new();
        let t1 = c.reserve();
        assert_eq!(t1, Timestamp(1));
        assert_eq!(c.now(), Timestamp(0), "reservation must not be visible");
        let t2 = c.reserve();
        assert_eq!(t2, Timestamp(2));
        c.publish(t1);
        assert_eq!(c.now(), Timestamp(1), "t2 unpublished: now() stops at t1");
        c.publish(t2);
        assert_eq!(c.now(), Timestamp(2));
    }

    #[test]
    fn publication_is_in_timestamp_order() {
        // Reserve two timestamps, publish the larger one from another
        // thread: it must wait until the smaller one publishes.
        let c = Arc::new(LogicalClock::new());
        let t1 = c.reserve();
        let t2 = c.reserve();
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.publish(t2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(c.now(), Timestamp(0), "t2 must not publish before t1");
        c.publish(t1);
        h.join().unwrap();
        assert_eq!(c.now(), t2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(LogicalClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..1000).map(|_| c.tick().0).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000);
        assert_eq!(c.now(), Timestamp(8 * 1000));
    }

    #[test]
    fn concurrent_reserve_publish_pairs_interleave_safely() {
        let c = Arc::new(LogicalClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let ts = c.reserve();
                        // Simulate stamping work between the halves.
                        std::hint::spin_loop();
                        c.publish(ts);
                        assert!(c.now() >= ts);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), Timestamp(8 * 500));
    }
}
