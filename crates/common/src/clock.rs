//! Monotonic logical clock.
//!
//! The paper's hotness machinery is expressed entirely in units of the
//! *database commit timestamp* — "an atomic counter which is incremented
//! when a transaction in the database completes" (§VI.D). `LogicalClock`
//! is that counter. Using logical time instead of wall-clock time also
//! makes every experiment in `btrim-bench` deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::Timestamp;

/// A shared, monotonically increasing logical clock.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl LogicalClock {
    /// Create a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clock starting at a given timestamp (used by recovery to
    /// resume past the highest recovered commit timestamp).
    pub fn starting_at(ts: Timestamp) -> Self {
        LogicalClock {
            now: AtomicU64::new(ts.0),
        }
    }

    /// Read the current timestamp without advancing.
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::Acquire))
    }

    /// Advance the clock and return the *new* timestamp. Called once per
    /// transaction commit.
    #[inline]
    pub fn tick(&self) -> Timestamp {
        Timestamp(self.now.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Ensure the clock is at least `ts` (recovery replay).
    pub fn advance_to(&self, ts: Timestamp) {
        self.now.fetch_max(ts.0, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_monotonic() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), Timestamp(0));
        assert_eq!(c.tick(), Timestamp(1));
        assert_eq!(c.tick(), Timestamp(2));
        assert_eq!(c.now(), Timestamp(2));
    }

    #[test]
    fn starting_at_resumes() {
        let c = LogicalClock::starting_at(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.tick(), Timestamp(101));
    }

    #[test]
    fn advance_to_never_regresses() {
        let c = LogicalClock::starting_at(Timestamp(50));
        c.advance_to(Timestamp(10));
        assert_eq!(c.now(), Timestamp(50));
        c.advance_to(Timestamp(99));
        assert_eq!(c.now(), Timestamp(99));
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(LogicalClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..1000).map(|_| c.tick().0).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000);
        assert_eq!(c.now(), Timestamp(8 * 1000));
    }
}
