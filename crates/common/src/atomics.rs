//! Debug-build witness for the declared atomics discipline.
//!
//! [`discipline`] is the SAME table the static `atomics-ordering` lint
//! reads (`crates/lint/src/atomics_discipline.rs`, pulled in by
//! `include!` exactly like the lock hierarchy shared with the
//! `parking_lot` lock-rank witness). The lint proves every *lexical*
//! access site uses an ordering at least as strong as the field's
//! declared protocol; [`witness`] re-asserts the same judgment at run
//! time on the hot helpers the engine routes publication through, so a
//! refactor that weakens an ordering behind a helper the lint cannot
//! see still explodes in any debug-build test.
//!
//! Release builds compile the calls to nothing: the check sits behind
//! `cfg!(debug_assertions)` and every input is a constant, so the
//! optimizer deletes the whole call.

use std::sync::atomic::Ordering;

/// The shared discipline table (see module docs).
pub mod discipline {
    include!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../lint/src/atomics_discipline.rs"
    ));
}

/// Access kind being witnessed. A compare-exchange witnesses its
/// success ordering as `Rmw` and its failure ordering as `Load`.
#[derive(Clone, Copy, Debug)]
pub enum AtomicOp {
    Load,
    Store,
    Rmw,
}

fn ord_code(ord: Ordering) -> u8 {
    match ord {
        Ordering::Relaxed => discipline::O_RELAXED,
        Ordering::Acquire => discipline::O_ACQUIRE,
        Ordering::Release => discipline::O_RELEASE,
        Ordering::AcqRel => discipline::O_ACQREL,
        _ => discipline::O_SEQCST,
    }
}

fn op_code(op: AtomicOp) -> u8 {
    match op {
        AtomicOp::Load => discipline::OP_LOAD,
        AtomicOp::Store => discipline::OP_STORE,
        AtomicOp::Rmw => discipline::OP_RMW,
    }
}

/// Assert (debug builds only) that an access of kind `op` with
/// ordering `ord` satisfies the protocol declared for `(file, field)`.
/// An undeclared field is itself a violation — the table is supposed
/// to be complete, and the lint's completeness pass keeps it so.
#[inline(always)]
#[track_caller]
pub fn witness(file: &str, field: &str, op: AtomicOp, ord: Ordering) {
    if cfg!(debug_assertions) {
        let Some(proto) = discipline::declared_protocol(file, field) else {
            panic!("atomics witness: {file}::{field} is not declared in atomics_discipline.rs");
        };
        assert!(
            discipline::ordering_ok(proto, op_code(op), ord_code(ord)),
            "atomics witness: {file}::{field} is declared {} but was accessed \
             ({op:?}) with {ord:?}",
            discipline::protocol_name(proto),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::discipline::*;
    use super::*;

    #[test]
    fn table_is_well_formed() {
        for (i, (file, field, proto, note)) in ATOMIC_FIELDS.iter().enumerate() {
            assert!(
                matches!(*proto, P_RELAXED | P_ACQREL | P_SEQCST),
                "{file}::{field}: bad protocol {proto}"
            );
            assert!(!note.is_empty(), "{file}::{field}: empty note");
            assert!(
                file.starts_with("crates/") && file.ends_with(".rs"),
                "{file}: not a workspace-relative source path"
            );
            for (of, on, _, _) in &ATOMIC_FIELDS[..i] {
                assert!(
                    !(of == file && on == field),
                    "duplicate entry {file}::{field}"
                );
            }
        }
    }

    #[test]
    fn ordering_ok_truth_table() {
        // Relaxed protocol accepts anything.
        for op in [OP_LOAD, OP_STORE, OP_RMW] {
            for ord in [O_RELAXED, O_ACQUIRE, O_RELEASE, O_ACQREL, O_SEQCST] {
                assert!(ordering_ok(P_RELAXED, op, ord));
            }
        }
        // Acq-rel: loads need Acquire+, stores Release+, RMWs AcqRel+.
        assert!(!ordering_ok(P_ACQREL, OP_LOAD, O_RELAXED));
        assert!(ordering_ok(P_ACQREL, OP_LOAD, O_ACQUIRE));
        assert!(!ordering_ok(P_ACQREL, OP_STORE, O_RELAXED));
        assert!(!ordering_ok(P_ACQREL, OP_STORE, O_ACQUIRE));
        assert!(ordering_ok(P_ACQREL, OP_STORE, O_RELEASE));
        assert!(!ordering_ok(P_ACQREL, OP_RMW, O_RELEASE));
        assert!(ordering_ok(P_ACQREL, OP_RMW, O_ACQREL));
        assert!(ordering_ok(P_ACQREL, OP_RMW, O_SEQCST));
        // Seq-cst admits only SeqCst.
        for op in [OP_LOAD, OP_STORE, OP_RMW] {
            for ord in [O_RELAXED, O_ACQUIRE, O_RELEASE, O_ACQREL] {
                assert!(!ordering_ok(P_SEQCST, op, ord));
            }
            assert!(ordering_ok(P_SEQCST, op, O_SEQCST));
        }
    }

    #[test]
    fn witness_accepts_declared_protocol() {
        witness(
            "crates/common/src/clock.rs",
            "published",
            AtomicOp::Load,
            Ordering::Acquire,
        );
        witness(
            "crates/common/src/hist.rs",
            "count",
            AtomicOp::Rmw,
            Ordering::Relaxed,
        );
    }

    #[test]
    #[should_panic(expected = "declared acq-rel")]
    fn witness_rejects_weak_publish() {
        witness(
            "crates/common/src/clock.rs",
            "published",
            AtomicOp::Store,
            Ordering::Relaxed,
        );
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn witness_rejects_undeclared_field() {
        witness(
            "crates/common/src/clock.rs",
            "no_such_field",
            AtomicOp::Load,
            Ordering::SeqCst,
        );
    }
}
