//! Cache-friendly sharded statistics counters (§V.A of the paper).
//!
//! Maintaining workload counters with a single shared atomic causes
//! cache-line invalidation storms on multi-core machines. The paper's
//! remedy is per-CPU counters: each core updates its own cache line and a
//! reader aggregates across all lines. We reproduce that with a fixed
//! array of cache-line-padded atomics; a thread picks its shard from a
//! thread-local slot assigned round-robin, which approximates per-CPU
//! affinity without OS support.
//!
//! The `bench_counters` criterion bench in `btrim-bench` measures sharded
//! vs. single-atomic increment throughput to reproduce the motivation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards. A power of two a little above typical core counts;
/// 64 shards * 64 B = 4 KiB per counter, acceptable for the per-partition
/// metric blocks the ILM subsystem keeps.
pub const SHARDS: usize = 64;

/// One cache line worth of counter.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

/// A monotonically increasing (or signed-delta) counter sharded across
/// cache lines.
///
/// `add`/`sub` are wait-free on the shard; `load` sums all shards and is
/// O(SHARDS). Loads are racy-by-design snapshots, which is exactly what
/// the ILM tuner wants: it reads counters once per tuning window and only
/// cares about window-to-window deltas (§V.B).
pub struct ShardedCounter {
    shards: Box<[PaddedAtomic; SHARDS]>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn my_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

impl ShardedCounter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        // `Default` is not implemented for [T; 64] via derive on stable
        // without T: Copy, so build explicitly.
        let shards: Box<[PaddedAtomic; SHARDS]> = {
            let v: Vec<PaddedAtomic> = (0..SHARDS).map(|_| PaddedAtomic::default()).collect();
            match v.into_boxed_slice().try_into() {
                Ok(b) => b,
                Err(_) => unreachable!("vec length is SHARDS"),
            }
        };
        ShardedCounter { shards }
    }

    /// Add `n` on the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[my_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract `n`. Sharded counters may transiently go "negative" on a
    /// single shard; the aggregate uses wrapping arithmetic so the total
    /// is correct as long as logical adds >= subs.
    #[inline]
    pub fn sub(&self, n: u64) {
        self.shards[my_slot()].0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Aggregate the current value across all shards.
    pub fn load(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    /// Reset every shard to zero. Only used by tests and experiment
    /// harness resets; concurrent adds during reset may survive.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        let c = ShardedCounter::new();
        assert_eq!(c.load(), 0);
    }

    #[test]
    fn add_and_load_single_thread() {
        let c = ShardedCounter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.load(), 42);
    }

    #[test]
    fn sub_wraps_correctly_in_aggregate() {
        let c = ShardedCounter::new();
        c.add(100);
        c.sub(30);
        assert_eq!(c.load(), 70);
    }

    #[test]
    fn reset_zeroes() {
        let c = ShardedCounter::new();
        c.add(5);
        c.reset();
        assert_eq!(c.load(), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(ShardedCounter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), threads as u64 * per_thread);
    }

    #[test]
    fn mixed_add_sub_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let adders: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                })
            })
            .collect();
        for h in adders {
            h.join().unwrap();
        }
        let subbers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.sub(1);
                    }
                })
            })
            .collect();
        for h in subbers {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 4 * 1000 * 3 - 4 * 1000);
    }

    #[test]
    fn debug_prints_total() {
        let c = ShardedCounter::new();
        c.add(9);
        assert_eq!(format!("{c:?}"), "ShardedCounter(9)");
    }
}
