//! Lock-free log-scale latency histogram (fixed-bucket, HDR-style).
//!
//! The bucketing scheme mirrors HdrHistogram with a fixed precision of
//! [`SUB_BITS`] significant bits: values below `2^SUB_BITS` land in
//! linear unit buckets, and every higher octave `[2^k, 2^(k+1))` is
//! split into `2^SUB_BITS` equal sub-buckets. With `SUB_BITS = 4` that
//! is 16 sub-buckets per octave, bounding relative quantile error at
//! `1/16 ≈ 6.25%` — plenty for p50/p95/p99 reporting — while keeping
//! the whole table at [`BUCKETS`] (976) atomics, small enough to sit in
//! L2 and to merge cheaply.
//!
//! All mutation is a handful of relaxed atomic adds, so recording from
//! many threads never blocks and never loses counts (satellite: the
//! 8-thread hammer test in `btrim-obs`). Reads (`snapshot`) are racy by
//! design, exactly like [`crate::ShardedCounter::load`]: a snapshot
//! taken mid-record may see the count without the sum or vice versa,
//! which only perturbs the reported mean by one sample.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision: each octave is split into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS; // 16

/// Total bucket count: 16 unit buckets for values `< 16`, plus 16
/// sub-buckets for each of the 60 octaves `[2^4, 2^64)`.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_COUNT + SUB_COUNT;

/// Map a recorded value to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS here
    let sub = (value >> (msb - SUB_BITS)) as usize & (SUB_COUNT - 1);
    (msb - SUB_BITS + 1) as usize * SUB_COUNT + sub
}

/// Inclusive lower bound of a bucket: the smallest value that maps to it.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let octave = (index / SUB_COUNT - 1) as u32 + SUB_BITS;
    let sub = (index % SUB_COUNT) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Inclusive upper bound of a bucket: the largest value that maps to it.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower_bound(index + 1) - 1
}

/// A mergeable, lock-free latency histogram.
///
/// Values are whatever unit the caller picks (the engine records
/// nanoseconds). Boxed bucket storage keeps the struct cheap to embed
/// behind an `Arc` without blowing up the owner's size.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        // `AtomicU64` is not Copy, so build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v.into_boxed_slice().try_into().ok().unwrap();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Three relaxed adds and a relaxed fetch-max.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Add every bucket of `other` into `self`. Concurrent records into
    /// either side during the merge are counted at most once, never lost.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset all buckets to zero. Not atomic with respect to concurrent
    /// records; intended for quiesced use (tests, epoch boundaries).
    pub fn reset(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Take a point-in-time copy of the bucket table for offline
    /// analysis (quantiles, summaries, JSON export).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: snapshot and summarize in one call.
    pub fn summary(&self) -> HistSummary {
        self.snapshot().summary()
    }
}

/// Immutable copy of a histogram's state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket holding the q-th sample (so the estimate never
    /// understates and is monotone in `q`). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        // Use the bucket sum, not `count`: a racy snapshot may have seen
        // `count` ticked before the bucket add landed.
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 maps to the first.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let ub = bucket_upper_bound(i);
                // Never report past the observed maximum.
                return if self.max != 0 { ub.min(self.max) } else { ub };
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistSummary {
        let count = self.count;
        HistSummary {
            count,
            mean: self.sum.checked_div(count).unwrap_or(0),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Percentile digest of a histogram, in the recorded unit (nanoseconds
/// for the engine's operation classes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub mean: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_unit_range() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
    }

    #[test]
    fn bounds_bracket_every_index() {
        // Every bucket's bounds round-trip through bucket_index.
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn bounds_are_contiguous() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn extreme_values() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.50);
        // Bucketed estimate: within one sub-bucket (~6.25%) above truth.
        assert!((500..=540).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.summary().max, 1000);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn merge_equals_combined_stream() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for v in [3u64, 17, 900, 1 << 40, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 250_000, 16, 15] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        let sa = a.snapshot();
        let sb = both.snapshot();
        assert_eq!(sa.buckets, sb.buckets);
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum, sb.sum);
        assert_eq!(sa.max, sb.max);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The total count always equals the sum over the bucket table
        /// (nothing recorded is ever dropped or double-counted).
        #[test]
        fn count_equals_bucket_sum(values in proptest::collection::vec(any::<u64>(), 0..512)) {
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        }

        /// Quantile estimates never decrease as q grows, and stay
        /// within [min-bucket-bound, observed max].
        #[test]
        fn quantiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..512)) {
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
            let mut prev = 0u64;
            for &q in &qs {
                let est = s.quantile(q);
                prop_assert!(est >= prev, "quantile({}) = {} < {}", q, est, prev);
                prop_assert!(est <= s.max);
                prev = est;
            }
            prop_assert_eq!(s.quantile(1.0), *values.iter().max().unwrap());
        }

        /// Every recorded value lies inside the bounds of the bucket it
        /// maps to, and the bounds round-trip through bucket_index.
        #[test]
        fn bucket_bounds_bracket_values(values in proptest::collection::vec(any::<u64>(), 1..512)) {
            for &v in &values {
                let i = bucket_index(v);
                prop_assert!(i < BUCKETS);
                prop_assert!(bucket_lower_bound(i) <= v, "lb({}) > {}", i, v);
                prop_assert!(v <= bucket_upper_bound(i), "{} > ub({})", v, i);
                prop_assert_eq!(bucket_index(bucket_lower_bound(i)), i);
                prop_assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            }
        }

        /// merge(a, b) is indistinguishable from recording both streams
        /// into a single histogram.
        #[test]
        fn merge_matches_combined_recording(
            xs in proptest::collection::vec(any::<u64>(), 0..256),
            ys in proptest::collection::vec(any::<u64>(), 0..256),
        ) {
            let a = LatencyHistogram::new();
            let b = LatencyHistogram::new();
            let combined = LatencyHistogram::new();
            for &v in &xs {
                a.record(v);
                combined.record(v);
            }
            for &v in &ys {
                b.record(v);
                combined.record(v);
            }
            a.merge_from(&b);
            let sa = a.snapshot();
            let sc = combined.snapshot();
            prop_assert_eq!(sa.buckets, sc.buckets);
            prop_assert_eq!(sa.count, sc.count);
            prop_assert_eq!(sa.sum, sc.sum);
            prop_assert_eq!(sa.max, sc.max);
            // And the derived summaries agree too.
            prop_assert_eq!(a.summary(), combined.summary());
        }
    }
}
