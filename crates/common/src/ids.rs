//! Strongly-typed identifiers used throughout the engine.
//!
//! All identifiers are thin newtype wrappers around integers so that they
//! are free to copy, hash quickly, and cannot be confused for one another
//! at compile time. The numeric payloads are deliberately small (`u32`
//! where the domain allows) to keep hot structures compact.

use std::fmt;

/// Identifier of a table in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TableId(pub u32);

/// Identifier of a data partition.
///
/// The paper applies every ILM technique at partition granularity; an
/// unpartitioned table is a single-partition table (§V). Partition ids are
/// globally unique across tables, so ILM bookkeeping can be keyed by
/// `PartitionId` alone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PartitionId(pub u32);

/// Identifier of a page in the page store (an offset into the database
/// device, in page-size units).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageId(pub u32);

/// Sentinel page id used for "no page" (e.g. end of a page chain).
pub const NULL_PAGE_ID: PageId = PageId(u32::MAX);

impl PageId {
    /// Whether this id is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == NULL_PAGE_ID
    }
}

/// Slot number of a row within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SlotId(pub u16);

/// Stable logical row identifier.
///
/// Every row in an IMRS-enabled table is addressed by a `RowId`; indexes
/// map keys to `RowId`s and the RID-Map resolves a `RowId` to its current
/// physical home (IMRS handle or page-store slot). This indirection is what
/// lets Pack relocate rows without touching any index (§II).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RowId(pub u64);

/// Log sequence number within one of the two transaction logs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN, ordered before every real record.
    pub const ZERO: Lsn = Lsn(0);
}

/// Transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxnId(pub u64);

/// Database commit timestamp (§VI.D).
///
/// A single atomic counter incremented at each commit; row access
/// timestamps and the learned Timestamp Filter Ʈ are expressed in this
/// unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (before any commit).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Saturating distance from `self` back to `earlier`.
    #[inline]
    pub fn delta_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

macro_rules! impl_display {
    ($($t:ident),*) => {$(
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({})"), self.0)
            }
        }
    )*};
}
impl_display!(
    TableId,
    PartitionId,
    PageId,
    SlotId,
    RowId,
    Lsn,
    TxnId,
    Timestamp
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = RowId(1);
        let b = RowId(2);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&RowId(1)));
        assert!(!set.contains(&b));
    }

    #[test]
    fn null_page_id_sentinel() {
        assert!(NULL_PAGE_ID.is_null());
        assert!(!PageId(0).is_null());
        assert!(!PageId(7).is_null());
    }

    #[test]
    fn timestamp_delta_saturates() {
        assert_eq!(Timestamp(10).delta_since(Timestamp(3)), 7);
        assert_eq!(Timestamp(3).delta_since(Timestamp(10)), 0);
        assert_eq!(Timestamp::ZERO.delta_since(Timestamp::ZERO), 0);
    }

    #[test]
    fn display_formats_include_type_name() {
        assert_eq!(PageId(5).to_string(), "PageId(5)");
        assert_eq!(Timestamp(9).to_string(), "Timestamp(9)");
    }
}
