//! Minimal binary encoding layer.
//!
//! Row images, index keys, and WAL records are all encoded with this
//! little-endian, length-prefixed format. It is deliberately hand-rolled:
//! a database engine wants exact control over its on-disk byte layout,
//! and the decoder must be robust against truncated input (recovery reads
//! a log tail that may end mid-record).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{BtrimError, Result};

/// Encoding helper over a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New encoder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a fixed-width u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a fixed-width u16 (LE).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a fixed-width u32 (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a fixed-width u64 (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append a fixed-width i64 (LE).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append an f64 as its LE bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Append a length-prefixed (u32) byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finish into a plain vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Decoding cursor over a byte slice. Every read is bounds-checked and
/// returns [`BtrimError::Corrupt`] on underflow.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(BtrimError::Corrupt(format!(
                "decode underflow: need {n} bytes, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Read a u8.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a u16 (LE).
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read a u32 (LE).
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a u64 (LE).
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an i64 (LE).
    pub fn get_i64(&mut self) -> Result<i64> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read an f64 from its LE bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let out = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|e| BtrimError::Corrupt(format!("invalid utf8: {e}")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Whether the input is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(300);
        e.put_u32(70_000);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_f64(3.25);
        e.put_bytes(b"abc");
        e.put_str("héllo");
        let data = e.finish();

        let mut d = Decoder::new(&data);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u16().unwrap(), 300);
        assert_eq!(d.get_u32().unwrap(), 70_000);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), 3.25);
        assert_eq!(d.get_bytes().unwrap(), b"abc");
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert!(d.is_exhausted());
    }

    #[test]
    fn underflow_is_an_error_not_a_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.get_u32(), Err(BtrimError::Corrupt(_))));
    }

    #[test]
    fn truncated_length_prefixed_bytes_error() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello world");
        let data = e.into_vec();
        // Chop mid-payload.
        let mut d = Decoder::new(&data[..6]);
        assert!(d.get_bytes().is_err());
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let data = e.finish();
        let mut d = Decoder::new(&data);
        assert!(matches!(d.get_str(), Err(BtrimError::Corrupt(_))));
    }

    #[test]
    fn empty_encoder_reports_empty() {
        let e = Encoder::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The decoder is total: any byte soup yields values or a clean
        /// `Corrupt` error, never a panic or out-of-bounds access.
        #[test]
        fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut d = Decoder::new(&bytes);
            // Exercise every accessor until the input runs out.
            loop {
                let before = d.remaining();
                let _ = d.get_u8();
                let _ = d.get_u16();
                let _ = d.get_u32();
                let _ = d.get_u64();
                let _ = d.get_bytes();
                let _ = d.get_str();
                if d.remaining() == before || d.is_exhausted() {
                    break;
                }
            }
        }

        /// Encode-then-decode is the identity for arbitrary sequences of
        /// primitive values.
        #[test]
        fn mixed_roundtrip(
            a in any::<u64>(), b in any::<i64>(), f in any::<f64>(),
            s in "[^\u{0}]{0,64}",
            v in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let mut e = Encoder::new();
            e.put_u64(a);
            e.put_i64(b);
            e.put_f64(f);
            e.put_str(&s);
            e.put_bytes(&v);
            let data = e.finish();
            let mut d = Decoder::new(&data);
            prop_assert_eq!(d.get_u64().unwrap(), a);
            prop_assert_eq!(d.get_i64().unwrap(), b);
            let f2 = d.get_f64().unwrap();
            prop_assert!(f2 == f || (f.is_nan() && f2.is_nan()));
            prop_assert_eq!(d.get_str().unwrap(), s);
            prop_assert_eq!(d.get_bytes().unwrap(), v);
            prop_assert!(d.is_exhausted());
        }
    }
}
