//! CH-benCHmark-style analytic queries over the TPC-C schema.
//!
//! Each query is a filtered aggregate evaluated by the engine's
//! snapshot-isolated [`analytic_scan`](Engine::analytic_scan), which
//! merges frozen columnar extents, IMRS deltas, and page-resident rows
//! at one MVCC snapshot — the HTAP read path running concurrently with
//! the OLTP transaction mix.
//!
//! The shapes follow the CH-benCHmark's adaptation of TPC-H queries to
//! live TPC-C tables: delivered-lineitem aggregates over `order_line`
//! (Q1/Q6 family) and a table-wide low-stock count over `stock`
//! (StockLevel generalized from one district to the warehouse).

use btrim_core::{Engine, Result, ScanResult, ScanSpec, SnapshotTxn};

use crate::schema::Tables;

/// Q1 family: volume of delivered order lines — every line with a
/// non-NULL delivery date (`delivery_d >= 1`), summing `quantity`.
pub fn delivered_quantity_spec() -> ScanSpec {
    ScanSpec {
        filters: vec![("delivery_d".into(), 1, u64::MAX)],
        sums: vec!["quantity".into()],
    }
}

/// Q6 family: undelivered lines (`delivery_d = 0`, still in the
/// new-order backlog), summing `quantity` and counting matches.
pub fn pending_quantity_spec() -> ScanSpec {
    ScanSpec {
        filters: vec![("delivery_d".into(), 0, 0)],
        sums: vec!["quantity".into()],
    }
}

/// StockLevel family: items whose stock fell below `threshold`,
/// engine-wide rather than per-district, summing remaining `quantity`.
pub fn low_stock_spec(threshold: u32) -> ScanSpec {
    ScanSpec {
        filters: vec![("quantity".into(), 0, threshold.saturating_sub(1) as u64)],
        sums: vec!["quantity".into()],
    }
}

/// Run the delivered-quantity aggregate at `snap`.
pub fn delivered_quantity(
    engine: &Engine,
    snap: &SnapshotTxn,
    tables: &Tables,
) -> Result<ScanResult> {
    engine.analytic_scan(snap, &tables.order_line, &delivered_quantity_spec())
}

/// Run the pending-quantity aggregate at `snap`.
pub fn pending_quantity(
    engine: &Engine,
    snap: &SnapshotTxn,
    tables: &Tables,
) -> Result<ScanResult> {
    engine.analytic_scan(snap, &tables.order_line, &pending_quantity_spec())
}

/// Run the low-stock aggregate at `snap`.
pub fn low_stock(
    engine: &Engine,
    snap: &SnapshotTxn,
    tables: &Tables,
    threshold: u32,
) -> Result<ScanResult> {
    engine.analytic_scan(snap, &tables.stock, &low_stock_spec(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load, LoadSpec};
    use crate::schema::OrderLine;
    use btrim_core::{EngineConfig, EngineMode};

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            mode: EngineMode::IlmOn,
            freeze_enabled: true,
            freeze_min_rows: 16,
            ..EngineConfig::with_mode(EngineMode::IlmOn, 32 * 1024 * 1024)
        })
    }

    #[test]
    fn queries_agree_with_row_decode() {
        let engine = small_engine();
        let spec = LoadSpec {
            warehouses: 1,
            items: 200,
            customers_per_district: 20,
            orders_per_district: 30,
            seed: 7,
        };
        let tables = load(&engine, &spec).unwrap();
        // Row-at-a-time oracle over the primary index.
        let txn = engine.begin();
        let mut delivered = 0u128;
        let mut delivered_rows = 0u64;
        let mut pending_rows = 0u64;
        engine
            .scan_range(&txn, &tables.order_line, &[], None, |_k, _rid, row| {
                let ol = OrderLine::decode(row).unwrap();
                if ol.delivery_d >= 1 {
                    delivered += ol.quantity as u128;
                    delivered_rows += 1;
                } else {
                    pending_rows += 1;
                }
                true
            })
            .unwrap();
        engine.commit(txn).unwrap();

        let snap = engine.begin_snapshot();
        let d = delivered_quantity(&engine, &snap, &tables).unwrap();
        assert_eq!(d.rows_matched, delivered_rows);
        assert_eq!(d.sums[0], delivered);
        let p = pending_quantity(&engine, &snap, &tables).unwrap();
        assert_eq!(p.rows_matched, pending_rows);
        assert_eq!(d.rows_scanned, delivered_rows + pending_rows);

        // Every loaded stock row has quantity in 10..=100.
        let s = low_stock(&engine, &snap, &tables, 1_000).unwrap();
        assert_eq!(s.rows_matched, s.rows_scanned);
        assert!(s.rows_scanned > 0);
        engine.end_snapshot(snap);
    }
}
