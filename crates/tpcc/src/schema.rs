//! TPC-C row formats.
//!
//! Every row starts with its big-endian primary-key bytes (fixed width
//! per table), so the engine's key extractor is a cheap prefix slice
//! and keys order correctly in the B+tree. The remainder of the row is
//! codec-encoded payload. Two tables reserve extra fixed-offset bytes
//! for secondary keys: `customer` embeds a 16-byte padded last name at
//! offset 12, `orders` embeds the customer id at offset 12.

use std::sync::Arc;

use btrim_common::codec::{Decoder, Encoder};
use btrim_common::Result;
use btrim_core::catalog::{FieldKind, KeyExtractor, Partitioner, RowLayout, TableOpts};
use btrim_core::{Engine, Result as CoreResult};

/// Pad / truncate a string into a fixed byte array.
fn fixed<const N: usize>(s: &str) -> [u8; N] {
    let mut out = [b' '; N];
    for (i, b) in s.bytes().take(N).enumerate() {
        out[i] = b;
    }
    out
}

/// Render a fixed field back into a trimmed string.
pub fn unfixed(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).trim_end().to_string()
}

// ---------------------------------------------------------------------
// warehouse
// ---------------------------------------------------------------------

/// The `warehouse` table: small, heavily scanned and updated.
#[derive(Debug, Clone, PartialEq)]
pub struct Warehouse {
    pub w_id: u32,
    pub name: String,
    pub street: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub tax: f64,
    pub ytd: f64,
}

impl Warehouse {
    /// Primary key bytes for a warehouse id.
    pub fn key(w_id: u32) -> Vec<u8> {
        w_id.to_be_bytes().to_vec()
    }

    /// Serialize (key prefix + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id);
        let mut body = Encoder::with_capacity(96);
        body.put_str(&self.name);
        body.put_str(&self.street);
        body.put_str(&self.city);
        body.put_str(&self.state);
        body.put_str(&self.zip);
        body.put_f64(self.tax);
        body.put_f64(self.ytd);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let mut d = Decoder::new(&data[4..]);
        Ok(Warehouse {
            w_id,
            name: d.get_str()?,
            street: d.get_str()?,
            city: d.get_str()?,
            state: d.get_str()?,
            zip: d.get_str()?,
            tax: d.get_f64()?,
            ytd: d.get_f64()?,
        })
    }
}

// ---------------------------------------------------------------------
// district
// ---------------------------------------------------------------------

/// The `district` table: 10 per warehouse, hot counters.
#[derive(Debug, Clone, PartialEq)]
pub struct District {
    pub w_id: u32,
    pub d_id: u32,
    pub name: String,
    pub street: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub tax: f64,
    pub ytd: f64,
    pub next_o_id: u32,
}

impl District {
    /// Primary key bytes.
    pub fn key(w_id: u32, d_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.d_id);
        let mut body = Encoder::with_capacity(96);
        body.put_str(&self.name);
        body.put_str(&self.street);
        body.put_str(&self.city);
        body.put_str(&self.state);
        body.put_str(&self.zip);
        body.put_f64(self.tax);
        body.put_f64(self.ytd);
        body.put_u32(self.next_o_id);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let d_id = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let mut d = Decoder::new(&data[8..]);
        Ok(District {
            w_id,
            d_id,
            name: d.get_str()?,
            street: d.get_str()?,
            city: d.get_str()?,
            state: d.get_str()?,
            zip: d.get_str()?,
            tax: d.get_f64()?,
            ytd: d.get_f64()?,
            next_o_id: d.get_u32()?,
        })
    }
}

// ---------------------------------------------------------------------
// customer
// ---------------------------------------------------------------------

/// Width of the fixed last-name field embedded in customer rows.
pub const LAST_NAME_LEN: usize = 16;

/// The `customer` table: medium, heavy updates and some selects.
#[derive(Debug, Clone, PartialEq)]
pub struct Customer {
    pub w_id: u32,
    pub d_id: u32,
    pub c_id: u32,
    pub last: String,
    pub first: String,
    pub middle: String,
    pub street: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub phone: String,
    pub since: u64,
    pub credit: String,
    pub credit_lim: f64,
    pub discount: f64,
    pub balance: f64,
    pub ytd_payment: f64,
    pub payment_cnt: u32,
    pub delivery_cnt: u32,
    pub data: String,
}

impl Customer {
    /// Primary key bytes.
    pub fn key(w_id: u32, d_id: u32, c_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&c_id.to_be_bytes());
        k
    }

    /// Secondary key bytes: (w, d, padded last name).
    pub fn name_key(w_id: u32, d_id: u32, last: &str) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&fixed::<LAST_NAME_LEN>(last));
        k
    }

    /// Secondary-key extractor over the encoded row.
    pub fn name_extractor() -> KeyExtractor {
        Arc::new(|row: &[u8]| {
            let mut k = row[..8].to_vec(); // w, d
            k.extend_from_slice(&row[12..12 + LAST_NAME_LEN]);
            k
        })
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.d_id, self.c_id);
        out.extend_from_slice(&fixed::<LAST_NAME_LEN>(&self.last));
        let mut body = Encoder::with_capacity(420);
        body.put_str(&self.first);
        body.put_str(&self.middle);
        body.put_str(&self.street);
        body.put_str(&self.city);
        body.put_str(&self.state);
        body.put_str(&self.zip);
        body.put_str(&self.phone);
        body.put_u64(self.since);
        body.put_str(&self.credit);
        body.put_f64(self.credit_lim);
        body.put_f64(self.discount);
        body.put_f64(self.balance);
        body.put_f64(self.ytd_payment);
        body.put_u32(self.payment_cnt);
        body.put_u32(self.delivery_cnt);
        body.put_str(&self.data);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let d_id = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let c_id = u32::from_be_bytes(data[8..12].try_into().unwrap());
        let last = unfixed(&data[12..12 + LAST_NAME_LEN]);
        let mut d = Decoder::new(&data[12 + LAST_NAME_LEN..]);
        Ok(Customer {
            w_id,
            d_id,
            c_id,
            last,
            first: d.get_str()?,
            middle: d.get_str()?,
            street: d.get_str()?,
            city: d.get_str()?,
            state: d.get_str()?,
            zip: d.get_str()?,
            phone: d.get_str()?,
            since: d.get_u64()?,
            credit: d.get_str()?,
            credit_lim: d.get_f64()?,
            discount: d.get_f64()?,
            balance: d.get_f64()?,
            ytd_payment: d.get_f64()?,
            payment_cnt: d.get_u32()?,
            delivery_cnt: d.get_u32()?,
            data: d.get_str()?,
        })
    }
}

// ---------------------------------------------------------------------
// history
// ---------------------------------------------------------------------

/// The `history` table: insert-only, never read by the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct History {
    /// Synthetic key: the spec gives history no primary key; the engine
    /// wants one.
    pub w_id: u32,
    pub seq: u64,
    pub c_w_id: u32,
    pub c_d_id: u32,
    pub c_id: u32,
    pub d_id: u32,
    pub date: u64,
    pub amount: f64,
    pub data: String,
}

impl History {
    /// Primary key bytes.
    pub fn key(w_id: u32, seq: u64) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&seq.to_be_bytes());
        k
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.seq);
        let mut body = Encoder::with_capacity(64);
        body.put_u32(self.c_w_id);
        body.put_u32(self.c_d_id);
        body.put_u32(self.c_id);
        body.put_u32(self.d_id);
        body.put_u64(self.date);
        body.put_f64(self.amount);
        body.put_str(&self.data);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let seq = u64::from_be_bytes(data[4..12].try_into().unwrap());
        let mut d = Decoder::new(&data[12..]);
        Ok(History {
            w_id,
            seq,
            c_w_id: d.get_u32()?,
            c_d_id: d.get_u32()?,
            c_id: d.get_u32()?,
            d_id: d.get_u32()?,
            date: d.get_u64()?,
            amount: d.get_f64()?,
            data: d.get_str()?,
        })
    }
}

// ---------------------------------------------------------------------
// new_order
// ---------------------------------------------------------------------

/// The `new_order` table: queue-like (inserted by NewOrder, deleted by
/// Delivery).
#[derive(Debug, Clone, PartialEq)]
pub struct NewOrder {
    pub w_id: u32,
    pub d_id: u32,
    pub o_id: u32,
}

impl NewOrder {
    /// Primary key bytes.
    pub fn key(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&o_id.to_be_bytes());
        k
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        Self::key(self.w_id, self.d_id, self.o_id)
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        Ok(NewOrder {
            w_id: u32::from_be_bytes(data[..4].try_into().unwrap()),
            d_id: u32::from_be_bytes(data[4..8].try_into().unwrap()),
            o_id: u32::from_be_bytes(data[8..12].try_into().unwrap()),
        })
    }
}

// ---------------------------------------------------------------------
// orders
// ---------------------------------------------------------------------

/// The `orders` table: large, heavy inserts, few scans.
#[derive(Debug, Clone, PartialEq)]
pub struct Order {
    pub w_id: u32,
    pub d_id: u32,
    pub o_id: u32,
    pub c_id: u32,
    pub entry_d: u64,
    /// 0 encodes NULL (not yet delivered).
    pub carrier_id: u32,
    pub ol_cnt: u32,
    pub all_local: u32,
}

impl Order {
    /// Primary key bytes.
    pub fn key(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
        NewOrder::key(w_id, d_id, o_id)
    }

    /// Secondary key bytes: (w, d, c, o) — order-status "latest order
    /// for customer" scans a (w, d, c) prefix.
    pub fn customer_key(w_id: u32, d_id: u32, c_id: u32, o_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&c_id.to_be_bytes());
        k.extend_from_slice(&o_id.to_be_bytes());
        k
    }

    /// Prefix for all of a customer's orders.
    pub fn customer_prefix(w_id: u32, d_id: u32, c_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&c_id.to_be_bytes());
        k
    }

    /// Secondary extractor over the encoded row (c_id at offset 12).
    pub fn customer_extractor() -> KeyExtractor {
        Arc::new(|row: &[u8]| {
            let mut k = row[..8].to_vec(); // w, d
            k.extend_from_slice(&row[12..16]); // c
            k.extend_from_slice(&row[8..12]); // o
            k
        })
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.d_id, self.o_id);
        out.extend_from_slice(&self.c_id.to_be_bytes());
        let mut body = Encoder::with_capacity(32);
        body.put_u64(self.entry_d);
        body.put_u32(self.carrier_id);
        body.put_u32(self.ol_cnt);
        body.put_u32(self.all_local);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let d_id = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let o_id = u32::from_be_bytes(data[8..12].try_into().unwrap());
        let c_id = u32::from_be_bytes(data[12..16].try_into().unwrap());
        let mut d = Decoder::new(&data[16..]);
        Ok(Order {
            w_id,
            d_id,
            o_id,
            c_id,
            entry_d: d.get_u64()?,
            carrier_id: d.get_u32()?,
            ol_cnt: d.get_u32()?,
            all_local: d.get_u32()?,
        })
    }
}

// ---------------------------------------------------------------------
// order_line
// ---------------------------------------------------------------------

/// The `order_line` table: the largest table, heavy inserts.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderLine {
    pub w_id: u32,
    pub d_id: u32,
    pub o_id: u32,
    pub ol_number: u32,
    pub i_id: u32,
    pub supply_w_id: u32,
    /// 0 encodes NULL (not yet delivered).
    pub delivery_d: u64,
    pub quantity: u32,
    pub amount: f64,
    pub dist_info: String,
}

impl OrderLine {
    /// Primary key bytes.
    pub fn key(w_id: u32, d_id: u32, o_id: u32, ol: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&d_id.to_be_bytes());
        k.extend_from_slice(&o_id.to_be_bytes());
        k.extend_from_slice(&ol.to_be_bytes());
        k
    }

    /// Prefix covering all lines of one order.
    pub fn order_prefix(w_id: u32, d_id: u32, o_id: u32) -> Vec<u8> {
        NewOrder::key(w_id, d_id, o_id)
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.d_id, self.o_id, self.ol_number);
        let mut body = Encoder::with_capacity(64);
        body.put_u32(self.i_id);
        body.put_u32(self.supply_w_id);
        body.put_u64(self.delivery_d);
        body.put_u32(self.quantity);
        body.put_f64(self.amount);
        body.put_str(&self.dist_info);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let d_id = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let o_id = u32::from_be_bytes(data[8..12].try_into().unwrap());
        let ol_number = u32::from_be_bytes(data[12..16].try_into().unwrap());
        let mut d = Decoder::new(&data[16..]);
        Ok(OrderLine {
            w_id,
            d_id,
            o_id,
            ol_number,
            i_id: d.get_u32()?,
            supply_w_id: d.get_u32()?,
            delivery_d: d.get_u64()?,
            quantity: d.get_u32()?,
            amount: d.get_f64()?,
            dist_info: d.get_str()?,
        })
    }

    /// Field-accurate row layout mirroring `encode()`.
    pub fn layout() -> RowLayout {
        RowLayout::new(&[
            ("w_id", FieldKind::BeU32),
            ("d_id", FieldKind::BeU32),
            ("o_id", FieldKind::BeU32),
            ("ol_number", FieldKind::BeU32),
            ("i_id", FieldKind::U32),
            ("supply_w_id", FieldKind::U32),
            ("delivery_d", FieldKind::U64),
            ("quantity", FieldKind::U32),
            ("amount", FieldKind::F64Bits),
            ("dist_info", FieldKind::Str),
        ])
    }
}

// ---------------------------------------------------------------------
// item
// ---------------------------------------------------------------------

/// The `item` table: read-only catalogue.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    pub i_id: u32,
    pub im_id: u32,
    pub name: String,
    pub price: f64,
    pub data: String,
}

impl Item {
    /// Primary key bytes.
    pub fn key(i_id: u32) -> Vec<u8> {
        i_id.to_be_bytes().to_vec()
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.i_id);
        let mut body = Encoder::with_capacity(96);
        body.put_u32(self.im_id);
        body.put_str(&self.name);
        body.put_f64(self.price);
        body.put_str(&self.data);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let i_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let mut d = Decoder::new(&data[4..]);
        Ok(Item {
            i_id,
            im_id: d.get_u32()?,
            name: d.get_str()?,
            price: d.get_f64()?,
            data: d.get_str()?,
        })
    }
}

// ---------------------------------------------------------------------
// stock
// ---------------------------------------------------------------------

/// The `stock` table: large, frequent updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Stock {
    pub w_id: u32,
    pub i_id: u32,
    pub quantity: u32,
    pub ytd: u32,
    pub order_cnt: u32,
    pub remote_cnt: u32,
    pub dist_info: String,
    pub data: String,
}

impl Stock {
    /// Primary key bytes.
    pub fn key(w_id: u32, i_id: u32) -> Vec<u8> {
        let mut k = w_id.to_be_bytes().to_vec();
        k.extend_from_slice(&i_id.to_be_bytes());
        k
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::key(self.w_id, self.i_id);
        let mut body = Encoder::with_capacity(128);
        body.put_u32(self.quantity);
        body.put_u32(self.ytd);
        body.put_u32(self.order_cnt);
        body.put_u32(self.remote_cnt);
        body.put_str(&self.dist_info);
        body.put_str(&self.data);
        out.extend_from_slice(&body.into_vec());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let w_id = u32::from_be_bytes(data[..4].try_into().unwrap());
        let i_id = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let mut d = Decoder::new(&data[8..]);
        Ok(Stock {
            w_id,
            i_id,
            quantity: d.get_u32()?,
            ytd: d.get_u32()?,
            order_cnt: d.get_u32()?,
            remote_cnt: d.get_u32()?,
            dist_info: d.get_str()?,
            data: d.get_str()?,
        })
    }

    /// Field-accurate row layout mirroring `encode()`.
    pub fn layout() -> RowLayout {
        RowLayout::new(&[
            ("w_id", FieldKind::BeU32),
            ("i_id", FieldKind::BeU32),
            ("quantity", FieldKind::U32),
            ("ytd", FieldKind::U32),
            ("order_cnt", FieldKind::U32),
            ("remote_cnt", FieldKind::U32),
            ("dist_info", FieldKind::Str),
            ("data", FieldKind::Str),
        ])
    }
}

// ---------------------------------------------------------------------
// Table registration
// ---------------------------------------------------------------------

/// Handles to all nine TPC-C tables.
pub struct Tables {
    pub warehouse: Arc<btrim_core::catalog::TableDesc>,
    pub district: Arc<btrim_core::catalog::TableDesc>,
    pub customer: Arc<btrim_core::catalog::TableDesc>,
    pub history: Arc<btrim_core::catalog::TableDesc>,
    pub new_order: Arc<btrim_core::catalog::TableDesc>,
    pub orders: Arc<btrim_core::catalog::TableDesc>,
    pub order_line: Arc<btrim_core::catalog::TableDesc>,
    pub item: Arc<btrim_core::catalog::TableDesc>,
    pub stock: Arc<btrim_core::catalog::TableDesc>,
}

/// Key extractor: the first `n` bytes of the row are the key.
fn prefix_key(n: usize) -> KeyExtractor {
    Arc::new(move |row: &[u8]| row[..n].to_vec())
}

impl Tables {
    /// Create the nine tables (and the two secondary indexes) in the
    /// engine. `warehouses` drives partition counts: the big tables are
    /// partitioned by their leading warehouse id, as §V's examples
    /// assume.
    pub fn create(engine: &Engine, warehouses: u32) -> CoreResult<Tables> {
        let parts = warehouses.clamp(1, 16);
        let mk = |name: &str, key_len: usize, partitioned: bool| TableOpts {
            name: name.into(),
            imrs_enabled: true,
            pinned: false,
            partitioner: if partitioned {
                Partitioner::KeyPrefixU32 { parts }
            } else {
                Partitioner::Single
            },
            primary_key: prefix_key(key_len),
            layout: None,
        };
        let warehouse = engine.create_table(mk("warehouse", 4, false))?;
        let district = engine.create_table(mk("district", 8, false))?;
        let customer = engine.create_table(mk("customer", 12, true))?;
        engine.create_secondary_index(&customer, "by_name", Customer::name_extractor())?;
        let history = engine.create_table(mk("history", 12, true))?;
        let new_order = engine.create_table(mk("new_order", 12, true))?;
        let orders = engine.create_table(mk("orders", 12, true))?;
        engine.create_secondary_index(&orders, "by_customer", Order::customer_extractor())?;
        // The two analytics targets declare their row encodings so the
        // freeze step can shred them into real per-field columns and
        // analytic scans can evaluate predicates field-wise. The field
        // kinds mirror `encode()` exactly: BE key prefix, then the
        // LE-encoded body.
        let order_line =
            engine.create_table(mk("order_line", 16, true).with_layout(OrderLine::layout()))?;
        let item = engine.create_table(mk("item", 4, false))?;
        let stock = engine.create_table(mk("stock", 8, true).with_layout(Stock::layout()))?;
        Ok(Tables {
            warehouse,
            district,
            customer,
            history,
            new_order,
            orders,
            order_line,
            item,
            stock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouse_roundtrip() {
        let w = Warehouse {
            w_id: 7,
            name: "wh-seven".into(),
            street: "1 Main St".into(),
            city: "Pune".into(),
            state: "MH".into(),
            zip: "411001".into(),
            tax: 0.07,
            ytd: 30000.0,
        };
        let enc = w.encode();
        assert_eq!(&enc[..4], &7u32.to_be_bytes());
        assert_eq!(Warehouse::decode(&enc).unwrap(), w);
    }

    #[test]
    fn district_roundtrip_and_key_order() {
        let d = District {
            w_id: 1,
            d_id: 5,
            name: "d5".into(),
            street: "s".into(),
            city: "c".into(),
            state: "st".into(),
            zip: "z".into(),
            tax: 0.1,
            ytd: 1.0,
            next_o_id: 3001,
        };
        let enc = d.encode();
        assert_eq!(District::decode(&enc).unwrap(), d);
        assert!(District::key(1, 5) < District::key(1, 6));
        assert!(District::key(1, 9) < District::key(2, 0));
    }

    #[test]
    fn customer_roundtrip_and_name_extractor() {
        let c = Customer {
            w_id: 2,
            d_id: 3,
            c_id: 42,
            last: "BARBAR".into(),
            first: "Alice".into(),
            middle: "OE".into(),
            street: "street".into(),
            city: "city".into(),
            state: "st".into(),
            zip: "zip".into(),
            phone: "555-0100".into(),
            since: 123456,
            credit: "GC".into(),
            credit_lim: 50000.0,
            discount: 0.12,
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: "x".repeat(200),
        };
        let enc = c.encode();
        assert_eq!(Customer::decode(&enc).unwrap(), c);
        let extracted = (Customer::name_extractor())(&enc);
        assert_eq!(extracted, Customer::name_key(2, 3, "BARBAR"));
    }

    #[test]
    fn order_roundtrip_and_customer_extractor() {
        let o = Order {
            w_id: 1,
            d_id: 2,
            o_id: 3000,
            c_id: 17,
            entry_d: 999,
            carrier_id: 0,
            ol_cnt: 8,
            all_local: 1,
        };
        let enc = o.encode();
        assert_eq!(Order::decode(&enc).unwrap(), o);
        let extracted = (Order::customer_extractor())(&enc);
        assert_eq!(extracted, Order::customer_key(1, 2, 17, 3000));
        // Customer prefix covers the extracted key.
        let prefix = Order::customer_prefix(1, 2, 17);
        assert!(extracted.starts_with(&prefix));
    }

    #[test]
    fn remaining_tables_roundtrip() {
        let h = History {
            w_id: 1,
            seq: 99,
            c_w_id: 1,
            c_d_id: 2,
            c_id: 3,
            d_id: 2,
            date: 5,
            amount: 10.0,
            data: "hist".into(),
        };
        assert_eq!(History::decode(&h.encode()).unwrap(), h);

        let no = NewOrder {
            w_id: 1,
            d_id: 2,
            o_id: 3,
        };
        assert_eq!(NewOrder::decode(&no.encode()).unwrap(), no);

        let ol = OrderLine {
            w_id: 1,
            d_id: 2,
            o_id: 3,
            ol_number: 4,
            i_id: 55,
            supply_w_id: 1,
            delivery_d: 0,
            quantity: 5,
            amount: 42.5,
            dist_info: "d".repeat(24),
        };
        assert_eq!(OrderLine::decode(&ol.encode()).unwrap(), ol);

        let it = Item {
            i_id: 9,
            im_id: 1,
            name: "widget".into(),
            price: 9.99,
            data: "ORIGINAL".into(),
        };
        assert_eq!(Item::decode(&it.encode()).unwrap(), it);

        let s = Stock {
            w_id: 1,
            i_id: 9,
            quantity: 50,
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            dist_info: "i".repeat(24),
            data: "stockdata".into(),
        };
        assert_eq!(Stock::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn tables_create_in_engine() {
        let engine = Engine::new(btrim_core::EngineConfig::default());
        let t = Tables::create(&engine, 4).unwrap();
        assert_eq!(t.warehouse.partitions.len(), 1);
        assert_eq!(t.stock.partitions.len(), 4);
        assert_eq!(t.customer.secondaries.read().len(), 1);
        assert_eq!(t.orders.secondaries.read().len(), 1);
        assert!(engine.table("order_line").is_some());
    }
}
