//! Per-table workload profiles (regenerates the paper's Table 1).
//!
//! After a benchmark run, each table's observed operation mix and size
//! classify it into the roles of Table 1: the small heavily-updated
//! `warehouse`/`district`, the insert-only `history`, the queue-like
//! `new_order`, and so on.

use btrim_core::{Engine, EngineSnapshot};

/// Observed workload profile of one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// IMRS-resident rows.
    pub imrs_rows: u64,
    /// IMRS bytes.
    pub imrs_bytes: u64,
    /// Inserts (IMRS).
    pub inserts: u64,
    /// Re-use operations (select/update/delete on IMRS rows).
    pub reuse_ops: u64,
    /// Page-store operations.
    pub page_ops: u64,
    /// Descriptive role, derived from the op mix.
    pub role: String,
}

/// Build profiles from the engine's counters.
pub fn table_profiles(engine: &Engine) -> Vec<TableProfile> {
    snapshot_profiles(&engine.snapshot())
}

/// Build profiles from an existing snapshot.
pub fn snapshot_profiles(snap: &EngineSnapshot) -> Vec<TableProfile> {
    snap.tables
        .iter()
        .map(|t| {
            let inserts: u64 = t.partitions.iter().map(|p| p.imrs_inserts).sum();
            let reuse = t.reuse_ops();
            let page_ops: u64 = t.partitions.iter().map(|p| p.page_ops).sum();
            let rows = t.imrs_rows();
            let role = classify(&t.name, inserts, reuse, rows);
            TableProfile {
                name: t.name.clone(),
                imrs_rows: rows,
                imrs_bytes: t.imrs_bytes(),
                inserts,
                reuse_ops: reuse,
                page_ops,
                role,
            }
        })
        .collect()
}

fn classify(name: &str, inserts: u64, reuse: u64, rows: u64) -> String {
    let total = inserts + reuse;
    if total == 0 {
        return "idle".into();
    }
    let insert_frac = inserts as f64 / total as f64;
    let reuse_per_row = reuse as f64 / rows.max(1) as f64;
    let role = if insert_frac > 0.9 && reuse_per_row < 0.5 {
        "insert-only"
    } else if insert_frac > 0.4 {
        "insert-heavy"
    } else if reuse_per_row > 10.0 {
        "small/hot: high scan+update rate"
    } else if reuse_per_row > 1.0 {
        "update/select-heavy"
    } else {
        "read-mostly / low activity"
    };
    let _ = name;
    role.into()
}

/// Render the profiles as an aligned text table.
pub fn render(profiles: &[TableProfile]) -> String {
    let mut out = format!(
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10}  {}\n",
        "table", "imrs_rows", "imrs_bytes", "inserts", "reuse", "page_ops", "observed role"
    );
    for p in profiles {
        out.push_str(&format!(
            "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10}  {}\n",
            p.name, p.imrs_rows, p.imrs_bytes, p.inserts, p.reuse_ops, p.page_ops, p.role
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::loader::{load, LoadSpec};
    use btrim_core::{EngineConfig, EngineMode};
    use std::sync::Arc;

    #[test]
    fn profiles_match_table_1_roles() {
        let engine = Arc::new(Engine::new(EngineConfig {
            mode: EngineMode::IlmOff,
            imrs_budget: 128 * 1024 * 1024,
            imrs_chunk_size: 4 * 1024 * 1024,
            buffer_frames: 2048,
            ..Default::default()
        }));
        let spec = LoadSpec {
            warehouses: 1,
            items: 300,
            customers_per_district: 50,
            orders_per_district: 50,
            seed: 3,
        };
        let tables = Arc::new(load(&engine, &spec).unwrap());
        let driver = Driver::new(Arc::clone(&engine), tables, &spec);
        driver.run(600, 1, 17);

        let profiles = table_profiles(&engine);
        let get = |n: &str| profiles.iter().find(|p| p.name == n).unwrap();

        // history: essentially pure inserts, no re-use.
        let h = get("history");
        assert!(h.inserts > 0);
        assert!(
            h.reuse_ops < h.inserts / 10,
            "history reuse {} vs inserts {}",
            h.reuse_ops,
            h.inserts
        );
        // warehouse/district: tiny but very hot.
        let w = get("warehouse");
        assert!(w.reuse_ops > 100, "warehouse reuse {}", w.reuse_ops);
        assert!(w.imrs_rows <= 1 + 1);
        let d = get("district");
        assert!(d.reuse_ops as f64 / d.imrs_rows.max(1) as f64 > 10.0);
        // order_line: many inserts, low per-row re-use.
        let ol = get("order_line");
        assert!(ol.inserts > 0);
        assert!(
            (ol.reuse_ops as f64 / (ol.imrs_rows.max(1)) as f64) < 2.0,
            "order_line is not hot per row"
        );
        // Rendering contains every table.
        let text = render(&profiles);
        for name in [
            "warehouse",
            "district",
            "customer",
            "history",
            "new_order",
            "orders",
            "order_line",
            "item",
            "stock",
        ] {
            assert!(text.contains(name), "render misses {name}");
        }
    }
}
