//! Mixed-workload driver.
//!
//! Executes the standard TPC-C mix (45% NewOrder, 43% Payment, 4%
//! OrderStatus, 4% Delivery, 4% StockLevel) on one or more worker
//! threads. With a fixed seed and one thread the run is fully
//! deterministic. Throughput is reported as committed transactions per
//! wall-clock minute (the paper's TPM metric) and, for deterministic
//! comparisons, as raw committed counts.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use btrim_core::{Engine, HistSummary, OpClass};

use crate::loader::LoadSpec;
use crate::schema::Tables;
use crate::txns::{self, HistorySeq, Outcome, Scale};

/// Workload + scale configuration.
#[derive(Clone, Debug, Default)]
pub struct TpccConfig {
    /// Population scale.
    pub spec: LoadSpec,
}

/// The five transaction types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnType {
    /// ~45% of the mix.
    NewOrder,
    /// ~43%.
    Payment,
    /// ~4%.
    OrderStatus,
    /// ~4%.
    Delivery,
    /// ~4%.
    StockLevel,
}

impl TxnType {
    /// All types, mix order.
    pub const ALL: [TxnType; 5] = [
        TxnType::NewOrder,
        TxnType::Payment,
        TxnType::OrderStatus,
        TxnType::Delivery,
        TxnType::StockLevel,
    ];

    fn index(self) -> usize {
        match self {
            TxnType::NewOrder => 0,
            TxnType::Payment => 1,
            TxnType::OrderStatus => 2,
            TxnType::Delivery => 3,
            TxnType::StockLevel => 4,
        }
    }
}

/// Per-type and aggregate counters for a run.
#[derive(Debug, Default, Clone)]
pub struct DriverStats {
    /// Committed per type (mix order).
    pub committed: [u64; 5],
    /// User rollbacks per type.
    pub user_aborts: [u64; 5],
    /// Engine aborts per type.
    pub engine_aborts: [u64; 5],
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Engine-side per-class latency summaries (nanoseconds), captured
    /// when the run finished. Cumulative over the engine's lifetime,
    /// not per-run; empty when the engine runs with `obs_latency:
    /// false`.
    pub latency: Vec<(OpClass, HistSummary)>,
}

impl DriverStats {
    /// Total committed transactions.
    pub fn total_committed(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Transactions per minute (committed).
    pub fn tpm(&self) -> f64 {
        let mins = self.elapsed.as_secs_f64() / 60.0;
        if mins <= 0.0 {
            return 0.0;
        }
        self.total_committed() as f64 / mins
    }

    /// Summary for one operation class, if it ever fired.
    pub fn latency_for(&self, class: OpClass) -> Option<&HistSummary> {
        self.latency
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| s)
    }

    /// One-line latency digest (p50/p95/p99 in µs) for run banners.
    /// Covers the classes a TPC-C operator reads first: commit and the
    /// two select paths.
    pub fn latency_line(&self) -> String {
        let cell = |class: OpClass| match self.latency_for(class) {
            Some(s) if s.count > 0 => format!(
                "{} p50={:.0}/p95={:.0}/p99={:.0}µs",
                class.name(),
                s.p50 as f64 / 1_000.0,
                s.p95 as f64 / 1_000.0,
                s.p99 as f64 / 1_000.0,
            ),
            _ => format!("{} -", class.name()),
        };
        [OpClass::Commit, OpClass::SelectImrs, OpClass::SelectPage]
            .map(cell)
            .join("  ")
    }

    fn merge(&mut self, other: &DriverStats) {
        for i in 0..5 {
            self.committed[i] += other.committed[i];
            self.user_aborts[i] += other.user_aborts[i];
            self.engine_aborts[i] += other.engine_aborts[i];
        }
    }
}

/// The workload driver.
pub struct Driver {
    engine: Arc<Engine>,
    tables: Arc<Tables>,
    scale: Scale,
    history_seq: Arc<HistorySeq>,
    now: Arc<AtomicU64>,
}

impl Driver {
    /// Build a driver over a loaded database.
    pub fn new(engine: Arc<Engine>, tables: Arc<Tables>, spec: &LoadSpec) -> Self {
        // History rows have a synthetic primary key; the sequence must
        // clear both the loader's range and any earlier driver's range
        // (e.g. a pre-crash incarnation after recovery), so it is salted
        // with the current commit timestamp.
        let seq_base = (1u64 << 48) | (engine.snapshot().commit_ts << 20);
        Driver {
            engine,
            tables,
            scale: Scale {
                warehouses: spec.warehouses,
                items: spec.items,
                customers_per_district: spec.customers_per_district,
            },
            history_seq: Arc::new(AtomicU64::new(seq_base)),
            now: Arc::new(AtomicU64::new(2)),
        }
    }

    /// The engine under test.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Table handles.
    pub fn tables(&self) -> &Arc<Tables> {
        &self.tables
    }

    /// Pick a type per the standard mix.
    pub fn pick(rng: &mut StdRng) -> TxnType {
        match rng.gen_range(0..100u32) {
            0..=44 => TxnType::NewOrder,
            45..=87 => TxnType::Payment,
            88..=91 => TxnType::OrderStatus,
            92..=95 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        }
    }

    /// Execute one transaction of the given type.
    pub fn run_one(&self, t: TxnType, rng: &mut StdRng) -> Outcome {
        let now = self.now.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match t {
            TxnType::NewOrder => txns::new_order(&self.engine, &self.tables, &self.scale, rng, now),
            TxnType::Payment => txns::payment(
                &self.engine,
                &self.tables,
                &self.scale,
                rng,
                now,
                &self.history_seq,
            ),
            TxnType::OrderStatus => {
                txns::order_status(&self.engine, &self.tables, &self.scale, rng)
            }
            TxnType::Delivery => txns::delivery(&self.engine, &self.tables, &self.scale, rng, now),
            TxnType::StockLevel => txns::stock_level(&self.engine, &self.tables, &self.scale, rng),
        }
    }

    /// Run `total_txns` transactions across `threads` workers with the
    /// standard mix. Deterministic when `threads == 1`.
    pub fn run(&self, total_txns: u64, threads: usize, seed: u64) -> DriverStats {
        let threads = threads.max(1);
        let per_worker = total_txns / threads as u64;
        let start = Instant::now();
        let mut stats = DriverStats::default();
        if threads == 1 {
            stats = self.worker(per_worker, seed);
        } else {
            let results: Vec<DriverStats> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|tid| {
                        let seed = seed.wrapping_add(tid as u64 * 0x9E37);
                        s.spawn(move || self.worker(per_worker, seed))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in &results {
                stats.merge(r);
            }
        }
        stats.elapsed = start.elapsed();
        stats.latency = self.engine.obs().summaries();
        stats
    }

    fn worker(&self, txns: u64, seed: u64) -> DriverStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = DriverStats::default();
        for _ in 0..txns {
            let t = Self::pick(&mut rng);
            match self.run_one(t, &mut rng) {
                Outcome::Committed => stats.committed[t.index()] += 1,
                Outcome::UserAbort => stats.user_aborts[t.index()] += 1,
                Outcome::EngineAbort => stats.engine_aborts[t.index()] += 1,
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_core::{EngineConfig, EngineMode};

    fn tiny_spec() -> LoadSpec {
        LoadSpec {
            warehouses: 1,
            items: 200,
            customers_per_district: 30,
            orders_per_district: 30,
            seed: 11,
        }
    }

    fn build(mode: EngineMode) -> Driver {
        let engine = Arc::new(Engine::new(EngineConfig {
            mode,
            imrs_budget: 64 * 1024 * 1024,
            imrs_chunk_size: 4 * 1024 * 1024,
            buffer_frames: 2048,
            ..Default::default()
        }));
        let spec = tiny_spec();
        let tables = Arc::new(crate::loader::load(&engine, &spec).unwrap());
        Driver::new(engine, tables, &spec)
    }

    #[test]
    fn mix_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[Driver::pick(&mut rng).index()] += 1;
        }
        assert!((4000..5000).contains(&counts[0]), "NewOrder {}", counts[0]);
        assert!((3800..4800).contains(&counts[1]), "Payment {}", counts[1]);
        for &c in &counts[2..] {
            assert!((250..550).contains(&c), "minor type {c}");
        }
    }

    #[test]
    fn all_five_transactions_commit() {
        for mode in [EngineMode::PageOnly, EngineMode::IlmOff, EngineMode::IlmOn] {
            let driver = build(mode);
            let mut rng = StdRng::seed_from_u64(5);
            for t in TxnType::ALL {
                let mut committed = false;
                for _ in 0..10 {
                    if driver.run_one(t, &mut rng) == Outcome::Committed {
                        committed = true;
                        break;
                    }
                }
                assert!(committed, "{t:?} never committed under {mode:?}");
            }
        }
    }

    #[test]
    fn mixed_run_mostly_commits() {
        let driver = build(EngineMode::IlmOn);
        let stats = driver.run(500, 1, 99);
        let total = stats.total_committed()
            + stats.user_aborts.iter().sum::<u64>()
            + stats.engine_aborts.iter().sum::<u64>();
        assert_eq!(total, 500);
        assert!(
            stats.total_committed() > 450,
            "committed {} of 500",
            stats.total_committed()
        );
        assert!(
            stats.engine_aborts.iter().sum::<u64>() < 10,
            "engine aborts {:?}",
            stats.engine_aborts
        );
        // The run captures engine latency: every committed transaction
        // went through the commit histogram.
        let commit = stats.latency_for(OpClass::Commit).expect("commit summary");
        assert!(commit.count >= stats.total_committed());
        assert!(commit.p50 <= commit.p95 && commit.p95 <= commit.p99);
        assert!(stats.latency_line().contains("commit p50="));
    }

    #[test]
    fn multithreaded_run_is_consistent() {
        let driver = build(EngineMode::IlmOn);
        let stats = driver.run(800, 4, 123);
        assert!(stats.total_committed() > 700);
        // District counters stayed coherent: every committed NewOrder
        // allocated a unique o_id, so next_o_id - initial == inserted
        // orders in that district. Check aggregate: orders exist.
        let engine = driver.engine();
        let t = driver.tables();
        let txn = engine.begin();
        let mut total_next = 0u64;
        for d_id in 1..=10u32 {
            let row = engine
                .get(&txn, &t.district, &crate::schema::District::key(1, d_id))
                .unwrap()
                .unwrap();
            total_next += crate::schema::District::decode(&row).unwrap().next_o_id as u64;
        }
        let initial = 10 * (30 + 1) as u64;
        let new_orders = total_next - initial;
        assert_eq!(new_orders, stats.committed[0], "no lost order ids");
        engine.commit(txn).unwrap();
    }
}
