//! The five TPC-C transaction profiles.
//!
//! Access patterns follow the spec: NewOrder and Payment dominate and
//! are update/insert heavy with NURand skew; OrderStatus is read-only;
//! Delivery drains the `new_order` queue; StockLevel scans recent order
//! lines. These produce exactly the table temperature profile of the
//! paper's Table 1.

use rand::rngs::StdRng;
use rand::Rng;

use btrim_core::{BtrimError, Engine, Transaction};

use crate::random::{astring, nurand_customer, nurand_item, nurand_last_name};
use crate::schema::*;

/// Scale parameters the transactions need at run time.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Warehouses.
    pub warehouses: u32,
    /// Items in the catalogue.
    pub items: u32,
    /// Customers per district.
    pub customers_per_district: u32,
}

/// Outcome of one transaction attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Committed.
    Committed,
    /// Rolled back by the 1% NewOrder invalid-item rule.
    UserAbort,
    /// Aborted on an engine error (lock timeout etc.); retryable.
    EngineAbort,
}

fn run_in_txn(
    engine: &Engine,
    body: impl FnOnce(&mut Transaction) -> btrim_core::Result<bool>,
) -> Outcome {
    let mut txn = engine.begin();
    match body(&mut txn) {
        Ok(true) => match engine.commit(txn) {
            Ok(_) => Outcome::Committed,
            Err(_) => Outcome::EngineAbort,
        },
        Ok(false) => {
            engine.abort(txn);
            Outcome::UserAbort
        }
        Err(_) => {
            engine.abort(txn);
            Outcome::EngineAbort
        }
    }
}

/// Sequence source for history rows (no natural primary key).
pub type HistorySeq = std::sync::atomic::AtomicU64;

/// The NewOrder transaction (§2.4 of the spec; ~45% of the mix).
pub fn new_order(
    engine: &Engine,
    tables: &Tables,
    scale: &Scale,
    rng: &mut StdRng,
    now: u64,
) -> Outcome {
    let w_id = rng.gen_range(1..=scale.warehouses);
    let d_id = rng.gen_range(1..=crate::loader::DISTRICTS_PER_WAREHOUSE);
    let c_id = nurand_customer(rng, scale.customers_per_district);
    let ol_cnt = rng.gen_range(5..=15u32);
    let rollback = rng.gen_bool(0.01);
    let items: Vec<(u32, u32)> = (0..ol_cnt)
        .map(|_| (nurand_item(rng, scale.items), rng.gen_range(1..=10u32)))
        .collect();
    let dist_info = astring(rng, 24, 24);

    run_in_txn(engine, |txn| {
        // Warehouse tax (read).
        let w_row = engine
            .get(txn, &tables.warehouse, &Warehouse::key(w_id))?
            .ok_or_else(|| BtrimError::Invalid("warehouse missing".into()))?;
        let warehouse = Warehouse::decode(&w_row)?;

        // District: allocate the order id (RMW on the hot counter).
        let mut o_id = 0;
        engine
            .update_rmw(txn, &tables.district, &District::key(w_id, d_id), |cur| {
                let mut d = District::decode(cur).expect("district decodes");
                o_id = d.next_o_id;
                d.next_o_id += 1;
                d.encode()
            })?
            .ok_or_else(|| BtrimError::Invalid("district missing".into()))?;

        // Customer discount (read).
        let c_row = engine
            .get(txn, &tables.customer, &Customer::key(w_id, d_id, c_id))?
            .ok_or_else(|| BtrimError::Invalid("customer missing".into()))?;
        let customer = Customer::decode(&c_row)?;

        let mut all_local = 1;
        let mut total = 0.0f64;
        for (ol_number, &(i_id, quantity)) in items.iter().enumerate() {
            let ol_number = ol_number as u32 + 1;
            if rollback && ol_number == ol_cnt {
                // Invalid item: the spec's 1% user rollback.
                return Ok(false);
            }
            let i_row = engine
                .get(txn, &tables.item, &Item::key(i_id))?
                .ok_or_else(|| BtrimError::Invalid("item missing".into()))?;
            let item = Item::decode(&i_row)?;

            // 1% remote warehouse on multi-warehouse runs.
            let supply_w = if scale.warehouses > 1 && rng_remote(i_id) {
                all_local = 0;
                (w_id % scale.warehouses) + 1
            } else {
                w_id
            };
            engine
                .update_rmw(txn, &tables.stock, &Stock::key(supply_w, i_id), |cur| {
                    let mut s = Stock::decode(cur).expect("stock decodes");
                    s.quantity = if s.quantity > quantity + 10 {
                        s.quantity - quantity
                    } else {
                        s.quantity + 91 - quantity
                    };
                    s.ytd += quantity;
                    s.order_cnt += 1;
                    if supply_w != w_id {
                        s.remote_cnt += 1;
                    }
                    s.encode()
                })?
                .ok_or_else(|| BtrimError::Invalid("stock missing".into()))?;

            let amount = quantity as f64 * item.price;
            total += amount;
            let line = OrderLine {
                w_id,
                d_id,
                o_id,
                ol_number,
                i_id,
                supply_w_id: supply_w,
                delivery_d: 0,
                quantity,
                amount,
                dist_info: dist_info.clone(),
            };
            engine.insert(txn, &tables.order_line, &line.encode())?;
        }
        let _ = total * (1.0 + warehouse.tax) * (1.0 - customer.discount);

        let order = Order {
            w_id,
            d_id,
            o_id,
            c_id,
            entry_d: now,
            carrier_id: 0,
            ol_cnt,
            all_local,
        };
        engine.insert(txn, &tables.orders, &order.encode())?;
        engine.insert(
            txn,
            &tables.new_order,
            &NewOrder { w_id, d_id, o_id }.encode(),
        )?;
        Ok(true)
    })
}

/// Deterministic pseudo-choice for remote warehouses (1-in-100 by item
/// id, avoiding a second RNG borrow in the hot loop).
fn rng_remote(i_id: u32) -> bool {
    i_id.is_multiple_of(100)
}

/// The Payment transaction (~43%).
pub fn payment(
    engine: &Engine,
    tables: &Tables,
    scale: &Scale,
    rng: &mut StdRng,
    now: u64,
    history_seq: &HistorySeq,
) -> Outcome {
    let w_id = rng.gen_range(1..=scale.warehouses);
    let d_id = rng.gen_range(1..=crate::loader::DISTRICTS_PER_WAREHOUSE);
    let amount = rng.gen_range(1.0..5000.0f64);
    let by_name = rng.gen_bool(0.4);
    // 15% of payments are by a remote customer (spec §2.5.1.2) when
    // more than one warehouse exists.
    let c_w_id = if scale.warehouses > 1 && rng.gen_bool(0.15) {
        let mut w = rng.gen_range(1..=scale.warehouses);
        if w == w_id {
            w = w % scale.warehouses + 1;
        }
        w
    } else {
        w_id
    };
    let c_id = nurand_customer(rng, scale.customers_per_district);
    let last = nurand_last_name(rng);
    let h_data = astring(rng, 12, 24);
    let seq = history_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    run_in_txn(engine, |txn| {
        engine
            .update_rmw(txn, &tables.warehouse, &Warehouse::key(w_id), |cur| {
                let mut w = Warehouse::decode(cur).expect("warehouse decodes");
                w.ytd += amount;
                w.encode()
            })?
            .ok_or_else(|| BtrimError::Invalid("warehouse missing".into()))?;
        engine
            .update_rmw(txn, &tables.district, &District::key(w_id, d_id), |cur| {
                let mut d = District::decode(cur).expect("district decodes");
                d.ytd += amount;
                d.encode()
            })?
            .ok_or_else(|| BtrimError::Invalid("district missing".into()))?;

        // Customer selection: 60% by id, 40% by last name (pick the
        // middle match, per the spec); the customer may live at a
        // remote warehouse.
        let customer_key = if by_name {
            let hits = engine.get_by_index(
                txn,
                &tables.customer,
                "by_name",
                &Customer::name_key(c_w_id, d_id, &last),
            )?;
            if hits.is_empty() {
                Customer::key(c_w_id, d_id, c_id)
            } else {
                let (_, row) = &hits[hits.len() / 2];
                Customer::key(c_w_id, d_id, Customer::decode(row)?.c_id)
            }
        } else {
            Customer::key(c_w_id, d_id, c_id)
        };
        let updated = engine
            .update_rmw(txn, &tables.customer, &customer_key, |cur| {
                let mut c = Customer::decode(cur).expect("customer decodes");
                c.balance -= amount;
                c.ytd_payment += amount;
                c.payment_cnt += 1;
                if c.credit == "BC" {
                    c.data = format!("{}|{}|{}|{:.2}|{}", c.c_id, c.d_id, c.w_id, amount, c.data);
                    c.data.truncate(200);
                }
                c.encode()
            })?
            .ok_or_else(|| BtrimError::Invalid("customer missing".into()))?;
        let customer = Customer::decode(&updated)?;

        let h = History {
            w_id,
            seq,
            c_w_id: customer.w_id,
            c_d_id: customer.d_id,
            c_id: customer.c_id,
            d_id,
            date: now,
            amount,
            data: h_data.clone(),
        };
        engine.insert(txn, &tables.history, &h.encode())?;
        Ok(true)
    })
}

/// The OrderStatus transaction (~4%, read-only).
pub fn order_status(engine: &Engine, tables: &Tables, scale: &Scale, rng: &mut StdRng) -> Outcome {
    let w_id = rng.gen_range(1..=scale.warehouses);
    let d_id = rng.gen_range(1..=crate::loader::DISTRICTS_PER_WAREHOUSE);
    let by_name = rng.gen_bool(0.6);
    let c_id = nurand_customer(rng, scale.customers_per_district);
    let last = nurand_last_name(rng);

    run_in_txn(engine, |txn| {
        let c_id = if by_name {
            let hits = engine.get_by_index(
                txn,
                &tables.customer,
                "by_name",
                &Customer::name_key(w_id, d_id, &last),
            )?;
            if hits.is_empty() {
                c_id
            } else {
                Customer::decode(&hits[hits.len() / 2].1)?.c_id
            }
        } else {
            c_id
        };
        let _balance = engine
            .get(txn, &tables.customer, &Customer::key(w_id, d_id, c_id))?
            .map(|r| Customer::decode(&r).map(|c| c.balance))
            .transpose()?;

        // Latest order of the customer via the secondary index.
        let lo = Order::customer_prefix(w_id, d_id, c_id);
        let hi = btrim_index::keys::prefix_successor(&lo);
        let mut latest: Option<Order> = None;
        engine.scan_secondary_range(
            txn,
            &tables.orders,
            "by_customer",
            &lo,
            hi.as_deref(),
            |_, _, row| {
                latest = Order::decode(row).ok();
                true // keep going: the last hit has the highest o_id
            },
        )?;
        if let Some(order) = latest {
            let lo = OrderLine::order_prefix(order.w_id, order.d_id, order.o_id);
            let hi = btrim_index::keys::prefix_successor(&lo);
            engine.scan_range(txn, &tables.order_line, &lo, hi.as_deref(), |_, _, row| {
                let _ = OrderLine::decode(row);
                true
            })?;
        }
        Ok(true)
    })
}

/// The Delivery transaction (~4%).
pub fn delivery(
    engine: &Engine,
    tables: &Tables,
    scale: &Scale,
    rng: &mut StdRng,
    now: u64,
) -> Outcome {
    let w_id = rng.gen_range(1..=scale.warehouses);
    let carrier = rng.gen_range(1..=10u32);

    run_in_txn(engine, |txn| {
        for d_id in 1..=crate::loader::DISTRICTS_PER_WAREHOUSE {
            // Oldest undelivered order in this district.
            let lo = NewOrder::key(w_id, d_id, 0);
            let hi = NewOrder::key(w_id, d_id, u32::MAX);
            let mut oldest: Option<NewOrder> = None;
            engine.scan_range(txn, &tables.new_order, &lo, Some(&hi), |_, _, row| {
                oldest = NewOrder::decode(row).ok();
                false // first = oldest
            })?;
            let Some(no) = oldest else { continue };
            if !engine.delete(txn, &tables.new_order, &no.encode())? {
                continue; // raced with another delivery
            }
            // Stamp the carrier on the order; pull c_id.
            let mut c_id = 0;
            engine
                .update_rmw(
                    txn,
                    &tables.orders,
                    &Order::key(w_id, d_id, no.o_id),
                    |cur| {
                        let mut o = Order::decode(cur).expect("order decodes");
                        o.carrier_id = carrier;
                        c_id = o.c_id;
                        o.encode()
                    },
                )?
                .ok_or_else(|| BtrimError::Invalid("order missing".into()))?;

            // Deliver every line; sum the amounts.
            let lo = OrderLine::order_prefix(w_id, d_id, no.o_id);
            let hi = btrim_index::keys::prefix_successor(&lo).expect("prefix bounded");
            let mut lines: Vec<OrderLine> = Vec::new();
            engine.scan_range(txn, &tables.order_line, &lo, Some(&hi), |_, _, row| {
                if let Ok(l) = OrderLine::decode(row) {
                    lines.push(l);
                }
                true
            })?;
            let mut total = 0.0;
            for mut line in lines {
                total += line.amount;
                line.delivery_d = now;
                let key = OrderLine::key(line.w_id, line.d_id, line.o_id, line.ol_number);
                engine.update(txn, &tables.order_line, &key, &line.encode())?;
            }

            engine
                .update_rmw(
                    txn,
                    &tables.customer,
                    &Customer::key(w_id, d_id, c_id),
                    |cur| {
                        let mut c = Customer::decode(cur).expect("customer decodes");
                        c.balance += total;
                        c.delivery_cnt += 1;
                        c.encode()
                    },
                )?
                .ok_or_else(|| BtrimError::Invalid("customer missing".into()))?;
        }
        Ok(true)
    })
}

/// The StockLevel transaction (~4%, read-only).
pub fn stock_level(engine: &Engine, tables: &Tables, scale: &Scale, rng: &mut StdRng) -> Outcome {
    let w_id = rng.gen_range(1..=scale.warehouses);
    let d_id = rng.gen_range(1..=crate::loader::DISTRICTS_PER_WAREHOUSE);
    let threshold = rng.gen_range(10..=20u32);

    run_in_txn(engine, |txn| {
        let d_row = engine
            .get(txn, &tables.district, &District::key(w_id, d_id))?
            .ok_or_else(|| BtrimError::Invalid("district missing".into()))?;
        let next_o_id = District::decode(&d_row)?.next_o_id;

        // Lines of the last 20 orders.
        let first = next_o_id.saturating_sub(20);
        let lo = OrderLine::key(w_id, d_id, first, 0);
        let hi = OrderLine::key(w_id, d_id, next_o_id, 0);
        let mut item_ids: Vec<u32> = Vec::new();
        engine.scan_range(txn, &tables.order_line, &lo, Some(&hi), |_, _, row| {
            if let Ok(l) = OrderLine::decode(row) {
                item_ids.push(l.i_id);
            }
            true
        })?;
        item_ids.sort_unstable();
        item_ids.dedup();

        let mut low = 0;
        for i_id in item_ids {
            if let Some(s_row) = engine.get(txn, &tables.stock, &Stock::key(w_id, i_id))? {
                if Stock::decode(&s_row)?.quantity < threshold {
                    low += 1;
                }
            }
        }
        let _ = (low, scale);
        Ok(true)
    })
}
