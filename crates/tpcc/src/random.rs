//! TPC-C random-value generators: NURand skew, strings, last names.

use rand::rngs::StdRng;
use rand::Rng;

/// The C constant used by NURand (fixed per run; the spec's C-Load /
/// C-Run distinction does not affect the access-skew shape).
pub const C_LAST: u32 = 123;
/// C constant for customer-id NURand.
pub const C_CID: u32 = 259;
/// C constant for item-id NURand.
pub const C_ITEM: u32 = 7911;

/// Non-uniform random: `NURand(A, x, y)` per TPC-C §2.1.6. Produces the
/// skewed access pattern the paper's hot/cold analysis relies on.
pub fn nurand(rng: &mut StdRng, a: u32, c: u32, x: u32, y: u32) -> u32 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Skewed customer id in `1..=max_c`.
pub fn nurand_customer(rng: &mut StdRng, max_c: u32) -> u32 {
    nurand(rng, 1023, C_CID, 1, max_c)
}

/// Skewed item id in `1..=max_i`.
pub fn nurand_item(rng: &mut StdRng, max_i: u32) -> u32 {
    nurand(rng, 8191, C_ITEM, 1, max_i)
}

/// The spec's last-name syllables.
const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Last name for a number in 0..=999 (TPC-C §4.3.2.3).
pub fn last_name(num: u32) -> String {
    let mut s = String::new();
    s.push_str(SYLLABLES[(num / 100 % 10) as usize]);
    s.push_str(SYLLABLES[(num / 10 % 10) as usize]);
    s.push_str(SYLLABLES[(num % 10) as usize]);
    s
}

/// Skewed last-name number for transactions: `NURand(255, 0, 999)`.
pub fn nurand_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, C_LAST, 0, 999))
}

/// Random alphanumeric string with length in `lo..=hi`.
pub fn astring(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.gen_range(lo..=hi);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

/// Random numeric string with length in `lo..=hi`.
pub fn nstring(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..=hi);
    (0..len)
        .map(|_| (b'0' + rng.gen_range(0..10u8)) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range_and_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 3001];
        for _ in 0..30_000 {
            let v = nurand_customer(&mut rng, 3000);
            assert!((1..=3000).contains(&v));
            counts[v as usize] += 1;
        }
        // Skew check: the most popular 10% of ids draw well over 10% of
        // accesses.
        let mut sorted: Vec<u32> = counts[1..].to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted[..300].iter().sum();
        assert!(
            top10 as f64 > 0.3 * 30_000.0,
            "top decile draws {top10} of 30000"
        );
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
        // Longest possible name fits the fixed field.
        assert!(last_name(111).len() <= crate::schema::LAST_NAME_LEN); // OUGHTx3 = 15
        assert_eq!(last_name(111), "OUGHTOUGHTOUGHT");
    }

    #[test]
    fn strings_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = astring(&mut rng, 8, 16);
            assert!((8..=16).contains(&s.len()));
            let n = nstring(&mut rng, 4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(nurand_item(&mut a, 10_000), nurand_item(&mut b, 10_000));
        }
    }
}
