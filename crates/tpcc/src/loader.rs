//! Initial database population.
//!
//! Follows the TPC-C cardinalities, scaled for laptop-class runs:
//! per warehouse — 10 districts, `customers_per_district` customers,
//! one stock row per item, `orders_per_district` historical orders with
//! 5–15 lines each, the newest third of them still in `new_order`.
//! Absolute string paddings are trimmed relative to the spec so that
//! experiments exercise memory pressure at MB rather than GB scale;
//! relative table sizes (order_line ≫ stock ≫ customer ≫ district)
//! are preserved, which is what the paper's per-table analysis needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use btrim_core::{Engine, Result};

use crate::random::{astring, last_name, nstring};
use crate::schema::*;

/// Scale parameters.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Number of warehouses (the TPC-C scale factor).
    pub warehouses: u32,
    /// Items in the catalogue (spec: 100_000).
    pub items: u32,
    /// Customers per district (spec: 3_000).
    pub customers_per_district: u32,
    /// Historical orders per district (spec: 3_000).
    pub orders_per_district: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            warehouses: 4,
            items: 2_000,
            customers_per_district: 300,
            orders_per_district: 300,
            seed: 0xBEEF,
        }
    }
}

/// Districts per warehouse (fixed by the spec).
pub const DISTRICTS_PER_WAREHOUSE: u32 = 10;

/// Populate the engine; returns the table handles.
pub fn load(engine: &Engine, spec: &LoadSpec) -> Result<Tables> {
    let tables = Tables::create(engine, spec.warehouses)?;
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // item
    {
        let mut txn = engine.begin();
        for i_id in 1..=spec.items {
            let item = Item {
                i_id,
                im_id: rng.gen_range(1..=10_000),
                name: astring(&mut rng, 14, 24),
                price: rng.gen_range(1.0..100.0),
                data: astring(&mut rng, 26, 50),
            };
            engine.insert(&mut txn, &tables.item, &item.encode())?;
            if i_id % 1000 == 0 {
                let done = std::mem::replace(&mut txn, engine.begin());
                engine.commit(done)?;
            }
        }
        engine.commit(txn)?;
    }

    for w_id in 1..=spec.warehouses {
        let mut txn = engine.begin();
        let wh = Warehouse {
            w_id,
            name: format!("wh-{w_id}"),
            street: astring(&mut rng, 10, 20),
            city: astring(&mut rng, 10, 20),
            state: astring(&mut rng, 2, 2),
            zip: nstring(&mut rng, 9, 9),
            tax: rng.gen_range(0.0..0.2),
            ytd: 300_000.0,
        };
        engine.insert(&mut txn, &tables.warehouse, &wh.encode())?;

        // stock
        for i_id in 1..=spec.items {
            let stock = Stock {
                w_id,
                i_id,
                quantity: rng.gen_range(10..=100),
                ytd: 0,
                order_cnt: 0,
                remote_cnt: 0,
                dist_info: astring(&mut rng, 24, 24),
                data: astring(&mut rng, 26, 50),
            };
            engine.insert(&mut txn, &tables.stock, &stock.encode())?;
            if i_id % 1000 == 0 {
                let done = std::mem::replace(&mut txn, engine.begin());
                engine.commit(done)?;
            }
        }

        for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
            let district = District {
                w_id,
                d_id,
                name: format!("d-{d_id}"),
                street: astring(&mut rng, 10, 20),
                city: astring(&mut rng, 10, 20),
                state: astring(&mut rng, 2, 2),
                zip: nstring(&mut rng, 9, 9),
                tax: rng.gen_range(0.0..0.2),
                ytd: 30_000.0,
                next_o_id: spec.orders_per_district + 1,
            };
            engine.insert(&mut txn, &tables.district, &district.encode())?;

            // customers
            for c_id in 1..=spec.customers_per_district {
                let last = if c_id <= 1000 {
                    last_name(c_id - 1)
                } else {
                    last_name(rng.gen_range(0..1000))
                };
                let customer = Customer {
                    w_id,
                    d_id,
                    c_id,
                    last,
                    first: astring(&mut rng, 8, 16),
                    middle: "OE".into(),
                    street: astring(&mut rng, 10, 20),
                    city: astring(&mut rng, 10, 20),
                    state: astring(&mut rng, 2, 2),
                    zip: nstring(&mut rng, 9, 9),
                    phone: nstring(&mut rng, 16, 16),
                    since: 1,
                    credit: if rng.gen_bool(0.1) { "BC" } else { "GC" }.into(),
                    credit_lim: 50_000.0,
                    discount: rng.gen_range(0.0..0.5),
                    balance: -10.0,
                    ytd_payment: 10.0,
                    payment_cnt: 1,
                    delivery_cnt: 0,
                    data: astring(&mut rng, 100, 200),
                };
                engine.insert(&mut txn, &tables.customer, &customer.encode())?;
                if c_id % 500 == 0 {
                    let done = std::mem::replace(&mut txn, engine.begin());
                    engine.commit(done)?;
                }
            }

            // historical orders + lines + new_orders
            let new_order_floor = spec.orders_per_district * 2 / 3;
            for o_id in 1..=spec.orders_per_district {
                let c_id = rng.gen_range(1..=spec.customers_per_district);
                let ol_cnt = rng.gen_range(5..=15);
                let delivered = o_id <= new_order_floor;
                let order = Order {
                    w_id,
                    d_id,
                    o_id,
                    c_id,
                    entry_d: 1,
                    carrier_id: if delivered { rng.gen_range(1..=10) } else { 0 },
                    ol_cnt,
                    all_local: 1,
                };
                engine.insert(&mut txn, &tables.orders, &order.encode())?;
                for ol in 1..=ol_cnt {
                    let line = OrderLine {
                        w_id,
                        d_id,
                        o_id,
                        ol_number: ol,
                        i_id: rng.gen_range(1..=spec.items),
                        supply_w_id: w_id,
                        delivery_d: if delivered { 1 } else { 0 },
                        quantity: 5,
                        amount: if delivered {
                            0.0
                        } else {
                            rng.gen_range(0.01..9_999.99)
                        },
                        dist_info: astring(&mut rng, 24, 24),
                    };
                    engine.insert(&mut txn, &tables.order_line, &line.encode())?;
                }
                if !delivered {
                    let no = NewOrder { w_id, d_id, o_id };
                    engine.insert(&mut txn, &tables.new_order, &no.encode())?;
                }
                if o_id % 200 == 0 {
                    let done = std::mem::replace(&mut txn, engine.begin());
                    engine.commit(done)?;
                }
            }

            // history: one row per customer.
            for c_id in 1..=spec.customers_per_district {
                let seq = ((d_id as u64) << 32) | c_id as u64;
                let h = History {
                    w_id,
                    seq,
                    c_w_id: w_id,
                    c_d_id: d_id,
                    c_id,
                    d_id,
                    date: 1,
                    amount: 10.0,
                    data: astring(&mut rng, 12, 24),
                };
                engine.insert(&mut txn, &tables.history, &h.encode())?;
            }
        }
        engine.commit(txn)?;
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_core::{EngineConfig, EngineMode};

    #[test]
    fn load_tiny_scale_and_verify_cardinalities() {
        let engine = Engine::new(EngineConfig {
            mode: EngineMode::IlmOff,
            imrs_budget: 64 * 1024 * 1024,
            imrs_chunk_size: 4 * 1024 * 1024,
            ..Default::default()
        });
        let spec = LoadSpec {
            warehouses: 2,
            items: 100,
            customers_per_district: 20,
            orders_per_district: 15,
            seed: 7,
        };
        let t = load(&engine, &spec).unwrap();

        let txn = engine.begin();
        // warehouse rows exist.
        for w in 1..=2u32 {
            let row = engine
                .get(&txn, &t.warehouse, &Warehouse::key(w))
                .unwrap()
                .expect("warehouse exists");
            let wh = Warehouse::decode(&row).unwrap();
            assert_eq!(wh.w_id, w);
        }
        // district next_o_id primed.
        let d = District::decode(
            &engine
                .get(&txn, &t.district, &District::key(1, 1))
                .unwrap()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(d.next_o_id, 16);
        // customer by name secondary works.
        let hits = engine
            .get_by_index(
                &txn,
                &t.customer,
                "by_name",
                &Customer::name_key(1, 1, &crate::random::last_name(0)),
            )
            .unwrap();
        assert!(!hits.is_empty());
        // stock per item per warehouse.
        let s = engine
            .get(&txn, &t.stock, &Stock::key(2, 100))
            .unwrap()
            .expect("stock exists");
        assert_eq!(Stock::decode(&s).unwrap().i_id, 100);
        // undelivered orders are in new_order.
        let no_floor = 15 * 2 / 3;
        let mut undelivered = 0;
        engine
            .scan_range(
                &txn,
                &t.new_order,
                &NewOrder::key(1, 1, 0),
                Some(&NewOrder::key(1, 2, 0)),
                |_, _, _| {
                    undelivered += 1;
                    true
                },
            )
            .unwrap();
        assert_eq!(undelivered, 15 - no_floor);
        engine.commit(txn).unwrap();
    }
}
