//! TPC-C workload for the BTrim engine.
//!
//! A from-scratch implementation of the TPC-C schema, loader, and all
//! five transaction profiles, matching the access patterns the paper's
//! evaluation depends on (§VIII, Table 1): the small hot `warehouse` /
//! `district` tables, the large low-reuse `order_line` / `orders` /
//! `history` tables, the queue-like `new_order` table, and the NURand
//! skew over customers and items.
//!
//! * [`schema`] — row formats with key-prefixed binary layouts.
//! * [`random`] — NURand and the TPC-C string/last-name generators.
//! * [`loader`] — initial database population at a given warehouse
//!   scale.
//! * [`txns`] — NewOrder, Payment, OrderStatus, Delivery, StockLevel.
//! * [`driver`] — mixed-workload driver (standard 45/43/4/4/4 mix),
//!   single- or multi-threaded, deterministic under a fixed seed.
//! * [`profile`] — per-table workload profiles (regenerates Table 1).
//! * [`analytics`] — CH-benCHmark-style filtered aggregates evaluated
//!   by the engine's snapshot-isolated analytic scan (HTAP read path).

#![forbid(unsafe_code)]

pub mod analytics;
pub mod driver;
pub mod loader;
pub mod profile;
pub mod random;
pub mod schema;
pub mod txns;

pub use driver::{Driver, DriverStats, TpccConfig, TxnType};
pub use loader::load;
pub use schema::Tables;
