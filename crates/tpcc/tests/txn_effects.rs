//! Per-transaction effect tests: each TPC-C profile leaves exactly the
//! state changes the spec prescribes.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use btrim_core::{Engine, EngineConfig, EngineMode};
use btrim_tpcc::driver::{Driver, TxnType};
use btrim_tpcc::loader::{load, LoadSpec};
use btrim_tpcc::schema::*;
use btrim_tpcc::txns::Outcome;

fn setup() -> Driver {
    let engine = Arc::new(Engine::new(EngineConfig {
        mode: EngineMode::IlmOff,
        imrs_budget: 64 * 1024 * 1024,
        imrs_chunk_size: 4 * 1024 * 1024,
        buffer_frames: 2048,
        ..Default::default()
    }));
    let spec = LoadSpec {
        warehouses: 1,
        items: 100,
        customers_per_district: 20,
        orders_per_district: 12,
        seed: 5,
    };
    let tables = Arc::new(load(&engine, &spec).unwrap());
    Driver::new(engine, tables, &spec)
}

fn district(driver: &Driver, w: u32, d: u32) -> District {
    let e = driver.engine();
    let txn = e.begin();
    let row = e
        .get(&txn, &driver.tables().district, &District::key(w, d))
        .unwrap()
        .unwrap();
    e.commit(txn).unwrap();
    District::decode(&row).unwrap()
}

#[test]
fn new_order_allocates_ids_and_creates_lines() {
    let driver = setup();
    let before: Vec<u32> = (1..=10)
        .map(|d| district(&driver, 1, d).next_o_id)
        .collect();
    let mut rng = StdRng::seed_from_u64(100);
    let mut committed = 0;
    for _ in 0..20 {
        if driver.run_one(TxnType::NewOrder, &mut rng) == Outcome::Committed {
            committed += 1;
        }
    }
    assert!(committed > 0);
    let after: Vec<u32> = (1..=10)
        .map(|d| district(&driver, 1, d).next_o_id)
        .collect();
    let allocated: u32 = after.iter().zip(&before).map(|(a, b)| a - b).sum();
    assert_eq!(allocated, committed, "one order id per committed NewOrder");

    // Each new order has its lines and a new_order entry.
    let e = driver.engine();
    let t = driver.tables();
    let txn = e.begin();
    for d_id in 1..=10u32 {
        for o_id in before[d_id as usize - 1]..after[d_id as usize - 1] {
            let o_row = e
                .get(&txn, &t.orders, &Order::key(1, d_id, o_id))
                .unwrap()
                .expect("order exists");
            let order = Order::decode(&o_row).unwrap();
            assert_eq!(order.carrier_id, 0, "new order undelivered");
            let mut lines = 0;
            e.scan_range(
                &txn,
                &t.order_line,
                &OrderLine::key(1, d_id, o_id, 0),
                Some(&OrderLine::key(1, d_id, o_id, u32::MAX)),
                |_, _, _| {
                    lines += 1;
                    true
                },
            )
            .unwrap();
            assert_eq!(lines, order.ol_cnt);
            assert!(
                e.get(&txn, &t.new_order, &NewOrder::key(1, d_id, o_id))
                    .unwrap()
                    .is_some(),
                "new_order queue entry"
            );
        }
    }
    e.commit(txn).unwrap();
}

#[test]
fn payment_moves_money_and_writes_history() {
    let driver = setup();
    let e = driver.engine();
    let t = driver.tables();
    let w_before = {
        let txn = e.begin();
        let w = Warehouse::decode(
            &e.get(&txn, &t.warehouse, &Warehouse::key(1))
                .unwrap()
                .unwrap(),
        )
        .unwrap();
        e.commit(txn).unwrap();
        w
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut committed = 0;
    for _ in 0..10 {
        if driver.run_one(TxnType::Payment, &mut rng) == Outcome::Committed {
            committed += 1;
        }
    }
    assert!(committed > 0);
    let txn = e.begin();
    let w_after = Warehouse::decode(
        &e.get(&txn, &t.warehouse, &Warehouse::key(1))
            .unwrap()
            .unwrap(),
    )
    .unwrap();
    assert!(w_after.ytd > w_before.ytd, "warehouse YTD grew");
    // District YTDs grew by exactly the same total.
    let mut d_delta = 0.0;
    for d_id in 1..=10u32 {
        let d = District::decode(
            &e.get(&txn, &t.district, &District::key(1, d_id))
                .unwrap()
                .unwrap(),
        )
        .unwrap();
        d_delta += d.ytd - 30_000.0;
    }
    assert!((d_delta - (w_after.ytd - w_before.ytd)).abs() < 0.01);
    // History rows exist for the payments (driver seq space).
    let mut history_rows = 0;
    e.scan_range(
        &txn,
        &t.history,
        &History::key(1, 1 << 48),
        None,
        |_, _, _| {
            history_rows += 1;
            true
        },
    )
    .unwrap();
    assert_eq!(history_rows, committed);
    e.commit(txn).unwrap();
}

#[test]
fn delivery_drains_queue_and_stamps_carrier() {
    let driver = setup();
    let e = driver.engine();
    let t = driver.tables();
    let count_queue = || {
        let txn = e.begin();
        let mut n = 0;
        e.scan_range(&txn, &t.new_order, &[], None, |_, _, _| {
            n += 1;
            true
        })
        .unwrap();
        e.commit(txn).unwrap();
        n
    };
    let before = count_queue();
    assert!(before > 0, "loader left undelivered orders");
    let mut rng = StdRng::seed_from_u64(11);
    assert_eq!(
        driver.run_one(TxnType::Delivery, &mut rng),
        Outcome::Committed
    );
    let after = count_queue();
    assert_eq!(before - after, 10, "one order delivered per district");

    // Delivered orders have a carrier and delivered lines.
    let txn = e.begin();
    let mut delivered_checked = 0;
    e.scan_range(&txn, &t.orders, &[], None, |_, _, row| {
        let o = Order::decode(row).unwrap();
        if o.carrier_id != 0
            && e.get(&txn, &t.new_order, &NewOrder::key(o.w_id, o.d_id, o.o_id))
                .unwrap()
                .is_none()
        {
            delivered_checked += 1;
        }
        true
    })
    .unwrap();
    assert!(delivered_checked >= 10);
    e.commit(txn).unwrap();
}

#[test]
fn order_status_and_stock_level_are_read_only() {
    let driver = setup();
    let e = driver.engine();
    let snap_before = e.snapshot();
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..5 {
        assert_eq!(
            driver.run_one(TxnType::OrderStatus, &mut rng),
            Outcome::Committed
        );
        assert_eq!(
            driver.run_one(TxnType::StockLevel, &mut rng),
            Outcome::Committed
        );
    }
    let snap_after = e.snapshot();
    // No new rows and no packing; only read counters moved.
    assert_eq!(snap_after.imrs_rows, snap_before.imrs_rows);
    assert_eq!(snap_after.rows_packed, snap_before.rows_packed);
    assert!(snap_after.imrs_ops > snap_before.imrs_ops);
}
