//! Per-partition heap files.
//!
//! A heap file is a chain of slotted heap pages owned by one partition.
//! Rows are addressed by `(PageId, SlotId)`; the engine's RID-Map keeps
//! the mapping from logical `RowId` to this physical address, so the
//! heap itself is oblivious to row identity.
//!
//! A tiny free-space map remembers how much room each page had after the
//! last touch, so inserts do not scan the chain.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use btrim_common::{BtrimError, PageId, PartitionId, Result, SlotId};

use crate::buffer::BufferCache;
use crate::page::PageType;

/// A heap file: unordered row storage for one partition.
pub struct HeapFile {
    partition: PartitionId,
    inner: Mutex<HeapInner>,
    /// Live-row count, maintained on insert/delete/relocation. Lets
    /// scans skip the buffer cache entirely for empty heaps — the
    /// analytic scan path relies on this to stay latch-free once a
    /// partition is fully frozen.
    live_rows: AtomicU64,
}

struct HeapInner {
    /// All pages of this heap, in allocation order.
    pages: Vec<PageId>,
    /// Approximate free bytes per page (maintained opportunistically).
    fsm: BTreeMap<PageId, usize>,
    /// Secondary index `(free_bytes, page)` so insert finds a candidate
    /// page in O(log n) instead of scanning the whole map.
    by_free: BTreeSet<(usize, PageId)>,
}

impl HeapInner {
    fn set_free(&mut self, pid: PageId, free: usize) {
        if let Some(old) = self.fsm.insert(pid, free) {
            self.by_free.remove(&(old, pid));
        }
        self.by_free.insert((free, pid));
    }
}

impl HeapFile {
    /// Create an empty heap for `partition`.
    pub fn new(partition: PartitionId) -> Self {
        HeapFile {
            partition,
            inner: Mutex::new(HeapInner {
                pages: Vec::new(),
                fsm: BTreeMap::new(),
                by_free: BTreeSet::new(),
            }),
            live_rows: AtomicU64::new(0),
        }
    }

    /// Rebuild a heap handle from a known page list (recovery).
    pub fn from_pages(partition: PartitionId, pages: Vec<PageId>, cache: &BufferCache) -> Self {
        let heap = HeapFile::new(partition);
        let _ = heap.adopt_pages(pages, cache);
        heap
    }

    /// The owning partition.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Replace this heap's page list (recovery: re-attach the pages
    /// found on disk for this partition). Rebuilds the free-space map.
    pub fn adopt_pages(&self, pages: Vec<PageId>, cache: &BufferCache) -> Result<()> {
        let mut frees = Vec::with_capacity(pages.len());
        let mut rows = 0u64;
        for &pid in &pages {
            let g = cache.fetch(pid)?;
            let (free, live) = g.with_page_read(|p| (p.total_free(), p.iter_rows().count() as u64));
            frees.push((pid, free));
            rows += live;
        }
        self.live_rows.store(rows, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.pages = pages;
        inner.fsm.clear();
        inner.by_free.clear();
        for (pid, free) in frees {
            inner.set_free(pid, free);
        }
        Ok(())
    }

    /// Number of pages in the heap.
    pub fn num_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Snapshot of the heap's page list (scan planning, recovery dumps).
    pub fn pages(&self) -> Vec<PageId> {
        self.inner.lock().pages.clone()
    }

    /// Live-row count without touching a single page (pure atomic read).
    pub fn live_rows(&self) -> u64 {
        self.live_rows.load(Ordering::Relaxed)
    }

    /// Insert a row payload, returning its physical address.
    pub fn insert(&self, cache: &BufferCache, data: &[u8]) -> Result<(PageId, SlotId)> {
        if data.len() > crate::page::MAX_ROW_SIZE {
            return Err(BtrimError::Invalid(format!(
                "row of {} bytes exceeds page capacity",
                data.len()
            )));
        }
        // Candidate pages with enough space, best-fit-first via the
        // by-free index (O(log n), not a map scan).
        let need = data.len() + crate::page::SLOT_ENTRY_SIZE;
        for _ in 0..4 {
            let candidate = {
                let inner = self.inner.lock();
                inner
                    .by_free
                    .range((need, PageId(0))..)
                    .next()
                    .map(|&(_, pid)| pid)
            };
            let Some(pid) = candidate else { break };
            let guard = cache.fetch(pid)?;
            let (slot, free) = guard.with_page_write(|p| {
                let slot = p.insert(data);
                (slot, p.total_free())
            });
            self.inner.lock().set_free(pid, free);
            if let Some(slot) = slot {
                self.live_rows.fetch_add(1, Ordering::Relaxed);
                return Ok((pid, slot));
            }
        }
        // No page had room: extend the heap.
        let guard = cache.new_page(PageType::Heap, self.partition)?;
        let pid = guard.page_id();
        let (slot, free) = guard.with_page_write(|p| {
            let slot = p.insert(data);
            (slot, p.total_free())
        });
        {
            let mut inner = self.inner.lock();
            // Link the chain: previous tail points at the new page.
            if let Some(&tail) = inner.pages.last() {
                let tail_guard = cache.fetch(tail)?;
                tail_guard.with_page_write(|p| p.set_next_page(pid));
            }
            inner.pages.push(pid);
            inner.set_free(pid, free);
        }
        // A fresh page holds any legal row; a `None` here means the
        // caller handed us a row larger than a page, which no layer
        // above ever produces — but surface it as an error, not a panic.
        // (The empty page stays linked into the chain for future use.)
        let slot = slot.ok_or_else(|| BtrimError::Invalid("row exceeds page capacity".into()))?;
        self.live_rows.fetch_add(1, Ordering::Relaxed);
        Ok((pid, slot))
    }

    /// Read a row payload by physical address.
    pub fn get(&self, cache: &BufferCache, pid: PageId, slot: SlotId) -> Result<Option<Vec<u8>>> {
        let guard = cache.fetch(pid)?;
        Ok(guard.with_page_read(|p| p.get(slot).map(<[u8]>::to_vec)))
    }

    /// Update a row strictly in place. Returns `Ok(false)` when the new
    /// payload no longer fits on its page (the caller relocates with
    /// control over RID-Map publication ordering).
    pub fn try_update_in_place(
        &self,
        cache: &BufferCache,
        pid: PageId,
        slot: SlotId,
        data: &[u8],
    ) -> Result<bool> {
        let guard = cache.fetch(pid)?;
        let (ok, free) = guard.with_page_write(|p| (p.update(slot, data), p.total_free()));
        self.inner.lock().set_free(pid, free);
        Ok(ok)
    }

    /// Update a row strictly in place, WAL-first: probe the fit under
    /// the frame's write latch, invoke `log` (the caller's WAL append)
    /// while the latch pins the outcome, and only then overwrite the
    /// bytes. Returns `Ok(false)` — without logging — when the payload
    /// no longer fits (the caller relocates under its own log records).
    /// A failed `log` leaves the page untouched.
    ///
    /// Latch order: FRAME precedes WAL_LOG in the declared hierarchy,
    /// so appending under the frame latch is legal — and it is what
    /// makes "no page byte changes before its record enters the log's
    /// append order" hold even against concurrent writers racing for
    /// the same page's free space.
    pub fn try_update_in_place_logged(
        &self,
        cache: &BufferCache,
        pid: PageId,
        slot: SlotId,
        data: &[u8],
        log: impl FnOnce() -> Result<()>,
    ) -> Result<bool> {
        let guard = cache.fetch(pid)?;
        let (res, free) = guard.with_page_write(|p| {
            if !p.update_fits(slot, data.len()) {
                return (Ok(false), p.total_free());
            }
            if let Err(e) = log() {
                return (Err(e), p.total_free());
            }
            (Ok(p.update(slot, data)), p.total_free())
        });
        self.inner.lock().set_free(pid, free);
        res
    }

    /// Update a row in place; if it no longer fits, relocate within the
    /// heap and return the new address.
    pub fn update(
        &self,
        cache: &BufferCache,
        pid: PageId,
        slot: SlotId,
        data: &[u8],
    ) -> Result<(PageId, SlotId)> {
        let guard = cache.fetch(pid)?;
        let (ok, free) = guard.with_page_write(|p| (p.update(slot, data), p.total_free()));
        self.inner.lock().set_free(pid, free);
        if ok {
            return Ok((pid, slot));
        }
        // Did not fit: delete here, insert elsewhere.
        let (deleted, free) = guard.with_page_write(|p| (p.delete(slot), p.total_free()));
        self.inner.lock().set_free(pid, free);
        drop(guard);
        if deleted.is_none() {
            return Err(BtrimError::Invalid(format!(
                "update of dead slot {slot} on {pid}"
            )));
        }
        // The re-insert below re-counts the row; balance the page-level
        // delete that just happened.
        self.live_rows.fetch_sub(1, Ordering::Relaxed);
        self.insert(cache, data)
    }

    /// Delete a row. Returns the freed payload length.
    pub fn delete(&self, cache: &BufferCache, pid: PageId, slot: SlotId) -> Result<usize> {
        let guard = cache.fetch(pid)?;
        let (len, free) = guard.with_page_write(|p| (p.delete(slot), p.total_free()));
        self.inner.lock().set_free(pid, free);
        if len.is_some() {
            self.live_rows.fetch_sub(1, Ordering::Relaxed);
        }
        len.ok_or(BtrimError::Invalid(format!(
            "delete of dead slot {slot} on {pid}"
        )))
    }

    /// Full scan: invoke `f` for every live row. `f` returning `false`
    /// stops the scan early.
    pub fn scan(
        &self,
        cache: &BufferCache,
        mut f: impl FnMut(PageId, SlotId, &[u8]) -> bool,
    ) -> Result<()> {
        if self.live_rows() == 0 {
            return Ok(());
        }
        let pages = self.pages();
        for pid in pages {
            let guard = cache.fetch(pid)?;
            let keep_going = guard.with_page_read(|p| {
                for (slot, data) in p.iter_rows() {
                    if !f(pid, slot, data) {
                        return false;
                    }
                }
                true
            });
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Total live rows (scans the heap; for stats and tests).
    pub fn count_rows(&self, cache: &BufferCache) -> Result<usize> {
        let mut n = 0;
        self.scan(cache, |_, _, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::Arc;

    fn setup() -> (Arc<BufferCache>, HeapFile) {
        let cache = Arc::new(BufferCache::new(Arc::new(MemDisk::new()), 64));
        (cache, HeapFile::new(PartitionId(7)))
    }

    #[test]
    fn insert_and_get() {
        let (cache, heap) = setup();
        let (pid, slot) = heap.insert(&cache, b"first row").unwrap();
        assert_eq!(
            heap.get(&cache, pid, slot).unwrap().unwrap(),
            b"first row".to_vec()
        );
    }

    #[test]
    fn inserts_spill_to_new_pages_and_chain_links() {
        let (cache, heap) = setup();
        let row = vec![1u8; 1000];
        for _ in 0..30 {
            heap.insert(&cache, &row).unwrap();
        }
        assert!(heap.num_pages() >= 4);
        assert_eq!(heap.count_rows(&cache).unwrap(), 30);
        // Chain is linked in order.
        let pages = heap.pages();
        for w in pages.windows(2) {
            let g = cache.fetch(w[0]).unwrap();
            let next = g.with_page_read(|p| p.next_page());
            assert_eq!(next, w[1]);
        }
    }

    #[test]
    fn update_in_place_and_relocating() {
        let (cache, heap) = setup();
        // Fill page 0 almost completely.
        let (pid0, slot0) = heap.insert(&cache, &[2u8; 100]).unwrap();
        while heap.num_pages() == 1 {
            heap.insert(&cache, &vec![3u8; 500]).unwrap();
        }
        // Small in-place update.
        let (pid, slot) = heap.update(&cache, pid0, slot0, b"tiny").unwrap();
        assert_eq!((pid, slot), (pid0, slot0));
        // Huge update must relocate.
        let big = vec![9u8; 7000];
        let (pid2, slot2) = heap.update(&cache, pid, slot, &big).unwrap();
        assert_eq!(heap.get(&cache, pid2, slot2).unwrap().unwrap(), big);
        // Old slot is dead.
        assert!(heap.get(&cache, pid0, slot0).unwrap().is_none() || (pid2, slot2) == (pid0, slot0));
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let (cache, heap) = setup();
        let mut addrs = Vec::new();
        for i in 0..20u8 {
            addrs.push(heap.insert(&cache, &vec![i; 300]).unwrap());
        }
        let pages_before = heap.num_pages();
        for (pid, slot) in &addrs {
            heap.delete(&cache, *pid, *slot).unwrap();
        }
        assert_eq!(heap.count_rows(&cache).unwrap(), 0);
        // Re-inserting the same volume should not grow the heap.
        for i in 0..20u8 {
            heap.insert(&cache, &vec![i; 300]).unwrap();
        }
        assert_eq!(heap.num_pages(), pages_before);
    }

    #[test]
    fn scan_stops_early() {
        let (cache, heap) = setup();
        for i in 0..10u8 {
            heap.insert(&cache, &[i]).unwrap();
        }
        let mut seen = 0;
        heap.scan(&cache, |_, _, _| {
            seen += 1;
            seen < 3
        })
        .unwrap();
        assert_eq!(seen, 3);
    }

    #[test]
    fn live_rows_tracks_mutations_without_page_reads() {
        let (cache, heap) = setup();
        assert_eq!(heap.live_rows(), 0);
        let mut addrs = Vec::new();
        for i in 0..12u8 {
            addrs.push(heap.insert(&cache, &vec![i; 400]).unwrap());
        }
        assert_eq!(heap.live_rows(), 12);
        // Relocating update keeps the count stable.
        let (pid, slot) = addrs[0];
        heap.update(&cache, pid, slot, &vec![0u8; 7000]).unwrap();
        assert_eq!(heap.live_rows(), 12);
        for (pid, slot) in &addrs[1..] {
            heap.delete(&cache, *pid, *slot).unwrap();
        }
        assert_eq!(heap.live_rows(), 1);
        assert_eq!(heap.count_rows(&cache).unwrap(), 1);
        // adopt_pages recomputes from the pages themselves.
        let pages = heap.pages();
        let rebuilt = HeapFile::from_pages(PartitionId(7), pages, &cache);
        assert_eq!(rebuilt.live_rows(), 1);
    }

    #[test]
    fn double_delete_is_an_error() {
        let (cache, heap) = setup();
        let (pid, slot) = heap.insert(&cache, b"x").unwrap();
        heap.delete(&cache, pid, slot).unwrap();
        assert!(heap.delete(&cache, pid, slot).is_err());
    }
}
