//! Page-oriented disk storage for the BTrim engine.
//!
//! This crate is the "traditional" half of the paper's hybrid
//! architecture (§II, green box of Fig. 1): a paged device behind the
//! [`disk::DiskBackend`] trait, an 8 KiB slotted-page row layout
//! ([`page`]), a latched buffer cache with clock replacement and
//! contention accounting ([`buffer`]), and per-partition heap files
//! ([`heap`]) providing row-level CRUD addressed by `(PageId, SlotId)`.
//!
//! The buffer cache records latch-contention events because the ILM
//! rules use "operations on page-store which observed contention" as a
//! signal to re-enable in-memory storage for a partition (§V.D).

#![forbid(unsafe_code)]

pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;

pub use buffer::{BufferCache, BufferStats, BufferStatsSnapshot, PageGuard, ShardStat};
pub use disk::{DiskBackend, FileDisk, MemDisk};
pub use heap::HeapFile;
pub use page::{
    page_checksum, stamp_page_checksum, verify_page_checksum, PageType, PageView, SlottedPage,
    FORMAT_EPOCH, HEADER_SIZE, PAGE_SIZE,
};
