//! Page-oriented disk storage for the BTrim engine.
//!
//! This crate is the "traditional" half of the paper's hybrid
//! architecture (§II, green box of Fig. 1): a paged device behind the
//! [`disk::DiskBackend`] trait, an 8 KiB slotted-page row layout
//! ([`page`]), a latched buffer cache with clock replacement and
//! contention accounting ([`buffer`]), and per-partition heap files
//! ([`heap`]) providing row-level CRUD addressed by `(PageId, SlotId)`.
//!
//! The buffer cache records latch-contention events because the ILM
//! rules use "operations on page-store which observed contention" as a
//! signal to re-enable in-memory storage for a partition (§V.D).
//!
//! The HTAP freeze step adds a third storage form beyond IMRS rows and
//! slotted pages: immutable compressed columnar [`extent`]s, holding
//! rows the ILM signal declared cold-for-good, served to analytic scans
//! without the buffer cache.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod disk;
pub mod extent;
pub mod heap;
pub mod page;

pub use buffer::{BufferCache, BufferStats, BufferStatsSnapshot, PageGuard, ShardStat};
pub use disk::{DiskBackend, FileDisk, MemDisk};
pub use extent::{Column, ColumnData, ExtentColumn, ExtentStore, FrozenExtent, MAX_EXTENT_ROWS};
pub use heap::HeapFile;
pub use page::{
    page_checksum, stamp_page_checksum, verify_page_checksum, PageType, PageView, SlottedPage,
    FORMAT_EPOCH, HEADER_SIZE, PAGE_SIZE,
};
