//! Frozen columnar extents: the cold end of the row life cycle.
//!
//! Pack (§VI) normally relocates cold IMRS rows into ordinary slotted
//! pages. The HTAP freeze step goes one stage further: rows that the
//! ILM signal marks as frozen-in-practice are re-encoded into an
//! immutable, compressed, *columnar* *extent* — per-column dictionary
//! or frame-of-reference bit-packed encodings with min/max zone maps —
//! which analytic scans can aggregate over without touching the buffer
//! cache or acquiring any ranked lock.
//!
//! Wire format (`encode`/`decode`, CRC-32 trailer over everything
//! before it):
//!
//! ```text
//! u32 magic "BTFZ" | u16 version | u32 extent id | u32 table
//! u32 partition    | u32 row count n | u64 raw input bytes
//! row-id column (adaptive u64 encoding, n values)
//! u32 column count
//! per column: name (length-prefixed) | u8 kind (0=u64, 1=bytes) | payload
//! u32 crc-32
//! ```
//!
//! A u64 column payload is either frame-of-reference (`base` + deltas
//! bit-packed at the narrowest width that covers `max - min`) or a
//! sorted dictionary (itself FOR-encoded) plus bit-packed indices —
//! whichever encodes smaller. A bytes column is plain (lengths as a
//! FOR-encoded u64 subcolumn + concatenated payload), charset-packed
//! (same lengths, payload bytes bit-packed at log2 of the distinct
//! byte alphabet — the win for a-strings and digit fields), or a
//! sorted dictionary of distinct values plus bit-packed indices —
//! again whichever encodes smaller. Zone maps are
//! *recomputed at decode time*, never trusted from the wire, which
//! removes a whole class of corrupt-but-plausible inputs.
//!
//! Decoding is total: any truncated or bit-flipped input yields a typed
//! [`BtrimError::Corrupt`]/[`BtrimError::Invalid`] error, never a panic
//! — this crate is on `btrim-lint`'s no-panic list. Every width, count,
//! index and length read from the wire is validated before use, so the
//! accessors on a decoded column are infallible.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use btrim_common::codec::{Decoder, Encoder};
use btrim_common::{BtrimError, PartitionId, Result, RowId, TableId};
use parking_lot::{lock_rank, Mutex};

/// Hard cap on rows per extent: a frozen row is addressed by
/// `(extent id, u16 slot index)` in the RID-Map's packed word, so an
/// extent can never hold more than `u16` range + 1 rows.
pub const MAX_EXTENT_ROWS: usize = 65_536;

/// Magic prefix of an encoded extent: `b"BTFZ"` read as LE u32.
pub const EXTENT_MAGIC: u32 = u32::from_le_bytes(*b"BTFZ");

/// Extent wire-format version.
pub const EXTENT_VERSION: u16 = 1;

/// Directory geometry: 4096 lazily-allocated chunks of 256 slots each.
const DIR_CHUNK_SLOTS: usize = 256;
const DIR_CHUNKS: usize = 4096;

/// Bits required to represent `v` (0 for `v == 0`).
#[inline]
pub fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Encoded size in bytes of `count` values bit-packed at `width`.
#[inline]
pub fn packed_len(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Mask covering the low `width` bits (total for any width 0–64).
#[inline]
fn width_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Bit-pack `values` LSB-first at `width` bits each. Values wider than
/// `width` are masked down — callers pick `width` to cover the range.
pub fn pack_bits(values: &[u64], width: u8) -> Vec<u8> {
    if width == 0 {
        return Vec::new();
    }
    let w = width as usize;
    let mut out = vec![0u8; packed_len(values.len(), width)];
    let mut bit = 0usize;
    for &raw in values {
        let v = raw & width_mask(width);
        // Up to 64 payload bits shifted by up to 7 → 71 bits, so the
        // accumulator must be wider than u64.
        let mut acc = (v as u128) << (bit % 8);
        let mut byte = bit / 8;
        while acc != 0 {
            if let Some(slot) = out.get_mut(byte) {
                *slot |= (acc & 0xFF) as u8;
            }
            acc >>= 8;
            byte += 1;
        }
        bit += w;
    }
    out
}

/// Extract value `i` from an LSB-first bit-packed buffer. Reads past
/// the end of `packed` yield zero bits; decode-time validation pins the
/// buffer to the exact packed length, so in-bounds indices never hit
/// that fallback.
#[inline]
pub fn unpack_bits_at(packed: &[u8], width: u8, i: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let w = width as usize;
    let bit = i * w;
    let first = bit / 8;
    let shift = bit % 8;
    let nbytes = (shift + w).div_ceil(8);
    let mut acc: u128 = 0;
    for k in 0..nbytes {
        let b = packed.get(first + k).copied().unwrap_or(0);
        acc |= (b as u128) << (8 * k);
    }
    ((acc >> shift) as u64) & width_mask(width)
}

/// Column input handed to [`FrozenExtent::build`]: one entry per row.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Fixed-width numeric column (integers, or f64 bit patterns).
    U64(Vec<u64>),
    /// Variable-length byte-string column.
    Bytes(Vec<Vec<u8>>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::U64(v) => v.len(),
            ColumnData::Bytes(v) => v.len(),
        }
    }
}

/// Physical encoding of a u64 column.
#[derive(Debug)]
enum U64Enc {
    /// Frame-of-reference: `value[i] = base + unpack(packed, i)`.
    For {
        base: u64,
        width: u8,
        packed: Vec<u8>,
    },
    /// Sorted dictionary + bit-packed indices into it.
    Dict {
        dict: Vec<u64>,
        width: u8,
        packed: Vec<u8>,
    },
}

/// A decoded (or freshly built) u64 column with its zone map.
#[derive(Debug)]
pub struct U64Column {
    len: usize,
    min: u64,
    max: u64,
    enc: U64Enc,
}

impl U64Column {
    /// Build from raw values, choosing the smaller of FOR and DICT.
    pub fn build(values: &[u64]) -> U64Column {
        let n = values.len();
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);

        let for_width = bits_needed(max - min);
        // 8 base + 1 width + 4 length prefix + packed payload.
        let for_cost = 13 + packed_len(n, for_width);

        let mut dict: Vec<u64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let dict_width = bits_needed(dict.len().saturating_sub(1) as u64);
        let dict_value_width =
            bits_needed(dict.last().copied().unwrap_or(0) - dict.first().copied().unwrap_or(0));
        // 4 dict len + dict FOR subcolumn + 1 idx width + 4 prefix + indices.
        let dict_cost =
            4 + 13 + packed_len(dict.len(), dict_value_width) + 5 + packed_len(n, dict_width);

        let enc = if dict_cost < for_cost {
            let indices: Vec<u64> = values
                .iter()
                .map(|v| dict.partition_point(|d| d < v) as u64)
                .collect();
            U64Enc::Dict {
                packed: pack_bits(&indices, dict_width),
                width: dict_width,
                dict,
            }
        } else {
            let deltas: Vec<u64> = values.iter().map(|v| v - min).collect();
            U64Enc::For {
                base: min,
                width: for_width,
                packed: pack_bits(&deltas, for_width),
            }
        };
        U64Column {
            len: n,
            min,
            max,
            enc,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zone-map minimum (0 for an empty column).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Zone-map maximum (0 for an empty column).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at row `i`, or `None` past the end.
    #[inline]
    pub fn get(&self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        match &self.enc {
            U64Enc::For {
                base,
                width,
                packed,
            } => Some(base.wrapping_add(unpack_bits_at(packed, *width, i))),
            U64Enc::Dict {
                dict,
                width,
                packed,
            } => dict
                .get(unpack_bits_at(packed, *width, i) as usize)
                .copied(),
        }
    }

    /// Sequential iterator over all values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(|i| self.get(i).unwrap_or(0))
    }

    fn encode(&self, e: &mut Encoder) {
        match &self.enc {
            U64Enc::For {
                base,
                width,
                packed,
            } => {
                e.put_u8(0);
                e.put_u64(*base);
                e.put_u8(*width);
                e.put_bytes(packed);
            }
            U64Enc::Dict {
                dict,
                width,
                packed,
            } => {
                e.put_u8(1);
                e.put_u32(dict.len() as u32);
                let sub = U64Column::build_for_only(dict);
                sub.encode_for_only(e);
                e.put_u8(*width);
                e.put_bytes(packed);
            }
        }
    }

    /// FOR-only build for dictionary subcolumns (the dictionary is
    /// already deduplicated; nesting dictionaries would be circular).
    fn build_for_only(values: &[u64]) -> U64Column {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let width = bits_needed(max - min);
        let deltas: Vec<u64> = values.iter().map(|v| v - min).collect();
        U64Column {
            len: values.len(),
            min,
            max,
            enc: U64Enc::For {
                base: min,
                width,
                packed: pack_bits(&deltas, width),
            },
        }
    }

    fn encode_for_only(&self, e: &mut Encoder) {
        if let U64Enc::For {
            base,
            width,
            packed,
        } = &self.enc
        {
            e.put_u64(*base);
            e.put_u8(*width);
            e.put_bytes(packed);
        }
    }

    /// Decode a FOR-encoded run of `n` values (no enc-tag byte); used
    /// for dictionary and length subcolumns as well as FOR columns.
    fn decode_for_run(d: &mut Decoder<'_>, n: usize) -> Result<(u64, u8, Vec<u8>)> {
        let base = d.get_u64()?;
        let width = d.get_u8()?;
        if width > 64 {
            return Err(BtrimError::Corrupt(format!(
                "extent: bit width {width} > 64"
            )));
        }
        let packed = d.get_bytes()?;
        if packed.len() != packed_len(n, width) {
            return Err(BtrimError::Corrupt(format!(
                "extent: packed run is {} bytes, want {} for {n} x {width}-bit",
                packed.len(),
                packed_len(n, width)
            )));
        }
        Ok((base, width, packed))
    }

    fn decode(d: &mut Decoder<'_>, n: usize) -> Result<U64Column> {
        match d.get_u8()? {
            0 => {
                let (base, width, packed) = Self::decode_for_run(d, n)?;
                let mut min = u64::MAX;
                let mut max = 0u64;
                for i in 0..n {
                    let delta = unpack_bits_at(&packed, width, i);
                    let v = base.checked_add(delta).ok_or_else(|| {
                        BtrimError::Corrupt("extent: FOR value overflows u64".into())
                    })?;
                    min = min.min(v);
                    max = max.max(v);
                }
                if n == 0 {
                    min = 0;
                }
                Ok(U64Column {
                    len: n,
                    min,
                    max,
                    enc: U64Enc::For {
                        base,
                        width,
                        packed,
                    },
                })
            }
            1 => {
                let dlen = d.get_u32()? as usize;
                if dlen > MAX_EXTENT_ROWS {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: dictionary of {dlen} entries exceeds {MAX_EXTENT_ROWS}"
                    )));
                }
                let (base, dwidth, dpacked) = Self::decode_for_run(d, dlen)?;
                let mut dict = Vec::with_capacity(dlen);
                for i in 0..dlen {
                    let v = base
                        .checked_add(unpack_bits_at(&dpacked, dwidth, i))
                        .ok_or_else(|| {
                            BtrimError::Corrupt("extent: dict value overflows u64".into())
                        })?;
                    if let Some(&prev) = dict.last() {
                        if v <= prev {
                            return Err(BtrimError::Corrupt(
                                "extent: dictionary not strictly ascending".into(),
                            ));
                        }
                    }
                    dict.push(v);
                }
                let width = d.get_u8()?;
                if width > 64 {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: bit width {width} > 64"
                    )));
                }
                let packed = d.get_bytes()?;
                if packed.len() != packed_len(n, width) {
                    return Err(BtrimError::Corrupt(
                        "extent: dict index run has wrong packed length".into(),
                    ));
                }
                for i in 0..n {
                    let idx = unpack_bits_at(&packed, width, i) as usize;
                    if idx >= dlen {
                        return Err(BtrimError::Corrupt(format!(
                            "extent: dict index {idx} out of range ({dlen} entries)"
                        )));
                    }
                }
                let min = dict.first().copied().unwrap_or(0);
                let max = dict.last().copied().unwrap_or(0);
                Ok(U64Column {
                    len: n,
                    min,
                    max,
                    enc: U64Enc::Dict {
                        dict,
                        width,
                        packed,
                    },
                })
            }
            t => Err(BtrimError::Corrupt(format!(
                "extent: bad u64 encoding tag {t}"
            ))),
        }
    }
}

/// Physical encoding of a bytes column.
#[derive(Debug)]
enum BytesEnc {
    /// Concatenated payload addressed by prefix-sum offsets.
    Plain { offsets: Vec<u32>, data: Vec<u8> },
    /// Sorted dictionary of distinct values + bit-packed indices.
    Dict {
        dict_offsets: Vec<u32>,
        dict_data: Vec<u8>,
        width: u8,
        packed: Vec<u8>,
    },
}

/// A decoded (or freshly built) variable-length bytes column.
#[derive(Debug)]
pub struct BytesColumn {
    len: usize,
    enc: BytesEnc,
}

impl BytesColumn {
    /// Build from raw values, choosing the smaller of PLAIN and DICT.
    pub fn build(values: &[Vec<u8>]) -> BytesColumn {
        let n = values.len();
        let total: usize = values.iter().map(Vec::len).sum();
        let lengths: Vec<u64> = values.iter().map(|v| v.len() as u64).collect();
        let min_len = lengths.iter().copied().min().unwrap_or(0);
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let len_width = bits_needed(max_len - min_len);
        let plain_cost = 13 + packed_len(n, len_width) + 4 + total;

        let mut dict: Vec<&[u8]> = values.iter().map(Vec::as_slice).collect();
        dict.sort_unstable();
        dict.dedup();
        let dict_total: usize = dict.iter().map(|v| v.len()).sum();
        let dlens: Vec<u64> = dict.iter().map(|v| v.len() as u64).collect();
        let dmin = dlens.iter().copied().min().unwrap_or(0);
        let dmax = dlens.iter().copied().max().unwrap_or(0);
        let dlen_width = bits_needed(dmax - dmin);
        let idx_width = bits_needed(dict.len().saturating_sub(1) as u64);
        let dict_cost = 4
            + 13
            + packed_len(dict.len(), dlen_width)
            + 4
            + dict_total
            + 5
            + packed_len(n, idx_width);

        let enc = if dict_cost < plain_cost {
            let indices: Vec<u64> = values
                .iter()
                .map(|v| dict.partition_point(|d| *d < v.as_slice()) as u64)
                .collect();
            let mut dict_offsets = Vec::with_capacity(dict.len() + 1);
            let mut dict_data = Vec::with_capacity(dict_total);
            dict_offsets.push(0u32);
            for v in &dict {
                dict_data.extend_from_slice(v);
                dict_offsets.push(dict_data.len() as u32);
            }
            BytesEnc::Dict {
                dict_offsets,
                dict_data,
                width: idx_width,
                packed: pack_bits(&indices, idx_width),
            }
        } else {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut data = Vec::with_capacity(total);
            offsets.push(0u32);
            for v in values {
                data.extend_from_slice(v);
                offsets.push(data.len() as u32);
            }
            BytesEnc::Plain { offsets, data }
        };
        BytesColumn { len: n, enc }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value at row `i` as a borrowed slice, or `None` past the end.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        if i >= self.len {
            return None;
        }
        match &self.enc {
            BytesEnc::Plain { offsets, data } => {
                let start = offsets.get(i).copied()? as usize;
                let end = offsets.get(i + 1).copied()? as usize;
                data.get(start..end)
            }
            BytesEnc::Dict {
                dict_offsets,
                dict_data,
                width,
                packed,
            } => {
                let idx = unpack_bits_at(packed, *width, i) as usize;
                let start = dict_offsets.get(idx).copied()? as usize;
                let end = dict_offsets.get(idx + 1).copied()? as usize;
                dict_data.get(start..end)
            }
        }
    }

    fn slices_to_runs(offsets: &[u32]) -> Vec<u64> {
        offsets
            .windows(2)
            .map(|w| {
                let a = w.first().copied().unwrap_or(0);
                let b = w.last().copied().unwrap_or(0);
                (b - a) as u64
            })
            .collect()
    }

    /// The byte alphabet of `data`, ascending, and the per-symbol bit
    /// width charset packing would use.
    fn charset_of(data: &[u8]) -> (Vec<u8>, u8) {
        let mut seen = [false; 256];
        for &b in data {
            seen[b as usize] = true;
        }
        let charset: Vec<u8> = (0..=255u8).filter(|&b| seen[b as usize]).collect();
        let width = bits_needed(charset.len().saturating_sub(1) as u64);
        (charset, width)
    }

    fn encode(&self, e: &mut Encoder) {
        match &self.enc {
            BytesEnc::Plain { offsets, data } => {
                // Charset packing: when the payload uses a narrow byte
                // alphabet (TPC-C a-strings, digits, hex), each byte
                // goes on the wire at log2(|alphabet|) bits. Wire-level
                // only — the decoded column is Plain again.
                let (charset, sym_width) = Self::charset_of(data);
                let plain_cost = 4 + data.len();
                let packed_cost = 4 + charset.len() + 1 + 4 + packed_len(data.len(), sym_width);
                let lengths = Self::slices_to_runs(offsets);
                let sub = U64Column::build_for_only(&lengths);
                if sym_width < 8 && packed_cost < plain_cost {
                    e.put_u8(2);
                    sub.encode_for_only(e);
                    e.put_bytes(&charset);
                    e.put_u8(sym_width);
                    let mut rank = [0u64; 256];
                    for (i, &b) in charset.iter().enumerate() {
                        rank[b as usize] = i as u64;
                    }
                    let symbols: Vec<u64> = data.iter().map(|&b| rank[b as usize]).collect();
                    e.put_bytes(&pack_bits(&symbols, sym_width));
                } else {
                    e.put_u8(0);
                    sub.encode_for_only(e);
                    e.put_bytes(data);
                }
            }
            BytesEnc::Dict {
                dict_offsets,
                dict_data,
                width,
                packed,
            } => {
                e.put_u8(1);
                e.put_u32((dict_offsets.len() - 1) as u32);
                let dlens = Self::slices_to_runs(dict_offsets);
                let sub = U64Column::build_for_only(&dlens);
                sub.encode_for_only(e);
                e.put_bytes(dict_data);
                e.put_u8(*width);
                e.put_bytes(packed);
            }
        }
    }

    /// Decode a FOR-encoded length run and turn it into validated
    /// prefix-sum offsets for `data_len` bytes of payload.
    fn decode_offsets(d: &mut Decoder<'_>, n: usize) -> Result<Vec<u32>> {
        let (base, width, packed) = U64Column::decode_for_run(d, n)?;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total: u64 = 0;
        for i in 0..n {
            let len = base
                .checked_add(unpack_bits_at(&packed, width, i))
                .ok_or_else(|| BtrimError::Corrupt("extent: length overflows u64".into()))?;
            total = total
                .checked_add(len)
                .filter(|t| *t <= u32::MAX as u64)
                .ok_or_else(|| BtrimError::Corrupt("extent: bytes column exceeds 4 GiB".into()))?;
            offsets.push(total as u32);
        }
        Ok(offsets)
    }

    fn decode(d: &mut Decoder<'_>, n: usize) -> Result<BytesColumn> {
        match d.get_u8()? {
            0 => {
                let offsets = Self::decode_offsets(d, n)?;
                let data = d.get_bytes()?;
                if offsets.last().copied().unwrap_or(0) as usize != data.len() {
                    return Err(BtrimError::Corrupt(
                        "extent: bytes payload length disagrees with length run".into(),
                    ));
                }
                Ok(BytesColumn {
                    len: n,
                    enc: BytesEnc::Plain { offsets, data },
                })
            }
            1 => {
                let dlen = d.get_u32()? as usize;
                if dlen > MAX_EXTENT_ROWS {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: bytes dictionary of {dlen} entries exceeds {MAX_EXTENT_ROWS}"
                    )));
                }
                let dict_offsets = Self::decode_offsets(d, dlen)?;
                let dict_data = d.get_bytes()?;
                if dict_offsets.last().copied().unwrap_or(0) as usize != dict_data.len() {
                    return Err(BtrimError::Corrupt(
                        "extent: bytes dictionary payload disagrees with length run".into(),
                    ));
                }
                for w in dict_offsets.windows(3) {
                    if let [a, b, c] = w {
                        let prev = dict_data.get(*a as usize..*b as usize);
                        let next = dict_data.get(*b as usize..*c as usize);
                        if prev >= next {
                            return Err(BtrimError::Corrupt(
                                "extent: bytes dictionary not strictly ascending".into(),
                            ));
                        }
                    }
                }
                let width = d.get_u8()?;
                if width > 64 {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: bit width {width} > 64"
                    )));
                }
                let packed = d.get_bytes()?;
                if packed.len() != packed_len(n, width) {
                    return Err(BtrimError::Corrupt(
                        "extent: bytes index run has wrong packed length".into(),
                    ));
                }
                for i in 0..n {
                    let idx = unpack_bits_at(&packed, width, i) as usize;
                    if idx >= dlen {
                        return Err(BtrimError::Corrupt(format!(
                            "extent: bytes dict index {idx} out of range ({dlen} entries)"
                        )));
                    }
                }
                Ok(BytesColumn {
                    len: n,
                    enc: BytesEnc::Dict {
                        dict_offsets,
                        dict_data,
                        width,
                        packed,
                    },
                })
            }
            2 => {
                let offsets = Self::decode_offsets(d, n)?;
                let charset = d.get_bytes()?;
                if charset.len() > 256 {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: charset of {} symbols exceeds 256",
                        charset.len()
                    )));
                }
                if charset.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(BtrimError::Corrupt(
                        "extent: charset not strictly ascending".into(),
                    ));
                }
                let sym_width = d.get_u8()?;
                if sym_width != bits_needed(charset.len().saturating_sub(1) as u64) {
                    return Err(BtrimError::Corrupt(format!(
                        "extent: symbol width {sym_width} does not fit a {}-symbol charset",
                        charset.len()
                    )));
                }
                let total = offsets.last().copied().unwrap_or(0) as usize;
                let packed = d.get_bytes()?;
                if packed.len() != packed_len(total, sym_width) {
                    return Err(BtrimError::Corrupt(
                        "extent: charset-packed payload has wrong length".into(),
                    ));
                }
                let mut data = Vec::with_capacity(total);
                for i in 0..total {
                    let idx = unpack_bits_at(&packed, sym_width, i) as usize;
                    data.push(*charset.get(idx).ok_or_else(|| {
                        BtrimError::Corrupt(format!(
                            "extent: symbol {idx} out of range ({} charset entries)",
                            charset.len()
                        ))
                    })?);
                }
                Ok(BytesColumn {
                    len: n,
                    enc: BytesEnc::Plain { offsets, data },
                })
            }
            t => Err(BtrimError::Corrupt(format!(
                "extent: bad bytes encoding tag {t}"
            ))),
        }
    }
}

/// One column of a frozen extent.
#[derive(Debug)]
pub enum Column {
    /// Numeric column with a zone map.
    U64(U64Column),
    /// Variable-length bytes column.
    Bytes(BytesColumn),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::U64(c) => c.len(),
            Column::Bytes(c) => c.len(),
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zone map, for u64 columns only.
    pub fn min_max(&self) -> Option<(u64, u64)> {
        match self {
            Column::U64(c) if !c.is_empty() => Some((c.min(), c.max())),
            _ => None,
        }
    }

    /// Numeric value at row `i` (u64 columns only).
    #[inline]
    pub fn get_u64(&self, i: usize) -> Option<u64> {
        match self {
            Column::U64(c) => c.get(i),
            Column::Bytes(_) => None,
        }
    }

    /// Byte-string value at row `i` (bytes columns only).
    #[inline]
    pub fn get_bytes(&self, i: usize) -> Option<&[u8]> {
        match self {
            Column::Bytes(c) => c.get(i),
            Column::U64(_) => None,
        }
    }
}

/// A named column within an extent.
#[derive(Debug)]
pub struct ExtentColumn {
    /// Field name, matching the table's declared row layout.
    pub name: String,
    /// The column data.
    pub col: Column,
}

/// An immutable, compressed, columnar run of frozen rows.
///
/// The encoded payload — magic through CRC — is the unit the freeze
/// step WAL-logs and recovery replays. Per-slot liveness (a row thawed
/// back to the IMRS, or deleted) is *runtime* state rebuilt from
/// `ExtentRowGone` log records, deliberately not part of the wire
/// image, which stays immutable from the moment it is encoded.
#[derive(Debug)]
pub struct FrozenExtent {
    id: u32,
    table: TableId,
    partition: PartitionId,
    raw_len: u64,
    encoded_len: AtomicU64,
    row_ids: Vec<RowId>,
    columns: Vec<ExtentColumn>,
    live: Vec<AtomicU64>,
    live_count: AtomicU64,
}

impl FrozenExtent {
    /// Build an extent from per-row column data. `raw_len` is the total
    /// byte size of the input row images, kept for compression
    /// accounting (it survives the encode/decode roundtrip).
    pub fn build(
        id: u32,
        table: TableId,
        partition: PartitionId,
        row_ids: Vec<RowId>,
        columns: Vec<(String, ColumnData)>,
        raw_len: u64,
    ) -> Result<FrozenExtent> {
        let n = row_ids.len();
        if n > MAX_EXTENT_ROWS {
            return Err(BtrimError::Invalid(format!(
                "extent holds at most {MAX_EXTENT_ROWS} rows, got {n}"
            )));
        }
        let mut built = Vec::with_capacity(columns.len());
        for (name, data) in columns {
            if data.len() != n {
                return Err(BtrimError::Invalid(format!(
                    "extent column {name} has {} rows, extent has {n}",
                    data.len()
                )));
            }
            if built.iter().any(|c: &ExtentColumn| c.name == name) {
                return Err(BtrimError::Invalid(format!(
                    "duplicate extent column {name}"
                )));
            }
            let col = match data {
                ColumnData::U64(v) => Column::U64(U64Column::build(&v)),
                ColumnData::Bytes(v) => Column::Bytes(BytesColumn::build(&v)),
            };
            built.push(ExtentColumn { name, col });
        }
        Ok(FrozenExtent {
            id,
            table,
            partition,
            raw_len,
            encoded_len: AtomicU64::new(0),
            live: new_live_bitmap(n),
            live_count: AtomicU64::new(n as u64),
            row_ids,
            columns: built,
        })
    }

    /// Serialize to the wire format (records the encoded size on the
    /// extent as a side effect, for compression accounting).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64 + self.raw_len as usize / 2);
        e.put_u32(EXTENT_MAGIC);
        e.put_u16(EXTENT_VERSION);
        e.put_u32(self.id);
        e.put_u32(self.table.0);
        e.put_u32(self.partition.0);
        e.put_u32(self.row_ids.len() as u32);
        e.put_u64(self.raw_len);
        let ids: Vec<u64> = self.row_ids.iter().map(|r| r.0).collect();
        U64Column::build(&ids).encode(&mut e);
        e.put_u32(self.columns.len() as u32);
        for c in &self.columns {
            e.put_str(&c.name);
            match &c.col {
                Column::U64(col) => {
                    e.put_u8(0);
                    col.encode(&mut e);
                }
                Column::Bytes(col) => {
                    e.put_u8(1);
                    col.encode(&mut e);
                }
            }
        }
        let mut out = e.into_vec();
        let sum = crc32(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        self.encoded_len.store(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Decode and fully validate an encoded extent. Every row starts
    /// live; recovery re-applies `ExtentRowGone` records on top.
    pub fn decode(bytes: &[u8]) -> Result<FrozenExtent> {
        if bytes.len() < 4 {
            return Err(BtrimError::Corrupt("extent: too short for checksum".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = tail
            .first_chunk::<4>()
            .map(|b| u32::from_le_bytes(*b))
            .unwrap_or(0);
        let actual = crc32(body);
        if stored != actual {
            return Err(BtrimError::Corrupt(format!(
                "extent: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut d = Decoder::new(body);
        let magic = d.get_u32()?;
        if magic != EXTENT_MAGIC {
            return Err(BtrimError::Corrupt(format!(
                "extent: bad magic {magic:#010x}"
            )));
        }
        let version = d.get_u16()?;
        if version != EXTENT_VERSION {
            return Err(BtrimError::Corrupt(format!(
                "extent: unknown version {version}"
            )));
        }
        let id = d.get_u32()?;
        let table = TableId(d.get_u32()?);
        let partition = PartitionId(d.get_u32()?);
        let n = d.get_u32()? as usize;
        if n > MAX_EXTENT_ROWS {
            return Err(BtrimError::Corrupt(format!(
                "extent: {n} rows exceeds {MAX_EXTENT_ROWS}"
            )));
        }
        let raw_len = d.get_u64()?;
        let ids = U64Column::decode(&mut d, n)?;
        let row_ids: Vec<RowId> = ids.iter().map(RowId).collect();
        let ncols = d.get_u32()? as usize;
        if ncols > 4096 {
            return Err(BtrimError::Corrupt(format!("extent: {ncols} columns")));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = d.get_str()?;
            let col = match d.get_u8()? {
                0 => Column::U64(U64Column::decode(&mut d, n)?),
                1 => Column::Bytes(BytesColumn::decode(&mut d, n)?),
                t => {
                    return Err(BtrimError::Corrupt(format!("extent: bad column kind {t}")));
                }
            };
            if columns.iter().any(|c: &ExtentColumn| c.name == name) {
                return Err(BtrimError::Corrupt(format!(
                    "extent: duplicate column {name}"
                )));
            }
            columns.push(ExtentColumn { name, col });
        }
        if !d.is_exhausted() {
            return Err(BtrimError::Corrupt(format!(
                "extent: {} trailing bytes",
                d.remaining()
            )));
        }
        Ok(FrozenExtent {
            id,
            table,
            partition,
            raw_len,
            encoded_len: AtomicU64::new(bytes.len() as u64),
            live: new_live_bitmap(n),
            live_count: AtomicU64::new(n as u64),
            row_ids,
            columns,
        })
    }

    /// Extent id (its slot in the [`ExtentStore`] directory).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Owning table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Owning partition.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Number of rows frozen into this extent (live or not).
    pub fn row_count(&self) -> usize {
        self.row_ids.len()
    }

    /// Row id at slot `i`.
    pub fn row_id(&self, i: usize) -> Option<RowId> {
        self.row_ids.get(i).copied()
    }

    /// All row ids in slot order.
    pub fn row_ids(&self) -> &[RowId] {
        &self.row_ids
    }

    /// The named columns.
    pub fn columns(&self) -> &[ExtentColumn] {
        &self.columns
    }

    /// Look up a column by field name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name).map(|c| &c.col)
    }

    /// Total byte size of the row images that went in.
    pub fn raw_len(&self) -> u64 {
        self.raw_len
    }

    /// Encoded wire size (0 until first encoded or decoded).
    pub fn encoded_len(&self) -> u64 {
        self.encoded_len.load(Ordering::Relaxed)
    }

    /// Whether slot `i` still holds the current version of its row.
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        self.live
            .get(i / 64)
            .map(|live_word| live_word.load(Ordering::Acquire) >> (i % 64) & 1 == 1)
            .unwrap_or(false)
    }

    /// Mark slot `i` gone (row thawed or deleted). Returns whether this
    /// call made the transition.
    pub fn mark_gone(&self, i: usize) -> bool {
        let Some(live_word) = self.live.get(i / 64) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        let prev = live_word.fetch_and(!bit, Ordering::AcqRel);
        if prev & bit != 0 {
            self.live_count.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Re-mark slot `i` live (abort-undo of a frozen-row delete).
    /// Returns whether this call made the transition.
    pub fn mark_live(&self, i: usize) -> bool {
        let Some(live_word) = self.live.get(i / 64) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        let prev = live_word.fetch_or(bit, Ordering::AcqRel);
        if prev & bit == 0 {
            self.live_count.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of live slots.
    pub fn live_count(&self) -> u64 {
        self.live_count.load(Ordering::Relaxed)
    }
}

fn new_live_bitmap(n: usize) -> Vec<AtomicU64> {
    let words = n.div_ceil(64);
    let mut live = Vec::with_capacity(words);
    for w in 0..words {
        let bits_here = (n - w * 64).min(64);
        let word = if bits_here == 64 {
            u64::MAX
        } else {
            (1u64 << bits_here) - 1
        };
        live.push(AtomicU64::new(word));
    }
    live
}

/// CRC-32 (IEEE) over an encoded extent body. Bitwise implementation:
/// extents are checksummed once per freeze and once per recovery
/// replay, not per access, so simplicity wins over table lookups.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The global frozen-extent directory: a chunked, lazily-allocated
/// array of `OnceLock` slots addressed by extent id.
///
/// Lookups ([`ExtentStore::get`]) and iteration are entirely lock-free
/// — the analytic scan path promises zero ranked-lock acquisitions.
/// Only [`ExtentStore::install`] takes the ranked `publish` mutex, and
/// holds it strictly for the directory update and byte accounting —
/// never across encoding, WAL appends, or I/O.
/// One lazily-allocated chunk of the extent directory.
type ExtentChunk = Box<[OnceLock<Arc<FrozenExtent>>]>;

#[derive(Debug)]
pub struct ExtentStore {
    chunks: Box<[OnceLock<ExtentChunk>]>,
    next: AtomicU32,
    publish: Mutex<()>,
    count: AtomicU64,
    raw_bytes: AtomicU64,
    encoded_bytes: AtomicU64,
}

impl Default for ExtentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtentStore {
    /// Create an empty directory.
    pub fn new() -> ExtentStore {
        ExtentStore {
            chunks: (0..DIR_CHUNKS).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
            publish: Mutex::with_rank(lock_rank::EXTENT_STORE, ()),
            count: AtomicU64::new(0),
            raw_bytes: AtomicU64::new(0),
            encoded_bytes: AtomicU64::new(0),
        }
    }

    /// Reserve the next extent id.
    pub fn allocate_id(&self) -> u32 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Raise the id allocator past `id` (recovery replays extents at
    /// their logged ids and must keep later allocations above them).
    pub fn bump_floor(&self, id: u32) {
        self.next.fetch_max(id.saturating_add(1), Ordering::Relaxed);
    }

    /// Publish an extent at its id. Fails if the slot is taken or the
    /// id is beyond the directory.
    pub fn install(&self, ext: Arc<FrozenExtent>) -> Result<()> {
        let id = ext.id() as usize;
        let chunk = self
            .chunks
            .get(id / DIR_CHUNK_SLOTS)
            .ok_or_else(|| BtrimError::Invalid(format!("extent directory full at id {id}")))?;
        let _publish = self.publish.lock();
        let slots = chunk.get_or_init(|| {
            (0..DIR_CHUNK_SLOTS)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let Some(slot) = slots.get(id % DIR_CHUNK_SLOTS) else {
            return Err(BtrimError::Invalid(format!(
                "extent slot {id} out of range"
            )));
        };
        let raw = ext.raw_len();
        let encoded = ext.encoded_len();
        if slot.set(ext).is_err() {
            return Err(BtrimError::Invalid(format!(
                "extent {id} already installed"
            )));
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.raw_bytes.fetch_add(raw, Ordering::Relaxed);
        self.encoded_bytes.fetch_add(encoded, Ordering::Relaxed);
        Ok(())
    }

    /// Lock-free lookup by extent id.
    #[inline]
    pub fn get(&self, id: u32) -> Option<Arc<FrozenExtent>> {
        let id = id as usize;
        self.chunks
            .get(id / DIR_CHUNK_SLOTS)?
            .get()?
            .get(id % DIR_CHUNK_SLOTS)?
            .get()
            .cloned()
    }

    /// Visit every installed extent in id order (lock-free).
    pub fn for_each(&self, mut f: impl FnMut(&Arc<FrozenExtent>)) {
        let hi = self.next.load(Ordering::Acquire);
        for id in 0..hi {
            if let Some(ext) = self.get(id) {
                f(&ext);
            }
        }
    }

    /// Number of installed extents.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total raw bytes across installed extents.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes.load(Ordering::Relaxed)
    }

    /// Total encoded bytes across installed extents.
    pub fn encoded_bytes(&self) -> u64 {
        self.encoded_bytes.load(Ordering::Relaxed)
    }

    /// One past the highest allocated extent id.
    pub fn next_id(&self) -> u32 {
        self.next.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_extent() -> FrozenExtent {
        let n = 100usize;
        let row_ids: Vec<RowId> = (0..n as u64).map(|i| RowId(1000 + i)).collect();
        let quantity = vec![5u64; n];
        let amount: Vec<u64> = (0..n as u64)
            .map(|i| if i % 3 == 0 { 0 } else { (i * 7919) ^ 0xDEAD })
            .collect();
        let info: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("dist-{:04}", i % 10).into_bytes())
            .collect();
        FrozenExtent::build(
            7,
            TableId(3),
            PartitionId(12),
            row_ids,
            vec![
                ("quantity".into(), ColumnData::U64(quantity)),
                ("amount".into(), ColumnData::U64(amount)),
                ("dist_info".into(), ColumnData::Bytes(info)),
            ],
            n as u64 * 80,
        )
        .unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip_all_widths() {
        for width in 0u8..=64 {
            let mask = width_mask(width);
            let values: Vec<u64> = (0..37u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let packed = pack_bits(&values, width);
            assert_eq!(packed.len(), packed_len(values.len(), width));
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    unpack_bits_at(&packed, width, i),
                    v,
                    "width {width} index {i}"
                );
            }
        }
    }

    #[test]
    fn extent_roundtrips_and_checks_crc() {
        let ext = sample_extent();
        let bytes = ext.encode();
        assert_eq!(ext.encoded_len(), bytes.len() as u64);

        let back = FrozenExtent::decode(&bytes).unwrap();
        assert_eq!(back.id(), 7);
        assert_eq!(back.table(), TableId(3));
        assert_eq!(back.partition(), PartitionId(12));
        assert_eq!(back.row_count(), 100);
        assert_eq!(back.row_ids(), ext.row_ids());
        for (a, b) in ext.columns().iter().zip(back.columns()) {
            assert_eq!(a.name, b.name);
            for i in 0..ext.row_count() {
                assert_eq!(a.col.get_u64(i), b.col.get_u64(i));
                assert_eq!(a.col.get_bytes(i), b.col.get_bytes(i));
            }
            assert_eq!(a.col.min_max(), b.col.min_max());
        }

        // Any single flipped bit must be caught by the CRC.
        let mut bad = bytes.clone();
        bad[10] ^= 0x40;
        assert!(matches!(
            FrozenExtent::decode(&bad),
            Err(BtrimError::Corrupt(_))
        ));
        // Truncation too.
        assert!(FrozenExtent::decode(&bytes[..bytes.len() - 9]).is_err());
        assert!(FrozenExtent::decode(&[]).is_err());
    }

    #[test]
    fn zone_maps_are_recomputed_at_decode() {
        let ext = sample_extent();
        let bytes = ext.encode();
        let back = FrozenExtent::decode(&bytes).unwrap();
        let qty = back.column("quantity").unwrap();
        assert_eq!(qty.min_max(), Some((5, 5)));
        assert!(back.column("amount").unwrap().min_max().is_some());
        assert!(back.column("dist_info").unwrap().min_max().is_none());
        assert!(back.column("nope").is_none());
    }

    #[test]
    fn all_equal_column_packs_to_zero_width() {
        let col = U64Column::build(&[42; 5000]);
        let mut e = Encoder::new();
        col.encode(&mut e);
        // enc tag + base + width + empty length-prefixed packed run.
        assert!(
            e.len() <= 14,
            "all-equal column should cost ~nothing, got {}",
            e.len()
        );
        assert_eq!(col.get(4999), Some(42));
        assert_eq!(col.get(5000), None);
    }

    #[test]
    fn dictionary_wins_on_low_cardinality_wide_values() {
        // Two distinct huge values: FOR width would be ~64 bits/row,
        // dictionary needs 1 bit/row.
        let values: Vec<u64> = (0..1000)
            .map(|i| if i % 2 == 0 { 0 } else { u64::MAX - 1 })
            .collect();
        let col = U64Column::build(&values);
        assert!(matches!(col.enc, U64Enc::Dict { .. }));
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(col.get(i), Some(v));
        }
        let mut e = Encoder::new();
        col.encode(&mut e);
        assert!(e.len() < 1000 / 8 + 64);
    }

    #[test]
    fn bytes_dictionary_wins_on_repeats() {
        let values: Vec<Vec<u8>> = (0..300)
            .map(|i| format!("warehouse-{}", i % 4).into_bytes())
            .collect();
        let col = BytesColumn::build(&values);
        assert!(matches!(col.enc, BytesEnc::Dict { .. }));
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.get(i), Some(v.as_slice()));
        }
    }

    #[test]
    fn liveness_bitmap_tracks_transitions() {
        let ext = sample_extent();
        assert_eq!(ext.live_count(), 100);
        assert!(ext.is_live(99));
        assert!(!ext.is_live(100));
        assert!(ext.mark_gone(99));
        assert!(!ext.mark_gone(99), "second mark is a no-op");
        assert!(!ext.is_live(99));
        assert_eq!(ext.live_count(), 99);
        assert!(ext.mark_live(99));
        assert!(!ext.mark_live(99));
        assert_eq!(ext.live_count(), 100);
        assert!(!ext.mark_gone(100_000), "out of range is a no-op");
    }

    #[test]
    fn store_install_get_and_floor() {
        let store = ExtentStore::new();
        assert_eq!(store.allocate_id(), 0);
        assert_eq!(store.allocate_id(), 1);
        store.bump_floor(9);
        assert_eq!(store.allocate_id(), 10);

        let ext = sample_extent();
        let _ = ext.encode();
        let raw = ext.raw_len();
        let encoded = ext.encoded_len();
        let ext = Arc::new(ext);
        store.install(Arc::clone(&ext)).unwrap();
        assert!(store.install(ext).is_err(), "double install rejected");
        let got = store.get(7).unwrap();
        assert_eq!(got.row_count(), 100);
        assert!(store.get(8).is_none());
        assert_eq!(store.count(), 1);
        assert_eq!(store.raw_bytes(), raw);
        assert_eq!(store.encoded_bytes(), encoded);

        let mut seen = Vec::new();
        store.bump_floor(7);
        store.for_each(|e| seen.push(e.id()));
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn build_rejects_mismatched_and_duplicate_columns() {
        let err = FrozenExtent::build(
            0,
            TableId(0),
            PartitionId(0),
            vec![RowId(1), RowId(2)],
            vec![("a".into(), ColumnData::U64(vec![1]))],
            0,
        );
        assert!(err.is_err());
        let err = FrozenExtent::build(
            0,
            TableId(0),
            PartitionId(0),
            vec![RowId(1)],
            vec![
                ("a".into(), ColumnData::U64(vec![1])),
                ("a".into(), ColumnData::U64(vec![2])),
            ],
            0,
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_extent_roundtrips() {
        let ext = FrozenExtent::build(
            3,
            TableId(1),
            PartitionId(2),
            Vec::new(),
            vec![
                ("a".into(), ColumnData::U64(Vec::new())),
                ("b".into(), ColumnData::Bytes(Vec::new())),
            ],
            0,
        )
        .unwrap();
        let bytes = ext.encode();
        let back = FrozenExtent::decode(&bytes).unwrap();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.live_count(), 0);
        assert_eq!(back.columns().len(), 2);
        assert!(back.column("a").unwrap().min_max().is_none());
    }
}
