//! Slotted-page layout.
//!
//! Classic slotted page: a fixed header, a row-data region growing up
//! from the header, and a slot directory growing down from the end of
//! the page. Row slots survive deletes as tombstones so `(PageId,
//! SlotId)` addresses stay stable until explicit compaction.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   u8   page_type
//! 1   u8   flags
//! 2   u16  slot_count
//! 4   u16  free_start        (first free byte of the data region)
//! 6   u16  dead_bytes        (reclaimable bytes in holes)
//! 8   u32  page_id
//! 12  u32  partition_id
//! 16  u32  next_page
//! 20  u64  page_lsn          (recovery idempotence)
//! 28  u32  checksum          (CRC-32 of the page, checksum field zeroed)
//! 32  u32  format_epoch      (page-layout version; currently 1)
//! 36  ...  row data ↑   ...   slot dir ↓  [offset u16, len u16] * slot_count
//! ```
//!
//! The checksum is stamped by the buffer cache immediately before each
//! device write and verified on fetch; `Free` (never-formatted, all
//! zero) pages are exempt. A mismatch means a torn write or media
//! corruption — the page must be salvaged, never served as valid data.

use btrim_common::{PageId, PartitionId, SlotId, NULL_PAGE_ID};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Size of the page header.
pub const HEADER_SIZE: usize = 36;
/// Current page-layout version stamped in the `format_epoch` field.
pub const FORMAT_EPOCH: u32 = 1;
/// Size of one slot-directory entry.
pub const SLOT_ENTRY_SIZE: usize = 4;
/// Largest row payload a single page can hold.
pub const MAX_ROW_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_ENTRY_SIZE;

/// Page type discriminants stored in the header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageType {
    /// Unformatted.
    Free = 0,
    /// Heap data page.
    Heap = 1,
    /// B+tree interior node.
    BTreeInner = 2,
    /// B+tree leaf node.
    BTreeLeaf = 3,
}

impl PageType {
    /// Decode from the header byte.
    pub fn from_u8(v: u8) -> PageType {
        match v {
            1 => PageType::Heap,
            2 => PageType::BTreeInner,
            3 => PageType::BTreeLeaf,
            _ => PageType::Free,
        }
    }
}

const OFF_TYPE: usize = 0;
const OFF_SLOT_COUNT: usize = 2;
const OFF_FREE_START: usize = 4;
const OFF_DEAD_BYTES: usize = 6;
const OFF_PAGE_ID: usize = 8;
const OFF_PARTITION: usize = 12;
const OFF_NEXT_PAGE: usize = 16;
const OFF_PAGE_LSN: usize = 20;
const OFF_CHECKSUM: usize = 28;
const OFF_EPOCH: usize = 32;

/// Offset value marking a tombstoned slot (no live data offset can be 0,
/// valid offsets are >= HEADER_SIZE).
const TOMBSTONE: u16 = 0;

/// CRC-32 (IEEE) over the page with the checksum field treated as zero.
/// Bitwise implementation: pages are checksummed once per device write,
/// not per access, so simplicity wins over table lookups here.
pub fn page_checksum(buf: &[u8]) -> u32 {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    let mut crc = 0xFFFF_FFFFu32;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    };
    feed(&buf[..OFF_CHECKSUM]);
    feed(&[0u8; 4]);
    feed(&buf[OFF_CHECKSUM + 4..]);
    !crc
}

/// Stamp the checksum and format epoch into a page buffer. Called by the
/// buffer cache just before handing the bytes to the device.
pub fn stamp_page_checksum(buf: &mut [u8]) {
    buf[OFF_EPOCH..OFF_EPOCH + 4].copy_from_slice(&FORMAT_EPOCH.to_le_bytes());
    let sum = page_checksum(buf);
    buf[OFF_CHECKSUM..OFF_CHECKSUM + 4].copy_from_slice(&sum.to_le_bytes());
}

/// Verify a page buffer read from the device. `Free` pages (type byte 0,
/// i.e. allocated-but-never-written) are exempt; everything else must
/// carry a matching checksum.
pub fn verify_page_checksum(buf: &[u8]) -> bool {
    if PageType::from_u8(buf[OFF_TYPE]) == PageType::Free {
        return true;
    }
    // A buffer too short to carry the checksum field cannot verify.
    let Some(stored) = buf
        .get(OFF_CHECKSUM..)
        .and_then(|t| t.first_chunk::<4>())
        .map(|b| u32::from_le_bytes(*b))
    else {
        return false;
    };
    stored == page_checksum(buf)
}

/// A mutable view over a page buffer with slotted-row operations.
///
/// `SlottedPage` borrows the frame buffer; it never owns memory, so the
/// buffer cache stays in charge of the bytes.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing formatted page.
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPage { buf }
    }

    /// Format a fresh page in `buf`.
    pub fn init(
        buf: &'a mut [u8],
        page_type: PageType,
        id: PageId,
        partition: PartitionId,
    ) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        buf.fill(0);
        let mut p = SlottedPage { buf };
        p.buf[OFF_TYPE] = page_type as u8;
        p.set_u16(OFF_SLOT_COUNT, 0);
        p.set_u16(OFF_FREE_START, HEADER_SIZE as u16);
        p.set_u16(OFF_DEAD_BYTES, 0);
        p.set_u32(OFF_PAGE_ID, id.0);
        p.set_u32(OFF_PARTITION, partition.0);
        p.set_u32(OFF_NEXT_PAGE, NULL_PAGE_ID.0);
        p.set_u64(OFF_PAGE_LSN, 0);
        p
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }
    fn set_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.buf[off],
            self.buf[off + 1],
            self.buf[off + 2],
            self.buf[off + 3],
        ])
    }
    fn set_u32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
    fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[off..off + 8]);
        u64::from_le_bytes(b)
    }
    fn set_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Page type from the header.
    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.buf[OFF_TYPE])
    }

    /// This page's id.
    pub fn page_id(&self) -> PageId {
        PageId(self.get_u32(OFF_PAGE_ID))
    }

    /// Owning partition.
    pub fn partition(&self) -> PartitionId {
        PartitionId(self.get_u32(OFF_PARTITION))
    }

    /// Next page in the owning chain (heap page chains, B+tree leaf links).
    pub fn next_page(&self) -> PageId {
        PageId(self.get_u32(OFF_NEXT_PAGE))
    }

    /// Set the next-page link.
    pub fn set_next_page(&mut self, next: PageId) {
        self.set_u32(OFF_NEXT_PAGE, next.0);
    }

    /// Recovery LSN of the last change applied to this page.
    pub fn page_lsn(&self) -> u64 {
        self.get_u64(OFF_PAGE_LSN)
    }

    /// Stamp the recovery LSN.
    pub fn set_page_lsn(&mut self, lsn: u64) {
        self.set_u64(OFF_PAGE_LSN, lsn);
    }

    /// Number of slots ever created on this page (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    fn slot_dir_offset(&self, slot: u16) -> usize {
        PAGE_SIZE - SLOT_ENTRY_SIZE * (slot as usize + 1)
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = self.slot_dir_offset(slot);
        (self.get_u16(off), self.get_u16(off + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, data_off: u16, len: u16) {
        let off = self.slot_dir_offset(slot);
        self.set_u16(off, data_off);
        self.set_u16(off + 2, len);
    }

    /// Bytes immediately insertable (contiguous free region, not counting
    /// holes reclaimable by compaction).
    pub fn contiguous_free(&self) -> usize {
        let free_start = self.get_u16(OFF_FREE_START) as usize;
        let dir_start = PAGE_SIZE - SLOT_ENTRY_SIZE * self.slot_count() as usize;
        dir_start.saturating_sub(free_start)
    }

    /// Total free bytes including compactable holes.
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.get_u16(OFF_DEAD_BYTES) as usize
    }

    /// Whether a payload of `len` bytes can be inserted (possibly after
    /// compaction).
    pub fn can_insert(&self, len: usize) -> bool {
        if len > MAX_ROW_SIZE {
            return false;
        }
        // Reusing a tombstoned slot needs no new dir entry.
        let dir_cost = if self.find_tombstone().is_some() {
            0
        } else {
            SLOT_ENTRY_SIZE
        };
        self.total_free() >= len + dir_cost
    }

    fn find_tombstone(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == TOMBSTONE)
    }

    /// Side-effect-free probe: would [`Self::update`] of `slot` to a
    /// `new_len`-byte payload succeed in place? Callers that must log
    /// the overwrite before mutating probe under the same write latch,
    /// append, then update — the answer cannot change in between.
    pub fn update_fits(&self, slot: SlotId, new_len: usize) -> bool {
        if slot.0 >= self.slot_count() {
            return false;
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == TOMBSTONE {
            return false;
        }
        let len = len as usize;
        new_len <= len || self.total_free() + len >= new_len
    }

    /// Insert a row payload, compacting if needed. Returns the slot, or
    /// `None` when the page cannot hold the payload.
    pub fn insert(&mut self, data: &[u8]) -> Option<SlotId> {
        if !self.can_insert(data.len()) {
            return None;
        }
        let reuse = self.find_tombstone();
        let dir_cost = if reuse.is_some() { 0 } else { SLOT_ENTRY_SIZE };
        if self.contiguous_free() < data.len() + dir_cost {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= data.len() + dir_cost);
        let data_off = self.get_u16(OFF_FREE_START);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_u16(OFF_SLOT_COUNT, s + 1);
                s
            }
        };
        let start = data_off as usize;
        self.buf[start..start + data.len()].copy_from_slice(data);
        self.set_u16(OFF_FREE_START, data_off + data.len() as u16);
        self.set_slot_entry(slot, data_off, data.len() as u16);
        Some(SlotId(slot))
    }

    /// Insert a payload at a *specific* slot (recovery redo). The slot
    /// must be tombstoned or beyond the current slot count; intermediate
    /// slots are materialized as tombstones. Returns `false` when the
    /// slot is already live (redo already applied) or space is missing.
    pub fn insert_at(&mut self, slot: SlotId, data: &[u8]) -> bool {
        if data.len() > MAX_ROW_SIZE {
            return false;
        }
        let count = self.slot_count();
        if slot.0 < count {
            if self.slot_entry(slot.0).0 != TOMBSTONE {
                return false; // already applied
            }
        } else {
            // Materialize slots count..=slot as tombstones.
            let new_count = slot.0 + 1;
            let extra_dir = SLOT_ENTRY_SIZE * (new_count - count) as usize;
            if self.contiguous_free() < extra_dir {
                self.compact();
                if self.contiguous_free() < extra_dir {
                    return false;
                }
            }
            self.set_u16(OFF_SLOT_COUNT, new_count);
            for s in count..new_count {
                self.set_slot_entry(s, TOMBSTONE, 0);
            }
        }
        if self.contiguous_free() < data.len() {
            self.compact();
            if self.contiguous_free() < data.len() {
                return false;
            }
        }
        let data_off = self.get_u16(OFF_FREE_START);
        let start = data_off as usize;
        self.buf[start..start + data.len()].copy_from_slice(data);
        self.set_u16(OFF_FREE_START, data_off + data.len() as u16);
        self.set_slot_entry(slot.0, data_off, data.len() as u16);
        true
    }

    /// Read a row payload. `None` for tombstoned or out-of-range slots.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot.0 >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Delete a row, tombstoning its slot. Returns the old payload length
    /// or `None` if the slot was not live.
    pub fn delete(&mut self, slot: SlotId) -> Option<usize> {
        if slot.0 >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == TOMBSTONE {
            return None;
        }
        self.set_slot_entry(slot.0, TOMBSTONE, 0);
        let dead = self.get_u16(OFF_DEAD_BYTES);
        self.set_u16(OFF_DEAD_BYTES, dead + len);
        Some(len as usize)
    }

    /// Update a row in place. Returns `false` when the new payload cannot
    /// fit on this page (caller relocates the row).
    pub fn update(&mut self, slot: SlotId, data: &[u8]) -> bool {
        if slot.0 >= self.slot_count() {
            return false;
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == TOMBSTONE {
            return false;
        }
        let (off, len) = (off as usize, len as usize);
        if data.len() <= len {
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot.0, off as u16, data.len() as u16);
            let dead = self.get_u16(OFF_DEAD_BYTES);
            self.set_u16(OFF_DEAD_BYTES, dead + (len - data.len()) as u16);
            return true;
        }
        // Grow: free old space, place at the end of the data region.
        if self.total_free() + len < data.len() {
            return false;
        }
        self.set_slot_entry(slot.0, TOMBSTONE, 0);
        let dead = self.get_u16(OFF_DEAD_BYTES);
        self.set_u16(OFF_DEAD_BYTES, dead + len as u16);
        if self.contiguous_free() < data.len() {
            self.compact();
        }
        let data_off = self.get_u16(OFF_FREE_START);
        let start = data_off as usize;
        self.buf[start..start + data.len()].copy_from_slice(data);
        self.set_u16(OFF_FREE_START, data_off + data.len() as u16);
        self.set_slot_entry(slot.0, data_off, data.len() as u16);
        true
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_rows(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != TOMBSTONE)
            .count()
    }

    /// Iterate live rows as `(SlotId, payload)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == TOMBSTONE {
                None
            } else {
                Some((
                    SlotId(s),
                    &self.buf[off as usize..off as usize + len as usize],
                ))
            }
        })
    }

    /// Rewrite the data region to squeeze out holes. Slot ids are
    /// preserved.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut rows: Vec<(u16, Vec<u8>)> = Vec::with_capacity(count as usize);
        for s in 0..count {
            let (off, len) = self.slot_entry(s);
            if off != TOMBSTONE {
                rows.push((
                    s,
                    self.buf[off as usize..off as usize + len as usize].to_vec(),
                ));
            }
        }
        let mut cursor = HEADER_SIZE as u16;
        for (s, data) in rows {
            let start = cursor as usize;
            self.buf[start..start + data.len()].copy_from_slice(&data);
            self.set_slot_entry(s, cursor, data.len() as u16);
            cursor += data.len() as u16;
        }
        self.set_u16(OFF_FREE_START, cursor);
        self.set_u16(OFF_DEAD_BYTES, 0);
    }
}

/// Read-only view over a formatted page (used under shared latches).
pub struct PageView<'a> {
    buf: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wrap an existing formatted page buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        PageView { buf }
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }
    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.buf[off],
            self.buf[off + 1],
            self.buf[off + 2],
            self.buf[off + 3],
        ])
    }

    /// Page type from the header.
    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.buf[OFF_TYPE])
    }

    /// This page's id.
    pub fn page_id(&self) -> PageId {
        PageId(self.get_u32(OFF_PAGE_ID))
    }

    /// Owning partition.
    pub fn partition(&self) -> PartitionId {
        PartitionId(self.get_u32(OFF_PARTITION))
    }

    /// Next page in the owning chain.
    pub fn next_page(&self) -> PageId {
        PageId(self.get_u32(OFF_NEXT_PAGE))
    }

    /// Recovery LSN stamped on the page.
    pub fn page_lsn(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[OFF_PAGE_LSN..OFF_PAGE_LSN + 8]);
        u64::from_le_bytes(b)
    }

    /// Number of slots ever created (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = PAGE_SIZE - SLOT_ENTRY_SIZE * (slot as usize + 1);
        (self.get_u16(off), self.get_u16(off + 2))
    }

    /// Read a row payload. `None` for tombstoned or out-of-range slots.
    pub fn get(&self, slot: SlotId) -> Option<&'a [u8]> {
        if slot.0 >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != TOMBSTONE)
            .count()
    }

    /// Iterate live rows as `(SlotId, payload)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (SlotId, &'a [u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == TOMBSTONE {
                None
            } else {
                Some((
                    SlotId(s),
                    &self.buf[off as usize..off as usize + len as usize],
                ))
            }
        })
    }

    /// Bytes immediately insertable in the contiguous free region.
    pub fn contiguous_free(&self) -> usize {
        let free_start = self.get_u16(OFF_FREE_START) as usize;
        let dir_start = PAGE_SIZE - SLOT_ENTRY_SIZE * self.slot_count() as usize;
        dir_start.saturating_sub(free_start)
    }

    /// Total free bytes including compactable holes.
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.get_u16(OFF_DEAD_BYTES) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn page_view_matches_mutable_page() {
        let mut buf = fresh();
        {
            let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(4), PartitionId(2));
            p.insert(b"alpha").unwrap();
            let s = p.insert(b"beta").unwrap();
            p.insert(b"gamma").unwrap();
            p.delete(s).unwrap();
            p.set_page_lsn(77);
        }
        let v = PageView::new(&buf);
        assert_eq!(v.page_type(), PageType::Heap);
        assert_eq!(v.page_id(), PageId(4));
        assert_eq!(v.partition(), PartitionId(2));
        assert_eq!(v.page_lsn(), 77);
        assert_eq!(v.live_rows(), 2);
        assert_eq!(v.get(SlotId(0)).unwrap(), b"alpha");
        assert!(v.get(SlotId(1)).is_none());
        assert_eq!(v.get(SlotId(2)).unwrap(), b"gamma");
        let rows: Vec<&[u8]> = v.iter_rows().map(|(_, d)| d).collect();
        assert_eq!(rows, vec![b"alpha".as_ref(), b"gamma".as_ref()]);
    }

    #[test]
    fn init_sets_header() {
        let mut buf = fresh();
        let p = SlottedPage::init(&mut buf, PageType::Heap, PageId(9), PartitionId(3));
        assert_eq!(p.page_type(), PageType::Heap);
        assert_eq!(p.page_id(), PageId(9));
        assert_eq!(p.partition(), PartitionId(3));
        assert_eq!(p.slot_count(), 0);
        assert!(p.next_page().is_null());
        assert_eq!(p.contiguous_free(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!!").unwrap();
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!!");
        assert_eq!(p.live_rows(), 2);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let s1 = p.insert(b"aaaa").unwrap();
        let _s2 = p.insert(b"bbbb").unwrap();
        assert_eq!(p.delete(s1), Some(4));
        assert!(p.get(s1).is_none());
        assert_eq!(p.live_rows(), 1);
        // Next insert reuses the tombstoned slot id.
        let s3 = p.insert(b"cccc").unwrap();
        assert_eq!(s3, s1);
        assert_eq!(p.get(s3).unwrap(), b"cccc");
        // Double delete returns None.
        assert_eq!(p.delete(SlotId(99)), None);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"short"));
        assert_eq!(p.get(s).unwrap(), b"short");
        assert!(p.update(s, b"a much longer payload than before"));
        assert_eq!(p.get(s).unwrap(), b"a much longer payload than before");
    }

    #[test]
    fn fills_up_and_rejects_then_compacts() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let row = vec![0xAAu8; 100];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&row) {
            slots.push(s);
        }
        assert!(!p.can_insert(100));
        let n = slots.len();
        assert!(n >= (PAGE_SIZE - HEADER_SIZE) / 104 - 1);
        // Delete every other row; space becomes holes.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        // A larger row now fits only via compaction.
        let big = vec![0xBBu8; 150];
        let s = p.insert(&big).expect("compaction makes room");
        assert_eq!(p.get(s).unwrap(), &big[..]);
    }

    #[test]
    fn oversized_row_rejected() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        assert!(p.insert(&vec![0u8; MAX_ROW_SIZE + 1]).is_none());
        assert!(p.insert(&vec![0u8; MAX_ROW_SIZE]).is_some());
    }

    #[test]
    fn iter_rows_skips_tombstones() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        let _c = p.insert(b"c").unwrap();
        p.delete(a).unwrap();
        let rows: Vec<Vec<u8>> = p.iter_rows().map(|(_, d)| d.to_vec()).collect();
        assert_eq!(rows, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn page_lsn_roundtrip() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        assert_eq!(p.page_lsn(), 0);
        p.set_page_lsn(0xDEAD_BEEF);
        assert_eq!(p.page_lsn(), 0xDEAD_BEEF);
    }

    #[test]
    fn checksum_roundtrip_and_torn_write_detection() {
        let mut buf = fresh();
        {
            let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(1), PartitionId(0));
            p.insert(b"some row data").unwrap();
        }
        stamp_page_checksum(&mut buf);
        assert!(verify_page_checksum(&buf));
        // Epoch was stamped.
        let epoch = u32::from_le_bytes(buf[OFF_EPOCH..OFF_EPOCH + 4].try_into().unwrap());
        assert_eq!(epoch, FORMAT_EPOCH);

        // A torn write (prefix of a different version) is detected.
        let mut new_buf = buf.clone();
        {
            let mut p = SlottedPage::new(&mut new_buf);
            p.insert(b"second row").unwrap();
        }
        stamp_page_checksum(&mut new_buf);
        let mut torn = buf.clone();
        torn[..512].copy_from_slice(&new_buf[..512]);
        assert!(!verify_page_checksum(&torn));

        // Any single flipped bit in the body is detected.
        let mut flipped = buf.clone();
        flipped[HEADER_SIZE + 3] ^= 0x40;
        assert!(!verify_page_checksum(&flipped));
    }

    #[test]
    fn free_pages_are_checksum_exempt() {
        let buf = fresh();
        assert!(verify_page_checksum(&buf));
    }

    #[test]
    fn compact_preserves_all_live_rows() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf, PageType::Heap, PageId(0), PartitionId(0));
        let mut expect = std::collections::HashMap::new();
        for i in 0..30u8 {
            let data = vec![i; (i as usize % 17) + 1];
            let s = p.insert(&data).unwrap();
            expect.insert(s, data);
        }
        for i in (0..30u16).step_by(3) {
            p.delete(SlotId(i)).unwrap();
            expect.remove(&SlotId(i));
        }
        p.compact();
        for (s, data) in &expect {
            assert_eq!(p.get(*s).unwrap(), &data[..]);
        }
        assert_eq!(p.live_rows(), expect.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 1..300).prop_map(Op::Insert),
            (any::<usize>()).prop_map(Op::Delete),
            (
                any::<usize>(),
                proptest::collection::vec(any::<u8>(), 1..300)
            )
                .prop_map(|(i, d)| Op::Update(i, d)),
        ]
    }

    proptest! {
        /// The page behaves exactly like a HashMap<SlotId, Vec<u8>> model
        /// under any sequence of insert/delete/update, as long as space
        /// allows.
        #[test]
        fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut buf = vec![0u8; PAGE_SIZE];
            let mut page = SlottedPage::init(
                &mut buf, PageType::Heap, PageId(0), PartitionId(0));
            let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
            let mut live: Vec<SlotId> = Vec::new();

            for op in ops {
                match op {
                    Op::Insert(data) => {
                        if let Some(s) = page.insert(&data) {
                            model.insert(s, data);
                            if !live.contains(&s) { live.push(s); }
                        } else {
                            prop_assert!(!page.can_insert(data.len()));
                        }
                    }
                    Op::Delete(i) => {
                        if live.is_empty() { continue; }
                        let s = live[i % live.len()];
                        if model.contains_key(&s) {
                            prop_assert!(page.delete(s).is_some());
                            model.remove(&s);
                        } else {
                            prop_assert!(page.delete(s).is_none());
                        }
                    }
                    Op::Update(i, data) => {
                        if live.is_empty() { continue; }
                        let s = live[i % live.len()];
                        if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(s) {
                            if page.update(s, &data) {
                                e.insert(data);
                            }
                        } else {
                            prop_assert!(!page.update(s, &data));
                        }
                    }
                }
                // Invariants hold after every step.
                prop_assert_eq!(page.live_rows(), model.len());
                for (s, d) in &model {
                    prop_assert_eq!(page.get(*s).unwrap(), &d[..]);
                }
                prop_assert!(page.total_free() <= PAGE_SIZE - HEADER_SIZE);
            }
        }
    }
}
