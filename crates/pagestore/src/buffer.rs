//! Sharded buffer cache with clock replacement, I/O outside the shard
//! latch, and latch-contention accounting.
//!
//! The cache is split into N shards, each an independently locked page
//! table plus clock state; a page's shard is fixed by a hash of its id.
//! Fetching a page pins its frame (pinned frames are never evicted);
//! the returned [`PageGuard`] unpins on drop. Replacement is the clock
//! (second-chance) algorithm over the unpinned frames of one shard.
//!
//! **No disk I/O happens under a shard lock.** A miss installs a frame
//! in `Pending` state, releases the shard, and reads from disk holding
//! only the frame's own latch; concurrent fetchers of the same page
//! wait on that frame, not the shard, so a slow read of page A never
//! blocks a hit on page B. Eviction likewise marks its victim
//! `Evicting`, drops the shard lock to write the page back, and only
//! then completes the removal — aborting if the page was re-pinned or
//! re-dirtied during the flush.
//!
//! Capacity is a single global frame budget. Each shard has a base
//! quota of `capacity / shards` frames plus a small borrow headroom;
//! a shard may exceed its quota as long as the global budget holds,
//! and eviction pressure is applied to the over-quota (home) shard
//! first, so shards drift back toward their quota. The per-shard cap
//! (quota + headroom) is a soft target, not a hard bound: concurrent
//! misses can overshoot it briefly, and pin pressure can hold a shard
//! above it — only the global budget is enforced exactly.
//!
//! Page-latch acquisition first *tries* the latch and counts a
//! contention event when it must block — this is the page-store
//! contention signal the ILM partition tuner consumes (§III, §V.D):
//! "operations on page-store which observed contention". Shard-lock
//! contention is tracked separately and does **not** feed the tuner;
//! it measures the cache's own bookkeeping overhead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use btrim_common::{BtrimError, PageId, PartitionId, Result};

use crate::disk::DiskBackend;
use crate::page::{PageType, PageView, SlottedPage, PAGE_SIZE};

/// Frame is installed but its disk read is still in flight.
const STATE_PENDING: u8 = 0;
/// Frame data is valid.
const STATE_READY: u8 = 1;
/// The disk read failed; the frame has been unmapped.
const STATE_FAILED: u8 = 2;
/// An evictor is writing the (valid) data back outside the shard lock.
const STATE_EVICTING: u8 = 3;

/// One resident page frame.
struct Frame {
    page_id: PageId,
    data: RwLock<Box<[u8]>>,
    pin: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
    state: AtomicU8,
    /// Pairs with `io_cv` so fetchers can sleep until a pending read
    /// completes; protects nothing but the wait itself.
    io: Mutex<()>,
    io_cv: Condvar,
}

impl Frame {
    fn new(page_id: PageId, data: Box<[u8]>, state: u8, dirty: bool) -> Arc<Frame> {
        Arc::new(Frame {
            page_id,
            data: RwLock::new(data),
            pin: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
            dirty: AtomicBool::new(dirty),
            state: AtomicU8::new(state),
            io: Mutex::new(()),
            io_cv: Condvar::new(),
        })
    }

    /// Block until the frame leaves `Pending`; returns the final state.
    fn wait_ready(&self) -> u8 {
        let mut g = self.io.lock();
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s != STATE_PENDING {
                return s;
            }
            self.io_cv.wait(&mut g);
        }
    }

    /// Publish a state transition and wake any waiting fetchers.
    fn set_state(&self, s: u8) {
        let _g = self.io.lock();
        self.state.store(s, Ordering::Release);
        self.io_cv.notify_all();
    }
}

/// Counters exported by the cache.
#[derive(Debug, Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
    latch_contention: AtomicU64,
    io_waits: AtomicU64,
}

/// Point-in-time snapshot of [`BufferStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStatsSnapshot {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back.
    pub flushes: u64,
    /// Page-latch acquisitions that had to block (the tuner's §V.D
    /// contention signal).
    pub latch_contention: u64,
    /// Shard-lock acquisitions that had to block, summed over shards.
    /// Cache bookkeeping overhead; not part of the tuner signal.
    pub shard_lock_contention: u64,
    /// Fetches that waited for another thread's in-flight disk read of
    /// the same page.
    pub io_waits: u64,
}

/// Per-shard occupancy and contention, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStat {
    /// Frames resident in this shard.
    pub resident: usize,
    /// Blocking acquisitions of this shard's lock.
    pub lock_contention: u64,
}

thread_local! {
    /// Latch-contention events observed by the current thread since the
    /// last [`BufferCache::take_thread_contention`] call. Lets the
    /// engine attribute contention to the partition whose operation
    /// observed it (§V.D's re-enable signal).
    static THREAD_CONTENTION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One independently locked slice of the cache.
struct Shard {
    inner: Mutex<ShardInner>,
    lock_contention: AtomicU64,
}

struct ShardInner {
    /// Resident frames in clock order; eviction uses `swap_remove`, so
    /// the order is a rotation-with-substitution rather than strict
    /// insertion order (second-chance bits still protect hot pages).
    frames: Vec<Arc<Frame>>,
    /// Page id -> index into `frames`.
    map: HashMap<PageId, usize>,
    hand: usize,
}

impl ShardInner {
    /// O(1) removal of the frame at `idx`, fixing up the moved entry's
    /// map slot and the clock hand.
    fn remove_at(&mut self, idx: usize) {
        let frame = self.frames.swap_remove(idx);
        self.map.remove(&frame.page_id);
        if idx < self.frames.len() {
            let moved = self.frames[idx].page_id;
            self.map.insert(moved, idx);
        }
        if self.hand > idx {
            self.hand -= 1;
        }
    }
}

/// Outcome of one eviction attempt on one shard.
enum EvictOutcome {
    /// A frame was removed and the global budget credited.
    Evicted,
    /// A victim was chosen but re-pinned/re-dirtied during write-back;
    /// it was restored. Progress was made (its reference state aged).
    Aborted,
    /// No evictable frame in this shard right now.
    Nothing,
}

/// The buffer cache.
pub struct BufferCache {
    backend: Arc<dyn DiskBackend>,
    capacity: usize,
    /// Frames currently charged against `capacity` (resident plus
    /// pending installs).
    resident: AtomicUsize,
    shards: Box<[Shard]>,
    /// Soft per-shard bound: base quota plus borrow headroom. "Soft"
    /// twice over: concurrent misses check it under separate lock
    /// acquisitions and may briefly overshoot in unison, and a shard
    /// whose over-cap frames are all pinned is allowed past it as long
    /// as the global budget holds. Eviction pressure targets the home
    /// shard first, pulling over-cap shards back down.
    shard_cap: usize,
    stats: BufferStats,
}

/// Bound on reserve/evict rounds before giving up; only reachable under
/// pathological contention where other threads keep stealing every
/// freed slot.
const MAX_ROOM_ROUNDS: usize = 64;

impl BufferCache {
    /// Create a cache of `capacity` frames over `backend`, with an
    /// automatically chosen shard count (1 for small caches, up to 16
    /// for large ones).
    pub fn new(backend: Arc<dyn DiskBackend>, capacity: usize) -> Self {
        Self::with_shards(backend, capacity, 0)
    }

    /// Create a cache with an explicit shard count; `shards == 0`
    /// selects automatically.
    pub fn with_shards(backend: Arc<dyn DiskBackend>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer cache needs at least one frame");
        let n = if shards == 0 {
            auto_shards(capacity)
        } else {
            shards
        };
        assert!(n <= capacity, "more shards than frames");
        let quota = capacity / n;
        let shard_cap = if n == 1 {
            capacity
        } else {
            (quota + (quota / 4).max(2)).min(capacity)
        };
        let shards = (0..n)
            .map(|_| Shard {
                inner: Mutex::new(ShardInner {
                    frames: Vec::with_capacity(quota + 1),
                    map: HashMap::with_capacity(quota + 1),
                    hand: 0,
                }),
                lock_contention: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufferCache {
            backend,
            capacity,
            resident: AtomicUsize::new(0),
            shards,
            shard_cap,
            stats: BufferStats::default(),
        }
    }

    /// The underlying device.
    pub fn backend(&self) -> &Arc<dyn DiskBackend> {
        &self.backend
    }

    /// Cache capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently resident frames (including in-flight installs).
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    /// Frames currently pinned by outstanding guards.
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = self.lock_shard(s);
                inner
                    .frames
                    .iter()
                    .filter(|f| f.pin.load(Ordering::Acquire) > 0)
                    .count()
            })
            .sum()
    }

    /// Statistics counters.
    pub fn stats(&self) -> BufferStatsSnapshot {
        let mut s = BufferStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            latch_contention: self.stats.latch_contention.load(Ordering::Relaxed),
            shard_lock_contention: 0,
            io_waits: self.stats.io_waits.load(Ordering::Relaxed),
        };
        for shard in self.shards.iter() {
            s.shard_lock_contention += shard.lock_contention.load(Ordering::Relaxed);
        }
        s
    }

    /// Per-shard occupancy and lock-contention counters.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .map(|s| ShardStat {
                resident: self.lock_shard(s).frames.len(),
                lock_contention: s.lock_contention.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Latch-contention events seen by the *calling thread* since the
    /// previous call; resets the thread-local counter. Callers bracket a
    /// page operation with this to attribute contention to the partition
    /// being operated on. Only page-latch blocking counts here — shard
    /// locks and I/O waits never feed this signal.
    pub fn take_thread_contention(&self) -> u64 {
        THREAD_CONTENTION.with(|c| c.replace(0))
    }

    fn shard_of(&self, id: PageId) -> usize {
        // Fibonacci hashing spreads sequential page ids across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Acquire a shard lock, counting a contention event if it blocks.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardInner> {
        match shard.inner.try_lock() {
            Some(g) => g,
            None => {
                shard.lock_contention.fetch_add(1, Ordering::Relaxed);
                shard.inner.lock()
            }
        }
    }

    /// Charge one frame against the global budget if it fits.
    fn try_reserve(&self) -> bool {
        self.resident
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < self.capacity).then_some(cur + 1)
            })
            .is_ok()
    }

    /// Pin an existing page into the cache, reading from disk on miss.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard<'_>> {
        let si = self.shard_of(id);
        let shard = &self.shards[si];
        loop {
            // Hit path: pin under the shard lock so eviction's pin check
            // is linearized against us, then get off the lock.
            let hit = {
                let inner = self.lock_shard(shard);
                inner.map.get(&id).map(|&idx| {
                    let f = &inner.frames[idx];
                    f.pin.fetch_add(1, Ordering::AcqRel);
                    f.referenced.store(true, Ordering::Relaxed);
                    Arc::clone(f)
                })
            };
            if let Some(frame) = hit {
                match frame.state.load(Ordering::Acquire) {
                    // `Evicting` data is still valid; our pin makes the
                    // evictor abort when it re-checks.
                    STATE_READY | STATE_EVICTING => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(PageGuard { cache: self, frame });
                    }
                    _ => {
                        // Another thread's read is in flight; wait on
                        // the frame, not the shard. The hit is counted
                        // only once the read lands, so one logical
                        // fetch counts exactly one of hit/miss (an
                        // io_wait overlays the hit; a failed read
                        // retries and counts as the retry's miss).
                        self.stats.io_waits.fetch_add(1, Ordering::Relaxed);
                        if frame.wait_ready() == STATE_FAILED {
                            frame.pin.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(PageGuard { cache: self, frame });
                    }
                }
            }

            // Miss: reserve a frame, install it Pending, then read with
            // no shard lock held.
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.make_room(si)?;
            let frame = Frame::new(
                id,
                vec![0u8; PAGE_SIZE].into_boxed_slice(),
                STATE_PENDING,
                false,
            );
            {
                let mut inner = self.lock_shard(shard);
                if inner.map.contains_key(&id) {
                    // Lost the install race; return the slot and join
                    // the winner's frame via the hit path.
                    drop(inner);
                    self.resident.fetch_sub(1, Ordering::Release);
                    continue;
                }
                let idx = inner.frames.len();
                inner.frames.push(Arc::clone(&frame));
                inner.map.insert(id, idx);
            }
            let read = {
                let mut data = frame.data.write();
                self.backend.read_page(id, &mut data)
            };
            match read {
                Ok(()) => {
                    frame.set_state(STATE_READY);
                    return Ok(PageGuard { cache: self, frame });
                }
                Err(e) => {
                    {
                        let mut inner = self.lock_shard(shard);
                        let idx = *inner.map.get(&id).expect("pending frame resident");
                        inner.remove_at(idx);
                    }
                    self.resident.fetch_sub(1, Ordering::Release);
                    frame.set_state(STATE_FAILED);
                    frame.pin.fetch_sub(1, Ordering::AcqRel);
                    return Err(e);
                }
            }
        }
    }

    /// Allocate a brand-new formatted page and pin it.
    pub fn new_page(&self, page_type: PageType, partition: PartitionId) -> Result<PageGuard<'_>> {
        let id = self.backend.allocate_page()?;
        let si = self.shard_of(id);
        self.make_room(si)?;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        SlottedPage::init(&mut data, page_type, id, partition);
        let frame = Frame::new(id, data, STATE_READY, true);
        let mut inner = self.lock_shard(&self.shards[si]);
        debug_assert!(!inner.map.contains_key(&id), "fresh page id already mapped");
        let idx = inner.frames.len();
        inner.frames.push(Arc::clone(&frame));
        inner.map.insert(id, idx);
        drop(inner);
        Ok(PageGuard { cache: self, frame })
    }

    /// Reserve one frame's worth of global budget, evicting as needed.
    /// Eviction pressure goes to the home shard first so over-quota
    /// shards shrink back toward `capacity / shards`.
    fn make_room(&self, home: usize) -> Result<()> {
        for _ in 0..MAX_ROOM_ROUNDS {
            // Per-shard overflow bound: borrowing pauses at shard_cap
            // so over-quota shards shed load before dipping into the
            // global budget again.
            let over = self.lock_shard(&self.shards[home]).frames.len() >= self.shard_cap;
            if over {
                match self.evict_one(home)? {
                    EvictOutcome::Evicted | EvictOutcome::Aborted => continue,
                    // Everything over-cap in the home shard is pinned
                    // or mid-I/O: the cap is soft under pin pressure,
                    // so fall through to the global budget rather than
                    // failing while other shards still have room.
                    EvictOutcome::Nothing => {}
                }
            }
            if self.try_reserve() {
                return Ok(());
            }
            let n = self.shards.len();
            let mut progressed = false;
            for k in 0..n {
                match self.evict_one((home + k) % n)? {
                    EvictOutcome::Evicted | EvictOutcome::Aborted => {
                        progressed = true;
                        break;
                    }
                    EvictOutcome::Nothing => {}
                }
            }
            if !progressed {
                return Err(BtrimError::BufferExhausted {
                    pinned: self.pinned_frames(),
                    capacity: self.capacity,
                });
            }
        }
        Err(BtrimError::BufferExhausted {
            pinned: self.pinned_frames(),
            capacity: self.capacity,
        })
    }

    /// Clock sweep over one shard: pick an unpinned, unreferenced,
    /// `Ready` victim, write it back *outside* the shard lock, then
    /// complete the removal — unless the page was re-pinned or
    /// re-dirtied mid-flush, in which case the eviction aborts and the
    /// frame stays resident.
    fn evict_one(&self, si: usize) -> Result<EvictOutcome> {
        let shard = &self.shards[si];
        let victim = {
            let mut inner = self.lock_shard(shard);
            let len = inner.frames.len();
            if len == 0 {
                return Ok(EvictOutcome::Nothing);
            }
            let mut found = None;
            // Two full sweeps: first clears reference bits, second evicts.
            for _ in 0..2 * len {
                let hand = inner.hand % len;
                inner.hand = hand + 1;
                let frame = &inner.frames[hand];
                if frame.state.load(Ordering::Acquire) != STATE_READY {
                    continue;
                }
                if frame.pin.load(Ordering::Acquire) > 0 {
                    continue;
                }
                if frame.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                frame.state.store(STATE_EVICTING, Ordering::Release);
                found = Some(Arc::clone(frame));
                break;
            }
            match found {
                Some(f) => f,
                None => return Ok(EvictOutcome::Nothing),
            }
        };

        // Write-back with no shard lock held: hits on other pages of
        // this shard proceed during the flush.
        if victim.dirty.swap(false, Ordering::AcqRel) {
            let wrote = {
                let data = victim.data.read();
                self.backend.write_page(victim.page_id, &data)
            };
            if let Err(e) = wrote {
                victim.dirty.store(true, Ordering::Release);
                victim.set_state(STATE_READY);
                return Err(e);
            }
            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        }

        let mut inner = self.lock_shard(shard);
        if victim.pin.load(Ordering::Acquire) > 0 || victim.dirty.load(Ordering::Acquire) {
            // Re-fetched (or re-dirtied) during the flush: keep it.
            victim.set_state(STATE_READY);
            return Ok(EvictOutcome::Aborted);
        }
        let idx = *inner
            .map
            .get(&victim.page_id)
            .expect("evicting frame is resident");
        inner.remove_at(idx);
        drop(inner);
        self.resident.fetch_sub(1, Ordering::Release);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(EvictOutcome::Evicted)
    }

    /// Write back every dirty page (checkpoint support). Pages stay
    /// resident. Flushes run without any shard lock held.
    ///
    /// Each frame is pinned under the shard lock before its dirty bit
    /// is cleared. The pin keeps eviction from racing the checkpoint
    /// write: `evict_one` skips pinned frames when choosing a victim
    /// and re-checks the pin before removal, so a frame whose
    /// checkpoint write is in flight can neither be dropped from the
    /// cache (which could resurface stale disk bytes on re-fetch) nor
    /// have an older eviction write-back land after ours.
    pub fn flush_all(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let frames: Vec<Arc<Frame>> = {
                let inner = self.lock_shard(shard);
                inner
                    .frames
                    .iter()
                    .map(|f| {
                        f.pin.fetch_add(1, Ordering::AcqRel);
                        Arc::clone(f)
                    })
                    .collect()
            };
            let mut flush_err = None;
            for frame in &frames {
                // Pending frames are never dirty; Evicting frames had
                // their dirty bit claimed by the evictor's own
                // write-back, whose removal our pin now aborts.
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let wrote = {
                        let data = frame.data.read();
                        self.backend.write_page(frame.page_id, &data)
                    };
                    if let Err(e) = wrote {
                        frame.dirty.store(true, Ordering::Release);
                        flush_err = Some(e);
                        break;
                    }
                    self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                }
            }
            for frame in &frames {
                frame.pin.fetch_sub(1, Ordering::AcqRel);
            }
            if let Some(e) = flush_err {
                return Err(e);
            }
        }
        self.backend.sync()
    }
}

/// Largest power of two ≤ capacity/32, clamped to [1, 16]; tiny caches
/// stay unsharded so replacement behaves exactly like a single clock.
fn auto_shards(capacity: usize) -> usize {
    if capacity < 64 {
        return 1;
    }
    let target = (capacity / 32).clamp(1, 16);
    1 << (usize::BITS - 1 - target.leading_zeros())
}

/// A pinned page. Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    cache: &'a BufferCache,
    frame: Arc<Frame>,
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.frame.page_id
    }

    /// Run `f` with shared (read) access to the page bytes. Counts a
    /// contention event if the latch had to block.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let guard = match self.frame.data.try_read() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.read()
            }
        };
        f(&guard)
    }

    /// Run `f` with exclusive (write) access to the page bytes and mark
    /// the page dirty. Counts a contention event if the latch blocked.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = match self.frame.data.try_write() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.write()
            }
        };
        self.frame.dirty.store(true, Ordering::Release);
        f(&mut guard)
    }

    /// Convenience: read access through a [`PageView`].
    pub fn with_page_read<R>(&self, f: impl FnOnce(&PageView<'_>) -> R) -> R {
        self.with_read(|buf| f(&PageView::new(buf)))
    }

    /// Convenience: write access through a [`SlottedPage`] view.
    pub fn with_page_write<R>(&self, f: impl FnOnce(&mut SlottedPage<'_>) -> R) -> R {
        self.with_write(|buf| {
            let mut page = SlottedPage::new(buf);
            f(&mut page)
        })
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page_id", &self.frame.page_id)
            .field("pins", &self.frame.pin.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn cache(frames: usize) -> BufferCache {
        BufferCache::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let c = cache(4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(1)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"row-one").unwrap();
            });
            g.page_id()
        };
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| {
            assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), b"row-one");
            assert_eq!(p.partition(), PartitionId(1));
        });
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn eviction_and_reload_preserves_data() {
        let c = cache(2);
        let mut ids = Vec::new();
        for i in 0..5u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 16]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert!(c.resident() <= 2);
        // Every page readable, including evicted ones.
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 16]);
            });
        }
        let s = c.stats();
        assert!(s.evictions >= 3);
        assert!(s.flushes >= 3, "dirty evictions must write back");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let c = cache(2);
        let g1 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let g2 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        // Cache full of pinned pages: another allocation must fail, and
        // the error distinguishes "pin leak" from "cache too small".
        match c.new_page(PageType::Heap, PartitionId(0)) {
            Err(BtrimError::BufferExhausted { pinned, capacity }) => {
                assert_eq!(pinned, 2);
                assert_eq!(capacity, 2);
            }
            Err(other) => panic!("expected BufferExhausted, got {other:?}"),
            Ok(_) => panic!("expected BufferExhausted, got a page"),
        }
        drop(g2);
        // Now there is an evictable frame.
        let g3 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        assert_ne!(g1.page_id(), g3.page_id());
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"durable").unwrap();
            });
            g.page_id()
        };
        c.flush_all().unwrap();
        // Bypass the cache: data must be on the device.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        let page = SlottedPage::new(&mut raw);
        assert_eq!(page.get(btrim_common::SlotId(0)).unwrap(), b"durable");
    }

    #[test]
    fn concurrent_fetches_share_one_frame() {
        let c = Arc::new(cache(8));
        let id = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let g = c.fetch(id).unwrap();
                        g.with_page_write(|p| {
                            p.insert(&[i as u8]).map(|s| p.delete(s));
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| assert_eq!(p.live_rows(), 0));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let c = cache(3);
        let _a = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let b = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let d = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        // First pressure event: sweeps clear every reference bit and
        // evict the oldest page (`a`); `b` and `d` stay with bits clear.
        let _e = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        // Re-reference `b` so it earns a second chance.
        drop(c.fetch(b).unwrap());
        // Second pressure event: `b`'s bit is set (spared), and `d`
        // (bit clear) is the victim.
        let _f = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let before = c.stats().misses;
        drop(c.fetch(b).unwrap());
        assert_eq!(c.stats().misses, before, "page `b` stayed resident");
        drop(c.fetch(d).unwrap());
        assert_eq!(c.stats().misses, before + 1, "page `d` was the victim");
    }

    #[test]
    fn auto_shard_count_scales_with_capacity() {
        assert_eq!(auto_shards(2), 1);
        assert_eq!(auto_shards(63), 1);
        assert_eq!(auto_shards(64), 2);
        assert_eq!(auto_shards(256), 8);
        assert_eq!(auto_shards(4096), 16);
        assert_eq!(cache(4096).shard_count(), 16);
        assert_eq!(cache(8).shard_count(), 1);
    }

    #[test]
    fn explicit_sharding_spreads_pages() {
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 128, 4);
        assert_eq!(c.shard_count(), 4);
        let mut ids = Vec::new();
        for _ in 0..64 {
            ids.push(
                c.new_page(PageType::Heap, PartitionId(0))
                    .unwrap()
                    .page_id(),
            );
        }
        let stats = c.shard_stats();
        assert_eq!(stats.iter().map(|s| s.resident).sum::<usize>(), 64);
        let populated = stats.iter().filter(|s| s.resident > 0).count();
        assert!(populated >= 3, "pages clustered into {populated} shards");
        // Everything still readable through the sharded map.
        for id in ids {
            drop(c.fetch(id).unwrap());
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn sharded_cache_respects_global_capacity() {
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 32, 4);
        let mut ids = Vec::new();
        for i in 0..200u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 8]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert!(c.resident() <= 32, "resident {} > capacity", c.resident());
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 8]);
            });
        }
        assert_eq!(c.pinned_frames(), 0);
    }

    #[test]
    fn pinned_shard_borrows_past_soft_cap_when_global_room_exists() {
        // 4 shards over 64 frames: quota 16, soft cap 20. Pin well past
        // one shard's cap; with global room to spare every allocation
        // must succeed instead of reporting BufferExhausted just
        // because the home shard cannot evict.
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 64, 4);
        let mut held = Vec::new();
        while held.len() < 30 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            if c.shard_of(g.page_id()) == 0 {
                held.push(g); // keep shard-0 pages pinned
            } // other shards' guards drop here and stay evictable
        }
        assert!(
            c.shard_stats()[0].resident > c.shard_cap,
            "test must actually push shard 0 past its soft cap"
        );
        assert!(c.resident() <= c.capacity());
        drop(held);
        assert_eq!(c.pinned_frames(), 0);
    }

    #[test]
    fn failed_read_propagates_and_leaves_cache_clean() {
        let c = cache(4);
        // Page id that was never allocated: the backend read fails.
        let err = c.fetch(PageId(u32::MAX)).unwrap_err();
        assert!(!matches!(err, BtrimError::BufferExhausted { .. }));
        assert_eq!(c.resident(), 0);
        assert_eq!(c.pinned_frames(), 0);
        // The cache still works afterwards.
        let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        drop(g);
        assert_eq!(c.resident(), 1);
    }
}
