//! Buffer cache with clock replacement and latch-contention accounting.
//!
//! The buffer cache holds page frames, each protected by a reader-writer
//! latch. Fetching a page pins its frame (pinned frames are never
//! evicted); the returned [`PageGuard`] unpins on drop. Replacement is
//! the clock (second-chance) algorithm over unpinned frames.
//!
//! Latch acquisition first *tries* the latch and counts a contention
//! event when it must block — this is the page-store contention signal
//! the ILM partition tuner consumes (§III, §V.D): "operations on
//! page-store which observed contention".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use btrim_common::{BtrimError, PageId, PartitionId, Result};

use crate::disk::DiskBackend;
use crate::page::{PageType, PageView, SlottedPage, PAGE_SIZE};

/// One resident page frame.
struct Frame {
    page_id: PageId,
    data: RwLock<Box<[u8]>>,
    pin: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
}

impl Frame {
    fn new(page_id: PageId, data: Box<[u8]>) -> Arc<Frame> {
        Arc::new(Frame {
            page_id,
            data: RwLock::new(data),
            pin: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
            dirty: AtomicBool::new(false),
        })
    }
}

/// Counters exported by the cache.
#[derive(Debug, Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
    latch_contention: AtomicU64,
}

/// Point-in-time snapshot of [`BufferStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStatsSnapshot {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back.
    pub flushes: u64,
    /// Latch acquisitions that had to block.
    pub latch_contention: u64,
}

impl BufferStats {
    /// Snapshot all counters.
    pub fn snapshot(&self) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            latch_contention: self.latch_contention.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    /// Latch-contention events observed by the current thread since the
    /// last [`BufferCache::take_thread_contention`] call. Lets the
    /// engine attribute contention to the partition whose operation
    /// observed it (§V.D's re-enable signal).
    static THREAD_CONTENTION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct Inner {
    map: HashMap<PageId, Arc<Frame>>,
    clock: Vec<PageId>,
    hand: usize,
}

/// The buffer cache.
pub struct BufferCache {
    backend: Arc<dyn DiskBackend>,
    capacity: usize,
    inner: Mutex<Inner>,
    stats: BufferStats,
}

impl BufferCache {
    /// Create a cache of `capacity` frames over `backend`.
    pub fn new(backend: Arc<dyn DiskBackend>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer cache needs at least one frame");
        BufferCache {
            backend,
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                clock: Vec::with_capacity(capacity),
                hand: 0,
            }),
            stats: BufferStats::default(),
        }
    }

    /// The underlying device.
    pub fn backend(&self) -> &Arc<dyn DiskBackend> {
        &self.backend
    }

    /// Cache capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident frames.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Statistics counters.
    pub fn stats(&self) -> BufferStatsSnapshot {
        self.stats.snapshot()
    }

    /// Latch-contention events seen by the *calling thread* since the
    /// previous call; resets the thread-local counter. Callers bracket a
    /// page operation with this to attribute contention to the partition
    /// being operated on.
    pub fn take_thread_contention(&self) -> u64 {
        THREAD_CONTENTION.with(|c| c.replace(0))
    }

    /// Pin an existing page into the cache, reading from disk on miss.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard<'_>> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.map.get(&id) {
            frame.pin.fetch_add(1, Ordering::AcqRel);
            frame.referenced.store(true, Ordering::Relaxed);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageGuard {
                cache: self,
                frame: Arc::clone(frame),
            });
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.make_room(&mut inner)?;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.backend.read_page(id, &mut data)?;
        let frame = Frame::new(id, data);
        inner.map.insert(id, Arc::clone(&frame));
        inner.clock.push(id);
        Ok(PageGuard { cache: self, frame })
    }

    /// Allocate a brand-new formatted page and pin it.
    pub fn new_page(&self, page_type: PageType, partition: PartitionId) -> Result<PageGuard<'_>> {
        let id = self.backend.allocate_page()?;
        let mut inner = self.inner.lock();
        self.make_room(&mut inner)?;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        SlottedPage::init(&mut data, page_type, id, partition);
        let frame = Frame::new(id, data);
        frame.dirty.store(true, Ordering::Relaxed);
        inner.map.insert(id, Arc::clone(&frame));
        inner.clock.push(id);
        Ok(PageGuard { cache: self, frame })
    }

    /// Clock sweep: evict one unpinned frame if the cache is full.
    fn make_room(&self, inner: &mut Inner) -> Result<()> {
        if inner.map.len() < self.capacity {
            return Ok(());
        }
        let n = inner.clock.len();
        // Two full sweeps: first clears reference bits, second evicts.
        for _ in 0..2 * n {
            let hand = inner.hand % inner.clock.len();
            let pid = inner.clock[hand];
            let frame = Arc::clone(inner.map.get(&pid).expect("clock entry resident"));
            if frame.pin.load(Ordering::Acquire) == 0 {
                if frame.referenced.swap(false, Ordering::Relaxed) {
                    inner.hand = hand + 1;
                    continue;
                }
                // Victim found: flush if dirty, then drop.
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let data = frame.data.read();
                    self.backend.write_page(pid, &data)?;
                    self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                }
                inner.map.remove(&pid);
                inner.clock.remove(hand);
                inner.hand = hand;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            inner.hand = hand + 1;
        }
        Err(BtrimError::BufferExhausted)
    }

    /// Write back every dirty page (checkpoint support). Pages stay
    /// resident.
    pub fn flush_all(&self) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            inner.map.values().cloned().collect()
        };
        for frame in frames {
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let data = frame.data.read();
                self.backend.write_page(frame.page_id, &data)?;
                self.stats.flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.backend.sync()
    }
}

/// A pinned page. Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    cache: &'a BufferCache,
    frame: Arc<Frame>,
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.frame.page_id
    }

    /// Run `f` with shared (read) access to the page bytes. Counts a
    /// contention event if the latch had to block.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let guard = match self.frame.data.try_read() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.read()
            }
        };
        f(&guard)
    }

    /// Run `f` with exclusive (write) access to the page bytes and mark
    /// the page dirty. Counts a contention event if the latch blocked.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = match self.frame.data.try_write() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.write()
            }
        };
        self.frame.dirty.store(true, Ordering::Release);
        f(&mut guard)
    }

    /// Convenience: read access through a [`PageView`].
    pub fn with_page_read<R>(&self, f: impl FnOnce(&PageView<'_>) -> R) -> R {
        self.with_read(|buf| f(&PageView::new(buf)))
    }

    /// Convenience: write access through a [`SlottedPage`] view.
    pub fn with_page_write<R>(&self, f: impl FnOnce(&mut SlottedPage<'_>) -> R) -> R {
        self.with_write(|buf| {
            let mut page = SlottedPage::new(buf);
            f(&mut page)
        })
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn cache(frames: usize) -> BufferCache {
        BufferCache::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let c = cache(4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(1)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"row-one").unwrap();
            });
            g.page_id()
        };
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| {
            assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), b"row-one");
            assert_eq!(p.partition(), PartitionId(1));
        });
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn eviction_and_reload_preserves_data() {
        let c = cache(2);
        let mut ids = Vec::new();
        for i in 0..5u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 16]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert!(c.resident() <= 2);
        // Every page readable, including evicted ones.
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 16]);
            });
        }
        let s = c.stats();
        assert!(s.evictions >= 3);
        assert!(s.flushes >= 3, "dirty evictions must write back");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let c = cache(2);
        let g1 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let g2 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        // Cache full of pinned pages: another allocation must fail.
        assert!(matches!(
            c.new_page(PageType::Heap, PartitionId(0)),
            Err(BtrimError::BufferExhausted)
        ));
        drop(g2);
        // Now there is an evictable frame.
        let g3 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        assert_ne!(g1.page_id(), g3.page_id());
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"durable").unwrap();
            });
            g.page_id()
        };
        c.flush_all().unwrap();
        // Bypass the cache: data must be on the device.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        let page = SlottedPage::new(&mut raw);
        assert_eq!(page.get(btrim_common::SlotId(0)).unwrap(), b"durable");
    }

    #[test]
    fn concurrent_fetches_share_one_frame() {
        let c = Arc::new(cache(8));
        let id = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let g = c.fetch(id).unwrap();
                        g.with_page_write(|p| {
                            p.insert(&[i as u8]).map(|s| p.delete(s));
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| assert_eq!(p.live_rows(), 0));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let c = cache(3);
        let _a = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        let b = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        let d = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        // First pressure event: sweeps clear every reference bit and
        // evict the oldest page (`a`); `b` and `d` stay with bits clear.
        let _e = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        // Re-reference `b` so it earns a second chance.
        drop(c.fetch(b).unwrap());
        // Second pressure event: the hand passes `b` (bit set → spared),
        // and evicts `d` (bit clear).
        let _f = c.new_page(PageType::Heap, PartitionId(0)).unwrap().page_id();
        let before = c.stats().misses;
        drop(c.fetch(b).unwrap());
        assert_eq!(c.stats().misses, before, "page `b` stayed resident");
        drop(c.fetch(d).unwrap());
        assert_eq!(c.stats().misses, before + 1, "page `d` was the victim");
    }
}
