//! Sharded buffer cache with clock replacement, I/O outside the shard
//! latch, and latch-contention accounting.
//!
//! The cache is split into N shards, each an independently locked page
//! table plus clock state; a page's shard is fixed by a hash of its id.
//! Fetching a page pins its frame (pinned frames are never evicted);
//! the returned [`PageGuard`] unpins on drop. Replacement is the clock
//! (second-chance) algorithm over the unpinned frames of one shard.
//!
//! **No disk I/O happens under a shard lock.** A miss installs a frame
//! in `Pending` state, releases the shard, and reads from disk holding
//! only the frame's own latch; concurrent fetchers of the same page
//! wait on that frame, not the shard, so a slow read of page A never
//! blocks a hit on page B. Eviction likewise marks its victim
//! `Evicting`, drops the shard lock to write the page back, and only
//! then completes the removal — aborting if the page was re-pinned or
//! re-dirtied during the flush.
//!
//! Capacity is a single global frame budget. Each shard has a base
//! quota of `capacity / shards` frames plus a small borrow headroom;
//! a shard may exceed its quota as long as the global budget holds,
//! and eviction pressure is applied to the over-quota (home) shard
//! first, so shards drift back toward their quota. The per-shard cap
//! (quota + headroom) is a soft target, not a hard bound: concurrent
//! misses can overshoot it briefly, and pin pressure can hold a shard
//! above it — only the global budget is enforced exactly.
//!
//! Page-latch acquisition first *tries* the latch and counts a
//! contention event when it must block — this is the page-store
//! contention signal the ILM partition tuner consumes (§III, §V.D):
//! "operations on page-store which observed contention". Shard-lock
//! contention is tracked separately and does **not** feed the tuner;
//! it measures the cache's own bookkeeping overhead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use btrim_common::{BtrimError, PageId, PartitionId, Result};

use crate::disk::DiskBackend;
use crate::page::{
    stamp_page_checksum, verify_page_checksum, PageType, PageView, SlottedPage, PAGE_SIZE,
};

/// Frame is installed but its disk read is still in flight.
const STATE_PENDING: u8 = 0;
/// Frame data is valid.
const STATE_READY: u8 = 1;
/// The disk read failed; the frame has been unmapped.
const STATE_FAILED: u8 = 2;
/// An evictor is writing the (valid) data back outside the shard lock.
const STATE_EVICTING: u8 = 3;

/// One resident page frame.
struct Frame {
    page_id: PageId,
    data: RwLock<Box<[u8]>>,
    pin: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
    state: AtomicU8,
    /// Pairs with `io_cv` so fetchers can sleep until a pending read
    /// completes; protects nothing but the wait itself.
    io: Mutex<()>,
    io_cv: Condvar,
}

impl Frame {
    fn new(page_id: PageId, data: Box<[u8]>, state: u8, dirty: bool) -> Arc<Frame> {
        Arc::new(Frame {
            page_id,
            data: RwLock::with_rank(parking_lot::lock_rank::FRAME, data),
            pin: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
            dirty: AtomicBool::new(dirty),
            state: AtomicU8::new(state),
            io: Mutex::with_rank(parking_lot::lock_rank::FRAME, ()),
            io_cv: Condvar::new(),
        })
    }

    /// Block until the frame leaves `Pending`; returns the final state.
    fn wait_ready(&self) -> u8 {
        let mut g = self.io.lock();
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s != STATE_PENDING {
                return s;
            }
            self.io_cv.wait(&mut g);
        }
    }

    /// Publish a state transition and wake any waiting fetchers.
    fn set_state(&self, s: u8) {
        let _g = self.io.lock();
        self.state.store(s, Ordering::Release);
        self.io_cv.notify_all();
    }
}

/// Counters exported by the cache.
#[derive(Debug, Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
    latch_contention: AtomicU64,
    io_waits: AtomicU64,
    io_errors: AtomicU64,
    io_retries: AtomicU64,
    checksum_failures: AtomicU64,
    capacity_shifts: AtomicU64,
}

/// Point-in-time snapshot of [`BufferStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStatsSnapshot {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back.
    pub flushes: u64,
    /// Page-latch acquisitions that had to block (the tuner's §V.D
    /// contention signal).
    pub latch_contention: u64,
    /// Shard-lock acquisitions that had to block, summed over shards.
    /// Cache bookkeeping overhead; not part of the tuner signal.
    pub shard_lock_contention: u64,
    /// Fetches that waited for another thread's in-flight disk read of
    /// the same page.
    pub io_waits: u64,
    /// Device read/write calls that returned an error (before retry
    /// accounting: every failed attempt counts).
    pub io_errors: u64,
    /// Failed device calls that were retried (transient-error policy).
    pub io_retries: u64,
    /// Pages whose checksum did not match on fetch (torn write or
    /// corruption); such pages are never served as valid data.
    pub checksum_failures: u64,
    /// Current global frame budget (the arbiter moves this at runtime).
    pub capacity: u64,
    /// Frames resident beyond the budget after a shrink — pins holding
    /// reclamation back; drains to zero as they release.
    pub shrink_debt: u64,
    /// `set_capacity` calls served (arbiter shifts plus manual resizes).
    pub capacity_shifts: u64,
}

/// Per-shard occupancy and contention, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStat {
    /// Frames resident in this shard.
    pub resident: usize,
    /// Blocking acquisitions of this shard's lock.
    pub lock_contention: u64,
}

thread_local! {
    /// Latch-contention events observed by the current thread since the
    /// last [`BufferCache::take_thread_contention`] call. Lets the
    /// engine attribute contention to the partition whose operation
    /// observed it (§V.D's re-enable signal).
    static THREAD_CONTENTION: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One independently locked slice of the cache.
struct Shard {
    inner: Mutex<ShardInner>,
    lock_contention: AtomicU64,
}

struct ShardInner {
    /// Resident frames in clock order; eviction uses `swap_remove`, so
    /// the order is a rotation-with-substitution rather than strict
    /// insertion order (second-chance bits still protect hot pages).
    frames: Vec<Arc<Frame>>,
    /// Page id -> index into `frames`.
    map: HashMap<PageId, usize>,
    hand: usize,
}

impl ShardInner {
    /// O(1) removal of the frame at `idx`, fixing up the moved entry's
    /// map slot and the clock hand.
    fn remove_at(&mut self, idx: usize) {
        let frame = self.frames.swap_remove(idx);
        self.map.remove(&frame.page_id);
        if idx < self.frames.len() {
            let moved = self.frames[idx].page_id;
            self.map.insert(moved, idx);
        }
        if self.hand > idx {
            self.hand -= 1;
        }
    }
}

/// Outcome of one eviction attempt on one shard.
enum EvictOutcome {
    /// A frame was removed and the global budget credited.
    Evicted,
    /// A victim was chosen but re-pinned/re-dirtied during write-back;
    /// it was restored. Progress was made (its reference state aged).
    Aborted,
    /// No evictable frame in this shard right now.
    Nothing,
}

/// The buffer cache.
pub struct BufferCache {
    backend: Arc<dyn DiskBackend>,
    /// Global frame budget. Atomic so the memory arbiter can retarget
    /// it at runtime: growing takes effect on the next reserve; a
    /// shrink leaves `resident` above `capacity` (the *shrink debt*)
    /// and is drained lazily by eviction — pinned frames are never
    /// failed, they simply hold their part of the debt until unpinned.
    capacity: AtomicUsize,
    /// Frames currently charged against `capacity` (resident plus
    /// pending installs).
    resident: AtomicUsize,
    shards: Box<[Shard]>,
    /// Soft per-shard bound: base quota plus borrow headroom. "Soft"
    /// twice over: concurrent misses check it under separate lock
    /// acquisitions and may briefly overshoot in unison, and a shard
    /// whose over-cap frames are all pinned is allowed past it as long
    /// as the global budget holds. Eviction pressure targets the home
    /// shard first, pulling over-cap shards back down. Recomputed by
    /// [`BufferCache::set_capacity`], hence atomic.
    shard_cap: AtomicUsize,
    stats: BufferStats,
    /// Bounded retry policy for transient device errors: total attempts
    /// per logical read/write, and the base backoff between attempts
    /// (scaled linearly by attempt number).
    retry_attempts: u32,
    retry_backoff: std::time::Duration,
    verify_writes: bool,
    /// Optional latency histogram (nanoseconds) for the miss path:
    /// room-making + device read + frame install. The hit path is
    /// never timed — misses are where the latency story lives, and the
    /// hot hit path must stay untouched.
    miss_hist: Option<Arc<btrim_common::LatencyHistogram>>,
}

/// Default attempts per device call (1 initial + 2 retries).
const DEFAULT_IO_RETRY_ATTEMPTS: u32 = 3;
/// Default base backoff between retries.
const DEFAULT_IO_RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_micros(200);

/// Whether an error is worth retrying. Only raw device I/O failures
/// are considered transient; typed errors (missing page, short buffer,
/// checksum mismatch) are deterministic and retrying cannot help.
fn is_transient(e: &BtrimError) -> bool {
    matches!(e, BtrimError::Io(_))
}

/// Bound on reserve/evict rounds before giving up; only reachable under
/// pathological contention where other threads keep stealing every
/// freed slot.
const MAX_ROOM_ROUNDS: usize = 64;

impl BufferCache {
    /// Create a cache of `capacity` frames over `backend`, with an
    /// automatically chosen shard count (1 for small caches, up to 16
    /// for large ones).
    pub fn new(backend: Arc<dyn DiskBackend>, capacity: usize) -> Self {
        Self::with_shards(backend, capacity, 0)
    }

    /// Create a cache with an explicit shard count; `shards == 0`
    /// selects automatically.
    pub fn with_shards(backend: Arc<dyn DiskBackend>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer cache needs at least one frame");
        let n = if shards == 0 {
            auto_shards(capacity)
        } else {
            shards
        };
        assert!(n <= capacity, "more shards than frames");
        let quota = capacity / n;
        let shard_cap = soft_shard_cap(capacity, n);
        let shards = (0..n)
            .map(|_| Shard {
                inner: Mutex::with_rank(
                    parking_lot::lock_rank::BUFFER_SHARD,
                    ShardInner {
                        frames: Vec::with_capacity(quota + 1),
                        map: HashMap::with_capacity(quota + 1),
                        hand: 0,
                    },
                ),
                lock_contention: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufferCache {
            backend,
            capacity: AtomicUsize::new(capacity),
            resident: AtomicUsize::new(0),
            shards,
            shard_cap: AtomicUsize::new(shard_cap),
            stats: BufferStats::default(),
            retry_attempts: DEFAULT_IO_RETRY_ATTEMPTS,
            retry_backoff: DEFAULT_IO_RETRY_BACKOFF,
            verify_writes: false,
            miss_hist: None,
        }
    }

    /// Attach a miss-fetch latency histogram (builder style). Records
    /// nanoseconds per successful miss resolution; the hit path is
    /// unaffected.
    pub fn with_miss_histogram(
        mut self,
        hist: Option<Arc<btrim_common::LatencyHistogram>>,
    ) -> Self {
        self.miss_hist = hist;
        self
    }

    /// Override the transient-error retry policy (builder style).
    /// `attempts` is the total number of device calls per logical
    /// operation; 1 disables retries entirely.
    pub fn with_io_retry(mut self, attempts: u32, backoff: std::time::Duration) -> Self {
        self.retry_attempts = attempts.max(1);
        self.retry_backoff = backoff;
        self
    }

    /// Enable read-back verification of page write-backs (builder
    /// style). After a successful device write the page is read back
    /// and compared byte-for-byte; a mismatch — a torn or otherwise
    /// lying write the device acknowledged — is treated as a transient
    /// error and retried. Detecting the tear *here*, while the redo log
    /// still covers the page, is what keeps a later checkpoint from
    /// truncating the only evidence that could repair it.
    pub fn with_write_verification(mut self, on: bool) -> Self {
        self.verify_writes = on;
        self
    }

    /// Read a page with bounded retry on transient device errors.
    fn read_with_retry(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut attempt = 1u32;
        loop {
            match self.backend.read_page(id, buf) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    if !is_transient(&e) || attempt >= self.retry_attempts {
                        return Err(e);
                    }
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.retry_backoff * attempt);
                    attempt += 1;
                }
            }
        }
    }

    /// Write a page with bounded retry on transient device errors.
    /// Callers hold the frame's *read* latch across this call: that
    /// write-orders flushes against page writers (an older in-flight
    /// flush can never overwrite a newer image on the device), while
    /// concurrent readers stay unblocked. The checksum and format epoch
    /// are stamped on a private copy so readers of the frame never see
    /// the checksum field mutate under them.
    fn write_with_retry(&self, id: PageId, data: &[u8]) -> Result<()> {
        let mut tmp = data.to_vec();
        stamp_page_checksum(&mut tmp);
        let mut attempt = 1u32;
        loop {
            let wrote = self.backend.write_page(id, &tmp).and_then(|()| {
                if !self.verify_writes {
                    return Ok(());
                }
                let mut check = vec![0u8; tmp.len()];
                self.backend.read_page(id, &mut check)?;
                if check != tmp {
                    return Err(BtrimError::Io(std::io::Error::other(format!(
                        "write verification failed for page {}: device image \
                         differs from the acknowledged write (torn write?)",
                        id.0
                    ))));
                }
                Ok(())
            });
            match wrote {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    if !is_transient(&e) || attempt >= self.retry_attempts {
                        return Err(e);
                    }
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.retry_backoff * attempt);
                    attempt += 1;
                }
            }
        }
    }

    /// The underlying device.
    pub fn backend(&self) -> &Arc<dyn DiskBackend> {
        &self.backend
    }

    /// Cache capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Retarget the global frame budget (the memory arbiter's knob).
    ///
    /// Growing takes effect immediately: the next reserve sees the
    /// larger budget. Shrinking never fails a pinned frame: the new
    /// (lower) capacity is published first, a best-effort eviction
    /// sweep drains what it can right away, and whatever remains —
    /// frames that are pinned, referenced, or mid-I/O — stays resident
    /// as *shrink debt* ([`BufferCache::shrink_debt`]) that ordinary
    /// eviction pressure pays down as pins are released. Write-back
    /// errors during the sweep leave the victim resident (counted in
    /// `io_errors`) rather than failing the capacity change.
    ///
    /// Returns the shrink debt remaining after the sweep (0 on grow).
    pub fn set_capacity(&self, frames: usize) -> usize {
        let frames = frames.max(1);
        let n = self.shards.len();
        self.capacity.store(frames, Ordering::Release);
        self.shard_cap
            .store(soft_shard_cap(frames, n), Ordering::Release);
        self.stats.capacity_shifts.fetch_add(1, Ordering::Relaxed);
        self.drain_shrink_debt();
        self.shrink_debt()
    }

    /// Frames resident beyond the current capacity — the unpaid part of
    /// a shrink. Zero except after [`BufferCache::set_capacity`]
    /// lowered the budget below what pins and in-flight I/O allow
    /// eviction to reclaim immediately.
    pub fn shrink_debt(&self) -> usize {
        self.resident
            .load(Ordering::Acquire)
            .saturating_sub(self.capacity.load(Ordering::Acquire))
    }

    /// Best-effort eviction sweep until `resident <= capacity` or no
    /// shard can make progress (everything left is pinned, referenced,
    /// or mid-I/O). Never blocks on pins; write-back failures skip the
    /// victim. Bounded so a frame that keeps getting re-pinned
    /// mid-flush cannot spin this loop forever.
    fn drain_shrink_debt(&self) {
        let n = self.shards.len();
        let mut rounds = 2 * self.resident.load(Ordering::Acquire) + 2 * n;
        let mut start = 0usize;
        while rounds > 0 && self.shrink_debt() > 0 {
            let mut progressed = false;
            for k in 0..n {
                rounds = rounds.saturating_sub(1);
                match self.evict_one((start + k) % n) {
                    Ok(EvictOutcome::Evicted | EvictOutcome::Aborted) => {
                        start = (start + k + 1) % n;
                        progressed = true;
                        break;
                    }
                    // Write-back failure: the victim stays resident and
                    // the error is already counted; keep sweeping other
                    // shards.
                    Ok(EvictOutcome::Nothing) | Err(_) => {}
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently resident frames (including in-flight installs).
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    /// Frames currently pinned by outstanding guards.
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = self.lock_shard(s);
                inner
                    .frames
                    .iter()
                    .filter(|f| f.pin.load(Ordering::Acquire) > 0)
                    .count()
            })
            .sum()
    }

    /// Statistics counters.
    pub fn stats(&self) -> BufferStatsSnapshot {
        let mut s = BufferStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            latch_contention: self.stats.latch_contention.load(Ordering::Relaxed),
            shard_lock_contention: 0,
            io_waits: self.stats.io_waits.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            io_retries: self.stats.io_retries.load(Ordering::Relaxed),
            checksum_failures: self.stats.checksum_failures.load(Ordering::Relaxed),
            capacity: self.capacity() as u64,
            shrink_debt: self.shrink_debt() as u64,
            capacity_shifts: self.stats.capacity_shifts.load(Ordering::Relaxed),
        };
        for shard in self.shards.iter() {
            s.shard_lock_contention += shard.lock_contention.load(Ordering::Relaxed);
        }
        s
    }

    /// Per-shard occupancy and lock-contention counters.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .map(|s| ShardStat {
                resident: self.lock_shard(s).frames.len(),
                lock_contention: s.lock_contention.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Latch-contention events seen by the *calling thread* since the
    /// previous call; resets the thread-local counter. Callers bracket a
    /// page operation with this to attribute contention to the partition
    /// being operated on. Only page-latch blocking counts here — shard
    /// locks and I/O waits never feed this signal.
    pub fn take_thread_contention(&self) -> u64 {
        THREAD_CONTENTION.with(|c| c.replace(0))
    }

    fn shard_of(&self, id: PageId) -> usize {
        // Fibonacci hashing spreads sequential page ids across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Acquire a shard lock, counting a contention event if it blocks.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardInner> {
        match shard.inner.try_lock() {
            Some(g) => g,
            None => {
                shard.lock_contention.fetch_add(1, Ordering::Relaxed);
                shard.inner.lock()
            }
        }
    }

    /// Charge one frame against the global budget if it fits.
    fn try_reserve(&self) -> bool {
        let cap = self.capacity.load(Ordering::Acquire);
        self.resident
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < cap).then_some(cur + 1)
            })
            .is_ok()
    }

    /// Pin an existing page into the cache, reading from disk on miss.
    /// Pages read from the device are checksum-verified; a mismatch is
    /// reported as [`BtrimError::ChecksumMismatch`] and the bytes are
    /// never served.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard<'_>> {
        self.fetch_inner(id, true)
    }

    /// Pin a page *without* checksum verification. Recovery-only: the
    /// caller takes responsibility for verifying (or reformatting) the
    /// bytes before anything else can fetch them.
    pub fn fetch_unchecked(&self, id: PageId) -> Result<PageGuard<'_>> {
        self.fetch_inner(id, false)
    }

    fn fetch_inner(&self, id: PageId, verify: bool) -> Result<PageGuard<'_>> {
        let si = self.shard_of(id);
        let shard = &self.shards[si];
        loop {
            // Hit path: pin under the shard lock so eviction's pin check
            // is linearized against us, then get off the lock.
            let hit = {
                let inner = self.lock_shard(shard);
                inner.map.get(&id).map(|&idx| {
                    let f = &inner.frames[idx];
                    f.pin.fetch_add(1, Ordering::AcqRel);
                    f.referenced.store(true, Ordering::Relaxed);
                    Arc::clone(f)
                })
            };
            if let Some(frame) = hit {
                match frame.state.load(Ordering::Acquire) {
                    // `Evicting` data is still valid; our pin makes the
                    // evictor abort when it re-checks.
                    STATE_READY | STATE_EVICTING => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(PageGuard { cache: self, frame });
                    }
                    _ => {
                        // Another thread's read is in flight; wait on
                        // the frame, not the shard. The hit is counted
                        // only once the read lands, so one logical
                        // fetch counts exactly one of hit/miss (an
                        // io_wait overlays the hit; a failed read
                        // retries and counts as the retry's miss).
                        self.stats.io_waits.fetch_add(1, Ordering::Relaxed);
                        if frame.wait_ready() == STATE_FAILED {
                            frame.pin.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(PageGuard { cache: self, frame });
                    }
                }
            }

            // Miss: reserve a frame, install it Pending, then read with
            // no shard lock held.
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let miss_start = self.miss_hist.as_ref().map(|_| std::time::Instant::now());
            self.make_room(si)?;
            let frame = Frame::new(
                id,
                vec![0u8; PAGE_SIZE].into_boxed_slice(),
                STATE_PENDING,
                false,
            );
            {
                let mut inner = self.lock_shard(shard);
                if inner.map.contains_key(&id) {
                    // Lost the install race; return the slot and join
                    // the winner's frame via the hit path.
                    drop(inner);
                    // lint: allow(atomics-ordering) -- pure decrement: it
                    // releases the freed slot, and the admitting CAS in
                    // make_room acquires; the decrementer reads nothing.
                    self.resident.fetch_sub(1, Ordering::Release);
                    continue;
                }
                let idx = inner.frames.len();
                inner.frames.push(Arc::clone(&frame));
                inner.map.insert(id, idx);
            }
            let read = {
                let mut data = frame.data.write();
                self.read_with_retry(id, &mut data).and_then(|()| {
                    if verify && !verify_page_checksum(&data) {
                        self.stats.checksum_failures.fetch_add(1, Ordering::Relaxed);
                        Err(BtrimError::ChecksumMismatch(id))
                    } else {
                        Ok(())
                    }
                })
            };
            match read {
                Ok(()) => {
                    frame.set_state(STATE_READY);
                    if let (Some(h), Some(t)) = (&self.miss_hist, miss_start) {
                        h.record(t.elapsed().as_nanos() as u64);
                    }
                    return Ok(PageGuard { cache: self, frame });
                }
                Err(e) => {
                    {
                        let mut inner = self.lock_shard(shard);
                        // The pending frame was installed above and only
                        // this thread may remove it; missing means the
                        // shard map is corrupt, so keep the frame and
                        // surface the read error.
                        if let Some(&idx) = inner.map.get(&id) {
                            inner.remove_at(idx);
                        }
                    }
                    // lint: allow(atomics-ordering) -- pure decrement (see
                    // the install-race comment above).
                    self.resident.fetch_sub(1, Ordering::Release);
                    frame.set_state(STATE_FAILED);
                    frame.pin.fetch_sub(1, Ordering::AcqRel);
                    return Err(e);
                }
            }
        }
    }

    /// Allocate a brand-new formatted page and pin it.
    pub fn new_page(&self, page_type: PageType, partition: PartitionId) -> Result<PageGuard<'_>> {
        let id = self.backend.allocate_page()?;
        let si = self.shard_of(id);
        self.make_room(si)?;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        SlottedPage::init(&mut data, page_type, id, partition);
        let frame = Frame::new(id, data, STATE_READY, true);
        let mut inner = self.lock_shard(&self.shards[si]);
        debug_assert!(!inner.map.contains_key(&id), "fresh page id already mapped");
        let idx = inner.frames.len();
        inner.frames.push(Arc::clone(&frame));
        inner.map.insert(id, idx);
        drop(inner);
        Ok(PageGuard { cache: self, frame })
    }

    /// Reserve one frame's worth of global budget, evicting as needed.
    /// Eviction pressure goes to the home shard first so over-quota
    /// shards shrink back toward `capacity / shards`.
    fn make_room(&self, home: usize) -> Result<()> {
        // An eviction write-back that fails (the victim is re-marked
        // dirty and stays resident) is not fatal by itself: another
        // shard may still hold an evictable clean frame. The error is
        // remembered and surfaced only if no progress is possible at
        // all — that way one bad write never turns a healthy cache
        // with free room into a fetch failure.
        let mut last_io_err: Option<BtrimError> = None;
        for _ in 0..MAX_ROOM_ROUNDS {
            // Per-shard overflow bound: borrowing pauses at shard_cap
            // so over-quota shards shed load before dipping into the
            // global budget again.
            let over = self.lock_shard(&self.shards[home]).frames.len()
                >= self.shard_cap.load(Ordering::Acquire);
            if over {
                match self.evict_one(home) {
                    Ok(EvictOutcome::Evicted | EvictOutcome::Aborted) => continue,
                    // Everything over-cap in the home shard is pinned
                    // or mid-I/O: the cap is soft under pin pressure,
                    // so fall through to the global budget rather than
                    // failing while other shards still have room.
                    Ok(EvictOutcome::Nothing) => {}
                    Err(e) => last_io_err = Some(e),
                }
            }
            if self.try_reserve() {
                return Ok(());
            }
            let n = self.shards.len();
            let mut progressed = false;
            for k in 0..n {
                match self.evict_one((home + k) % n) {
                    Ok(EvictOutcome::Evicted | EvictOutcome::Aborted) => {
                        progressed = true;
                        break;
                    }
                    Ok(EvictOutcome::Nothing) => {}
                    Err(e) => last_io_err = Some(e),
                }
            }
            if !progressed {
                return Err(match last_io_err {
                    Some(e) => e,
                    None => BtrimError::BufferExhausted {
                        pinned: self.pinned_frames(),
                        capacity: self.capacity.load(Ordering::Acquire),
                    },
                });
            }
        }
        Err(match last_io_err {
            Some(e) => e,
            None => BtrimError::BufferExhausted {
                pinned: self.pinned_frames(),
                capacity: self.capacity.load(Ordering::Acquire),
            },
        })
    }

    /// Clock sweep over one shard: pick an unpinned, unreferenced,
    /// `Ready` victim, write it back *outside* the shard lock, then
    /// complete the removal — unless the page was re-pinned or
    /// re-dirtied mid-flush, in which case the eviction aborts and the
    /// frame stays resident.
    fn evict_one(&self, si: usize) -> Result<EvictOutcome> {
        let shard = &self.shards[si];
        let victim = {
            let mut inner = self.lock_shard(shard);
            let len = inner.frames.len();
            if len == 0 {
                return Ok(EvictOutcome::Nothing);
            }
            let mut found = None;
            // Two full sweeps: first clears reference bits, second evicts.
            for _ in 0..2 * len {
                let hand = inner.hand % len;
                inner.hand = hand + 1;
                let frame = &inner.frames[hand];
                if frame.state.load(Ordering::Acquire) != STATE_READY {
                    continue;
                }
                if frame.pin.load(Ordering::Acquire) > 0 {
                    continue;
                }
                if frame.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                frame.state.store(STATE_EVICTING, Ordering::Release);
                found = Some(Arc::clone(frame));
                break;
            }
            match found {
                Some(f) => f,
                None => return Ok(EvictOutcome::Nothing),
            }
        };

        // Write-back with no shard lock held: hits on other pages of
        // this shard proceed during the flush. On failure (after the
        // bounded retries) the frame is re-marked dirty and stays
        // resident — the cache never drops the only copy of a page.
        if victim.dirty.swap(false, Ordering::AcqRel) {
            let wrote = {
                let data = victim.data.read();
                self.write_with_retry(victim.page_id, &data)
            };
            if let Err(e) = wrote {
                victim.dirty.store(true, Ordering::Release);
                victim.set_state(STATE_READY);
                return Err(e);
            }
            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        }

        let mut inner = self.lock_shard(shard);
        if victim.pin.load(Ordering::Acquire) > 0 || victim.dirty.load(Ordering::Acquire) {
            // Re-fetched (or re-dirtied) during the flush: keep it.
            victim.set_state(STATE_READY);
            return Ok(EvictOutcome::Aborted);
        }
        // The victim was chosen from this shard's map under the same
        // lock discipline; it cannot have been removed while STATE_IO
        // was published. Treat a miss as map corruption.
        let idx = *inner.map.get(&victim.page_id).ok_or_else(|| {
            BtrimError::Corrupt("evicting frame not resident in its shard map".into())
        })?;
        inner.remove_at(idx);
        drop(inner);
        // lint: allow(atomics-ordering) -- pure decrement: releases the
        // evicted slot to the admitting CAS; reads nothing back.
        self.resident.fetch_sub(1, Ordering::Release);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(EvictOutcome::Evicted)
    }

    /// Write back every dirty page (checkpoint support). Pages stay
    /// resident. Flushes run without any shard lock held.
    ///
    /// Each frame is pinned under the shard lock before its dirty bit
    /// is cleared. The pin keeps eviction from racing the checkpoint
    /// write: `evict_one` skips pinned frames when choosing a victim
    /// and re-checks the pin before removal, so a frame whose
    /// checkpoint write is in flight can neither be dropped from the
    /// cache (which could resurface stale disk bytes on re-fetch) nor
    /// have an older eviction write-back land after ours.
    pub fn flush_all(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let frames: Vec<Arc<Frame>> = {
                let inner = self.lock_shard(shard);
                inner
                    .frames
                    .iter()
                    .map(|f| {
                        f.pin.fetch_add(1, Ordering::AcqRel);
                        Arc::clone(f)
                    })
                    .collect()
            };
            let mut flush_err = None;
            for frame in &frames {
                // Pending frames are never dirty; Evicting frames had
                // their dirty bit claimed by the evictor's own
                // write-back, whose removal our pin now aborts.
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let wrote = {
                        let data = frame.data.read();
                        self.write_with_retry(frame.page_id, &data)
                    };
                    if let Err(e) = wrote {
                        frame.dirty.store(true, Ordering::Release);
                        flush_err = Some(e);
                        break;
                    }
                    self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                }
            }
            for frame in &frames {
                frame.pin.fetch_sub(1, Ordering::AcqRel);
            }
            if let Some(e) = flush_err {
                return Err(e);
            }
        }
        self.backend.sync()
    }

    /// Page ids of every dirty resident frame — the dirty-page table a
    /// fuzzy checkpoint snapshots at begin. One shard lock at a time;
    /// the result is a moment-in-time view, which is all a fuzzy
    /// checkpoint needs (pages dirtied after the snapshot carry log
    /// records above the checkpoint's low-water LSN).
    pub fn dirty_page_ids(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let inner = self.lock_shard(shard);
            out.extend(
                inner
                    .frames
                    .iter()
                    .filter(|f| f.dirty.load(Ordering::Acquire))
                    .map(|f| f.page_id),
            );
        }
        out
    }

    /// Write back the named pages (one fuzzy-checkpoint batch),
    /// returning how many were actually flushed. Pages stay resident;
    /// writers are never quiesced — the shard lock is held only to pin,
    /// each write runs lock-free under the frame latch, exactly the
    /// [`flush_all`](Self::flush_all) discipline. A page that was
    /// evicted (its eviction write-back already persisted it) or
    /// cleaned since enumeration is skipped. Does **not** sync the
    /// backend; the checkpoint syncs once after its last batch.
    pub fn flush_pages(&self, pages: &[PageId]) -> Result<usize> {
        let mut flushed = 0usize;
        for &id in pages {
            let shard = &self.shards[self.shard_of(id)];
            let frame = {
                let inner = self.lock_shard(shard);
                inner.map.get(&id).map(|&idx| {
                    let f = &inner.frames[idx];
                    f.pin.fetch_add(1, Ordering::AcqRel);
                    Arc::clone(f)
                })
            };
            let Some(frame) = frame else { continue };
            let mut flush_err = None;
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let wrote = {
                    let data = frame.data.read();
                    self.write_with_retry(frame.page_id, &data)
                };
                match wrote {
                    Ok(()) => {
                        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                        flushed += 1;
                    }
                    Err(e) => {
                        frame.dirty.store(true, Ordering::Release);
                        flush_err = Some(e);
                    }
                }
            }
            frame.pin.fetch_sub(1, Ordering::AcqRel);
            if let Some(e) = flush_err {
                return Err(e);
            }
        }
        Ok(flushed)
    }

    /// Durably sync the backing device (the fuzzy checkpoint's single
    /// sync after its last [`flush_pages`](Self::flush_pages) batch).
    pub fn sync_backend(&self) -> Result<()> {
        self.backend.sync()
    }
}

/// Soft per-shard bound for a given global capacity: base quota plus a
/// 25% (min 2) borrow headroom, never above the global capacity.
fn soft_shard_cap(capacity: usize, shards: usize) -> usize {
    if shards <= 1 {
        return capacity;
    }
    let quota = capacity / shards;
    (quota + (quota / 4).max(2)).min(capacity)
}

/// Largest power of two ≤ capacity/32, clamped to [1, 16]; tiny caches
/// stay unsharded so replacement behaves exactly like a single clock.
fn auto_shards(capacity: usize) -> usize {
    if capacity < 64 {
        return 1;
    }
    let target = (capacity / 32).clamp(1, 16);
    1 << (usize::BITS - 1 - target.leading_zeros())
}

/// A pinned page. Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    cache: &'a BufferCache,
    frame: Arc<Frame>,
}

impl PageGuard<'_> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.frame.page_id
    }

    /// Run `f` with shared (read) access to the page bytes. Counts a
    /// contention event if the latch had to block.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let guard = match self.frame.data.try_read() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.read()
            }
        };
        f(&guard)
    }

    /// Run `f` with exclusive (write) access to the page bytes and mark
    /// the page dirty. Counts a contention event if the latch blocked.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = match self.frame.data.try_write() {
            Some(g) => g,
            None => {
                self.cache
                    .stats
                    .latch_contention
                    .fetch_add(1, Ordering::Relaxed);
                THREAD_CONTENTION.with(|c| c.set(c.get() + 1));
                self.frame.data.write()
            }
        };
        self.frame.dirty.store(true, Ordering::Release);
        f(&mut guard)
    }

    /// Convenience: read access through a [`PageView`].
    pub fn with_page_read<R>(&self, f: impl FnOnce(&PageView<'_>) -> R) -> R {
        self.with_read(|buf| f(&PageView::new(buf)))
    }

    /// Convenience: write access through a [`SlottedPage`] view.
    pub fn with_page_write<R>(&self, f: impl FnOnce(&mut SlottedPage<'_>) -> R) -> R {
        self.with_write(|buf| {
            let mut page = SlottedPage::new(buf);
            f(&mut page)
        })
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page_id", &self.frame.page_id)
            // lint: allow(atomics-ordering) -- Debug snapshot; a stale pin
            // count in log output is harmless.
            .field("pins", &self.frame.pin.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn cache(frames: usize) -> BufferCache {
        BufferCache::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let c = cache(4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(1)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"row-one").unwrap();
            });
            g.page_id()
        };
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| {
            assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), b"row-one");
            assert_eq!(p.partition(), PartitionId(1));
        });
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn eviction_and_reload_preserves_data() {
        let c = cache(2);
        let mut ids = Vec::new();
        for i in 0..5u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 16]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert!(c.resident() <= 2);
        // Every page readable, including evicted ones.
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 16]);
            });
        }
        let s = c.stats();
        assert!(s.evictions >= 3);
        assert!(s.flushes >= 3, "dirty evictions must write back");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let c = cache(2);
        let g1 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let g2 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        // Cache full of pinned pages: another allocation must fail, and
        // the error distinguishes "pin leak" from "cache too small".
        match c.new_page(PageType::Heap, PartitionId(0)) {
            Err(BtrimError::BufferExhausted { pinned, capacity }) => {
                assert_eq!(pinned, 2);
                assert_eq!(capacity, 2);
            }
            Err(other) => panic!("expected BufferExhausted, got {other:?}"),
            Ok(_) => panic!("expected BufferExhausted, got a page"),
        }
        drop(g2);
        // Now there is an evictable frame.
        let g3 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        assert_ne!(g1.page_id(), g3.page_id());
    }

    #[test]
    fn set_capacity_grow_takes_effect_immediately() {
        let c = cache(2);
        let _g1 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let _g2 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        assert!(matches!(
            c.new_page(PageType::Heap, PartitionId(0)),
            Err(BtrimError::BufferExhausted { .. })
        ));
        assert_eq!(c.set_capacity(4), 0);
        assert_eq!(c.capacity(), 4);
        // The freshly granted frames are usable at once, pins intact.
        let _g3 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let _g4 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        assert_eq!(c.stats().capacity_shifts, 1);
    }

    #[test]
    fn set_capacity_shrink_evicts_unpinned_lazily() {
        let c = cache(8);
        let mut ids = Vec::new();
        for i in 0..8u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 16]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert_eq!(c.resident(), 8);
        // Nothing pinned: the shrink sweep drains the debt in full,
        // writing dirty victims back on the way out.
        assert_eq!(c.set_capacity(3), 0);
        assert!(c.resident() <= 3);
        assert_eq!(c.shrink_debt(), 0);
        // Evicted pages reload intact.
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 16]);
            });
        }
    }

    #[test]
    fn set_capacity_shrink_below_pins_leaves_debt_then_drains() {
        let c = cache(4);
        let g1 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let g2 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        let g3 = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        // Shrink below the pinned count: pins must survive, the
        // uncovered frames stay resident as shrink debt.
        let debt = c.set_capacity(1);
        assert_eq!(debt, 2);
        assert_eq!(c.shrink_debt(), 2);
        assert_eq!(c.stats().shrink_debt, 2);
        // The pinned frames are still fully usable.
        g1.with_page_write(|p| {
            p.insert(b"still-writable").unwrap();
        });
        // Each unpin lets eviction pay one frame of debt down.
        drop(g2);
        c.drain_shrink_debt();
        assert_eq!(c.shrink_debt(), 1);
        drop(g3);
        c.drain_shrink_debt();
        assert_eq!(c.shrink_debt(), 0);
        // The last pinned frame fits inside the new capacity and stays.
        assert_eq!(c.resident(), 1);
        drop(g1);
    }

    #[test]
    fn dirty_page_ids_and_batched_flush() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 8);
        let mut ids = Vec::new();
        for i in 0..4u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 8]).unwrap();
            });
            ids.push(g.page_id());
        }
        let mut dirty = c.dirty_page_ids();
        dirty.sort();
        let mut want = ids.clone();
        want.sort();
        assert_eq!(dirty, want);

        // Flush in two batches; a made-up id (never resident) and a
        // repeated id (already clean on the second pass) are skipped.
        let flushed = c.flush_pages(&[ids[0], ids[1], PageId(9999)]).unwrap();
        assert_eq!(flushed, 2);
        assert_eq!(c.dirty_page_ids().len(), 2);
        let flushed = c.flush_pages(&[ids[0], ids[2], ids[3]]).unwrap();
        assert_eq!(flushed, 2);
        c.sync_backend().unwrap();
        assert!(c.dirty_page_ids().is_empty());
        // Pages stayed resident and the bytes reached the device.
        assert_eq!(c.resident(), 4);
        for (i, id) in ids.iter().enumerate() {
            let mut raw = vec![0u8; PAGE_SIZE];
            backend.read_page(*id, &mut raw).unwrap();
            let page = SlottedPage::new(&mut raw);
            assert_eq!(page.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 8]);
        }
    }

    #[test]
    fn flush_pages_keeps_writers_running() {
        // A frame being flushed stays writable: flush_pages must never
        // hold the shard lock across the device write, so a concurrent
        // writer re-dirtying the page cannot stall behind the flush.
        let c = Arc::new(cache(8));
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"v0").unwrap();
            });
            g.page_id()
        };
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut writes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = c.fetch(id).unwrap();
                    g.with_page_write(|p| {
                        assert!(p.update(btrim_common::SlotId(0), b"vN"));
                    });
                    writes += 1;
                }
                writes
            })
        };
        for _ in 0..200 {
            c.flush_pages(&[id]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let writes = writer.join().unwrap();
        assert!(writes > 0, "writer must make progress during flushes");
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"durable").unwrap();
            });
            g.page_id()
        };
        c.flush_all().unwrap();
        // Bypass the cache: data must be on the device.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        let page = SlottedPage::new(&mut raw);
        assert_eq!(page.get(btrim_common::SlotId(0)).unwrap(), b"durable");
    }

    #[test]
    fn concurrent_fetches_share_one_frame() {
        let c = Arc::new(cache(8));
        let id = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let g = c.fetch(id).unwrap();
                        g.with_page_write(|p| {
                            p.insert(&[i as u8]).map(|s| p.delete(s));
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = c.fetch(id).unwrap();
        g.with_page_read(|p| assert_eq!(p.live_rows(), 0));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let c = cache(3);
        let _a = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let b = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let d = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        // First pressure event: sweeps clear every reference bit and
        // evict the oldest page (`a`); `b` and `d` stay with bits clear.
        let _e = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        // Re-reference `b` so it earns a second chance.
        drop(c.fetch(b).unwrap());
        // Second pressure event: `b`'s bit is set (spared), and `d`
        // (bit clear) is the victim.
        let _f = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        let before = c.stats().misses;
        drop(c.fetch(b).unwrap());
        assert_eq!(c.stats().misses, before, "page `b` stayed resident");
        drop(c.fetch(d).unwrap());
        assert_eq!(c.stats().misses, before + 1, "page `d` was the victim");
    }

    #[test]
    fn auto_shard_count_scales_with_capacity() {
        assert_eq!(auto_shards(2), 1);
        assert_eq!(auto_shards(63), 1);
        assert_eq!(auto_shards(64), 2);
        assert_eq!(auto_shards(256), 8);
        assert_eq!(auto_shards(4096), 16);
        assert_eq!(cache(4096).shard_count(), 16);
        assert_eq!(cache(8).shard_count(), 1);
    }

    #[test]
    fn explicit_sharding_spreads_pages() {
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 128, 4);
        assert_eq!(c.shard_count(), 4);
        let mut ids = Vec::new();
        for _ in 0..64 {
            ids.push(
                c.new_page(PageType::Heap, PartitionId(0))
                    .unwrap()
                    .page_id(),
            );
        }
        let stats = c.shard_stats();
        assert_eq!(stats.iter().map(|s| s.resident).sum::<usize>(), 64);
        let populated = stats.iter().filter(|s| s.resident > 0).count();
        assert!(populated >= 3, "pages clustered into {populated} shards");
        // Everything still readable through the sharded map.
        for id in ids {
            drop(c.fetch(id).unwrap());
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn sharded_cache_respects_global_capacity() {
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 32, 4);
        let mut ids = Vec::new();
        for i in 0..200u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 8]).unwrap();
            });
            ids.push(g.page_id());
        }
        assert!(c.resident() <= 32, "resident {} > capacity", c.resident());
        for (i, id) in ids.iter().enumerate() {
            let g = c.fetch(*id).unwrap();
            g.with_page_read(|p| {
                assert_eq!(p.get(btrim_common::SlotId(0)).unwrap(), &[i as u8; 8]);
            });
        }
        assert_eq!(c.pinned_frames(), 0);
    }

    #[test]
    fn pinned_shard_borrows_past_soft_cap_when_global_room_exists() {
        // 4 shards over 64 frames: quota 16, soft cap 20. Pin well past
        // one shard's cap; with global room to spare every allocation
        // must succeed instead of reporting BufferExhausted just
        // because the home shard cannot evict.
        let c = BufferCache::with_shards(Arc::new(MemDisk::new()), 64, 4);
        let mut held = Vec::new();
        while held.len() < 30 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            if c.shard_of(g.page_id()) == 0 {
                held.push(g); // keep shard-0 pages pinned
            } // other shards' guards drop here and stay evictable
        }
        assert!(
            c.shard_stats()[0].resident > c.shard_cap.load(Ordering::Relaxed),
            "test must actually push shard 0 past its soft cap"
        );
        assert!(c.resident() <= c.capacity());
        drop(held);
        assert_eq!(c.pinned_frames(), 0);
    }

    /// Test double: delegates to a MemDisk but fails the next N reads
    /// and/or writes with transient I/O errors.
    struct FlakyDisk {
        inner: MemDisk,
        fail_reads: AtomicU64,
        fail_writes: AtomicU64,
    }

    impl FlakyDisk {
        fn new() -> Self {
            FlakyDisk {
                inner: MemDisk::new(),
                fail_reads: AtomicU64::new(0),
                fail_writes: AtomicU64::new(0),
            }
        }
        fn take_budget(counter: &AtomicU64) -> bool {
            counter
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
                .is_ok()
        }
    }

    impl DiskBackend for FlakyDisk {
        fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
            if Self::take_budget(&self.fail_reads) {
                return Err(std::io::Error::other("injected read error").into());
            }
            self.inner.read_page(id, buf)
        }
        fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
            if Self::take_budget(&self.fail_writes) {
                return Err(std::io::Error::other("injected write error").into());
            }
            self.inner.write_page(id, buf)
        }
        fn allocate_page(&self) -> Result<PageId> {
            self.inner.allocate_page()
        }
        fn num_pages(&self) -> u32 {
            self.inner.num_pages()
        }
        fn sync(&self) -> Result<()> {
            self.inner.sync()
        }
        fn reads(&self) -> u64 {
            self.inner.reads()
        }
        fn writes(&self) -> u64 {
            self.inner.writes()
        }
    }

    #[test]
    fn transient_read_errors_are_retried() {
        let backend = Arc::new(FlakyDisk::new());
        let c = BufferCache::new(backend.clone(), 4)
            .with_io_retry(3, std::time::Duration::from_micros(10));
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"survives retries").unwrap();
            });
            g.page_id()
        };
        c.flush_all().unwrap();
        // Evict the frame so the next fetch must read the device.
        while c.resident() > 0 {
            if let EvictOutcome::Nothing = c.evict_one(c.shard_of(id)).unwrap() {
                panic!("nothing evictable");
            }
        }
        backend.fail_reads.store(2, Ordering::Release);
        let g = c.fetch(id).unwrap();
        g.with_page_read(|v| {
            assert_eq!(v.get(btrim_common::SlotId(0)).unwrap(), b"survives retries");
        });
        let s = c.stats();
        assert_eq!(s.io_errors, 2);
        assert_eq!(s.io_retries, 2);
    }

    #[test]
    fn read_errors_past_retry_budget_propagate() {
        let backend = Arc::new(FlakyDisk::new());
        let c = BufferCache::new(backend.clone(), 4)
            .with_io_retry(3, std::time::Duration::from_micros(10));
        let id = c
            .new_page(PageType::Heap, PartitionId(0))
            .unwrap()
            .page_id();
        c.flush_all().unwrap();
        while c.resident() > 0 {
            c.evict_one(c.shard_of(id)).unwrap();
        }
        backend.fail_reads.store(100, Ordering::Release);
        let err = c.fetch(id).unwrap_err();
        assert!(matches!(err, BtrimError::Io(_)));
        assert_eq!(c.resident(), 0);
        assert_eq!(c.pinned_frames(), 0);
        assert_eq!(c.stats().io_retries, 2, "3 attempts = 2 retries");
    }

    #[test]
    fn torn_page_detected_on_fetch_never_served() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 4);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"precious payload").unwrap();
            });
            g.page_id()
        };
        c.flush_all().unwrap();
        while c.resident() > 0 {
            c.evict_one(c.shard_of(id)).unwrap();
        }
        // Corrupt the device bytes behind the cache's back (simulated
        // torn write: the tail of the page reverts to zeros).
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        for b in raw[PAGE_SIZE / 2..].iter_mut() {
            *b = 0;
        }
        backend.write_page(id, &raw).unwrap();

        let err = c.fetch(id).unwrap_err();
        assert!(matches!(err, BtrimError::ChecksumMismatch(p) if p == id));
        assert_eq!(c.stats().checksum_failures, 1);
        assert_eq!(c.resident(), 0, "corrupt page must not stay cached");
        // The salvage path can still look at the raw bytes.
        let g = c.fetch_unchecked(id).unwrap();
        g.with_read(|buf| assert!(!verify_page_checksum(buf)));
    }

    #[test]
    fn failed_writeback_remarks_dirty_and_data_survives() {
        let backend = Arc::new(FlakyDisk::new());
        let c = BufferCache::new(backend.clone(), 4)
            .with_io_retry(2, std::time::Duration::from_micros(10));
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(b"only copy").unwrap();
            });
            g.page_id()
        };
        // Every write fails: eviction must keep the frame (re-marked
        // dirty), never dropping the only copy.
        backend.fail_writes.store(u64::MAX, Ordering::Release);
        let err = c.evict_one(c.shard_of(id)).map(|_| ()).unwrap_err();
        assert!(matches!(err, BtrimError::Io(_)));
        assert_eq!(c.resident(), 1, "frame dropped despite failed write-back");
        // Device heals: flush persists the still-dirty page.
        backend.fail_writes.store(0, Ordering::Release);
        c.flush_all().unwrap();
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        assert!(verify_page_checksum(&raw));
        let page = SlottedPage::new(&mut raw);
        assert_eq!(page.get(btrim_common::SlotId(0)).unwrap(), b"only copy");
    }

    #[test]
    fn pages_on_device_carry_valid_checksums() {
        let backend = Arc::new(MemDisk::new());
        let c = BufferCache::new(backend.clone(), 2);
        let mut ids = Vec::new();
        for i in 0..6u8 {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[i; 24]).unwrap();
            });
            ids.push(g.page_id());
        }
        c.flush_all().unwrap();
        let mut raw = vec![0u8; PAGE_SIZE];
        for id in ids {
            backend.read_page(id, &mut raw).unwrap();
            assert!(verify_page_checksum(&raw), "unstamped page on device");
        }
    }

    /// Test double: a lying device that tears the next write — only the
    /// first 512 bytes of the new image land, yet it reports success.
    struct TearingDisk {
        inner: MemDisk,
        tear_writes: AtomicU64,
    }

    impl DiskBackend for TearingDisk {
        fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
            self.inner.read_page(id, buf)
        }
        fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
            if FlakyDisk::take_budget(&self.tear_writes) {
                let mut torn = vec![0u8; buf.len()];
                let _ = self.inner.read_page(id, &mut torn);
                let n = 512.min(buf.len());
                torn[..n].copy_from_slice(&buf[..n]);
                return self.inner.write_page(id, &torn);
            }
            self.inner.write_page(id, buf)
        }
        fn allocate_page(&self) -> Result<PageId> {
            self.inner.allocate_page()
        }
        fn num_pages(&self) -> u32 {
            self.inner.num_pages()
        }
        fn sync(&self) -> Result<()> {
            self.inner.sync()
        }
        fn reads(&self) -> u64 {
            self.inner.reads()
        }
        fn writes(&self) -> u64 {
            self.inner.writes()
        }
    }

    #[test]
    fn write_verification_heals_a_torn_write() {
        let backend = Arc::new(TearingDisk {
            inner: MemDisk::new(),
            tear_writes: AtomicU64::new(0),
        });
        let c = BufferCache::new(backend.clone(), 4)
            .with_io_retry(3, std::time::Duration::from_micros(10))
            .with_write_verification(true);
        let id = {
            let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                p.insert(&[0xCD; 2000]).unwrap(); // payload well past the tear point
            });
            g.page_id()
        };
        backend.tear_writes.store(1, Ordering::Release);
        c.flush_all().unwrap();
        // The tear was detected by read-back and the write retried: the
        // device image is intact and checksummed.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.inner.read_page(id, &mut raw).unwrap();
        assert!(verify_page_checksum(&raw), "torn image left on device");
        let page = SlottedPage::new(&mut raw);
        assert_eq!(
            page.get(btrim_common::SlotId(0)).unwrap(),
            &[0xCD; 2000][..]
        );
        let s = c.stats();
        assert_eq!(s.io_errors, 1, "the tear counts as an I/O error");
        assert_eq!(s.io_retries, 1);
    }

    #[test]
    fn failed_read_propagates_and_leaves_cache_clean() {
        let c = cache(4);
        // Page id that was never allocated: the backend read fails.
        let err = c.fetch(PageId(u32::MAX)).unwrap_err();
        assert!(!matches!(err, BtrimError::BufferExhausted { .. }));
        assert_eq!(c.resident(), 0);
        assert_eq!(c.pinned_frames(), 0);
        // The cache still works afterwards.
        let g = c.new_page(PageType::Heap, PartitionId(0)).unwrap();
        drop(g);
        assert_eq!(c.resident(), 1);
    }
}
