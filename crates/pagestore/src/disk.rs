//! Disk backends.
//!
//! The paper's testbed used SSD devices; experiments here default to an
//! in-memory device ([`MemDisk`]) so runs are fast and deterministic,
//! with a real file-backed device ([`FileDisk`]) available for
//! durability and recovery tests. Both sit behind [`DiskBackend`], the
//! only interface the buffer cache and WAL see.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use btrim_common::{BtrimError, PageId, Result};

use crate::page::PAGE_SIZE;

/// A paged block device.
///
/// Page ids are dense: `allocate_page` hands out the next id and the
/// device grows as needed. All methods are safe to call concurrently.
pub trait DiskBackend: Send + Sync {
    /// Read page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Write page `id` from `buf` (`buf.len() == PAGE_SIZE`).
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Allocate a fresh zeroed page and return its id.
    fn allocate_page(&self) -> Result<PageId>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Durably flush device contents.
    fn sync(&self) -> Result<()>;
    /// Total read calls served (for experiment reporting).
    fn reads(&self) -> u64;
    /// Total write calls served.
    fn writes(&self) -> u64;
}

/// Reject short (or long) page buffers with a typed error instead of a
/// debug-only assertion, so release builds can't silently transfer
/// partial pages.
fn check_buf_len(buf: &[u8]) -> Result<()> {
    if buf.len() != PAGE_SIZE {
        return Err(BtrimError::ShortBuffer {
            expected: PAGE_SIZE,
            got: buf.len(),
        });
    }
    Ok(())
}

/// In-memory device: a vector of page buffers.
#[derive(Default)]
pub struct MemDisk {
    pages: RwLock<Vec<Box<[u8]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl MemDisk {
    /// Create an empty in-memory device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_buf_len(buf)?;
        let pages = self.pages.read();
        let page = pages
            .get(id.0 as usize)
            .ok_or(BtrimError::PageNotFound(id))?;
        buf.copy_from_slice(page);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        check_buf_len(buf)?;
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or(BtrimError::PageNotFound(id))?;
        page.copy_from_slice(buf);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u32);
        pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.pages.read().len() as u32
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// File-backed device. One flat file, page `i` at byte offset
/// `i * PAGE_SIZE`.
pub struct FileDisk {
    file: Mutex<File>,
    next_page: AtomicU32,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FileDisk {
    /// Open (or create) a device file. Existing contents are preserved;
    /// the allocation cursor resumes after the last full page.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let next = (len / PAGE_SIZE as u64) as u32;
        Ok(FileDisk {
            file: Mutex::new(file),
            next_page: AtomicU32::new(next),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_buf_len(buf)?;
        if id.0 >= self.next_page.load(Ordering::Acquire) {
            return Err(BtrimError::PageNotFound(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        file.read_exact(buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        check_buf_len(buf)?;
        if id.0 >= self.next_page.load(Ordering::Acquire) {
            return Err(BtrimError::PageNotFound(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        file.write_all(buf)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut file = self.file.lock();
        let id = PageId(self.next_page.load(Ordering::Acquire));
        let start = id.0 as u64 * PAGE_SIZE as u64;
        let zero_fill = (|| -> Result<()> {
            file.seek(SeekFrom::Start(start))?;
            file.write_all(&[0u8; PAGE_SIZE])?;
            Ok(())
        })();
        if let Err(e) = zero_fill {
            // A partial zero-fill may have extended the file; roll the
            // length back so the cursor and file stay consistent and a
            // retry (or reopen) sees the same allocation frontier.
            let _ = file.set_len(start);
            return Err(e);
        }
        self.next_page.store(id.0 + 1, Ordering::Release);
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.next_page.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskBackend) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        assert_eq!(disk.num_pages(), 2);

        let mut w = vec![0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &w).unwrap();

        let mut r = vec![0u8; PAGE_SIZE];
        disk.read_page(p1, &mut r).unwrap();
        assert_eq!(r, w);

        // Page 0 still zeroed.
        disk.read_page(p0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));

        assert!(disk.reads() >= 2);
        assert!(disk.writes() >= 1);
        disk.sync().unwrap();
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("btrim-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        let _ = std::fs::remove_file(&path);
        roundtrip(&FileDisk::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filedisk_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("btrim-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path).unwrap();
            let p = disk.allocate_page().unwrap();
            let mut w = vec![7u8; PAGE_SIZE];
            w[13] = 99;
            disk.write_page(p, &w).unwrap();
            disk.sync().unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 1);
            let mut r = vec![0u8; PAGE_SIZE];
            disk.read_page(PageId(0), &mut r).unwrap();
            assert_eq!(r[13], 99);
            assert_eq!(r[0], 7);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_buffers_rejected_with_typed_error() {
        let mem = MemDisk::new();
        let p = mem.allocate_page().unwrap();
        let mut short = vec![0u8; PAGE_SIZE - 1];
        assert!(matches!(
            mem.read_page(p, &mut short),
            Err(BtrimError::ShortBuffer { expected, got })
                if expected == PAGE_SIZE && got == PAGE_SIZE - 1
        ));
        let long = vec![0u8; PAGE_SIZE + 8];
        assert!(matches!(
            mem.write_page(p, &long),
            Err(BtrimError::ShortBuffer { .. })
        ));

        let dir = std::env::temp_dir().join(format!("btrim-disk3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        let _ = std::fs::remove_file(&path);
        let disk = FileDisk::open(&path).unwrap();
        let p = disk.allocate_page().unwrap();
        assert!(matches!(
            disk.read_page(p, &mut short),
            Err(BtrimError::ShortBuffer { .. })
        ));
        assert!(matches!(
            disk.write_page(p, &long),
            Err(BtrimError::ShortBuffer { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    /// A failed zero-fill must not advance the allocation cursor:
    /// /dev/full accepts the open but fails every write with ENOSPC.
    #[test]
    #[cfg(target_os = "linux")]
    fn filedisk_allocate_failure_does_not_advance_cursor() {
        let path = Path::new("/dev/full");
        if !path.exists() {
            return;
        }
        let disk = FileDisk::open(path).unwrap();
        assert_eq!(disk.num_pages(), 0);
        for _ in 0..3 {
            assert!(disk.allocate_page().is_err());
            assert_eq!(disk.num_pages(), 0, "cursor advanced past failed write");
        }
    }

    /// A partial trailing page (the residue of an interrupted
    /// allocation) is ignored by `open` and reclaimed by the next
    /// allocation instead of shifting the page grid.
    #[test]
    fn filedisk_partial_tail_is_reclaimed() {
        let dir = std::env::temp_dir().join(format!("btrim-disk4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path).unwrap();
            let p = disk.allocate_page().unwrap();
            disk.write_page(p, &vec![3u8; PAGE_SIZE]).unwrap();
        }
        // Simulate an interrupted allocation: a torn half-page tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&vec![0xEEu8; PAGE_SIZE / 2]).unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 1, "partial tail counted as a page");
            let p = disk.allocate_page().unwrap();
            assert_eq!(p, PageId(1));
            let mut r = vec![0xFFu8; PAGE_SIZE];
            disk.read_page(p, &mut r).unwrap();
            assert!(r.iter().all(|&b| b == 0), "reclaimed page not zeroed");
            disk.read_page(PageId(0), &mut r).unwrap();
            assert!(r.iter().all(|&b| b == 3), "page 0 disturbed");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_access_errors() {
        let disk = MemDisk::new();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            disk.read_page(PageId(0), &mut buf),
            Err(BtrimError::PageNotFound(_))
        ));
        assert!(matches!(
            disk.write_page(PageId(3), &buf),
            Err(BtrimError::PageNotFound(_))
        ));
    }
}
