//! Concurrency stress tests for the sharded buffer cache: many threads
//! hammering a working set much larger than the cache, on both the
//! in-memory and the file disk backend, plus a slow-read test double
//! proving that a miss's disk I/O no longer blocks hits on other pages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use btrim_common::{BtrimError, PageId, PartitionId, Result, SlotId};
use btrim_pagestore::{BufferCache, DiskBackend, FileDisk, MemDisk, PageType, PAGE_SIZE};

const THREADS: usize = 8;
const ROUNDS: usize = 400;
const WORKING_SET: usize = 96;
const CAPACITY: usize = 24; // capacity ≪ working set: constant eviction

/// Create `WORKING_SET` pages, each holding one 8-byte counter row.
fn seed_pages(cache: &BufferCache) -> Vec<PageId> {
    (0..WORKING_SET)
        .map(|_| {
            let g = cache.new_page(PageType::Heap, PartitionId(0)).unwrap();
            g.with_page_write(|p| {
                assert_eq!(p.insert(&0u64.to_le_bytes()), Some(SlotId(0)));
            });
            g.page_id()
        })
        .collect()
}

/// 8 threads increment per-page counters under eviction pressure; at
/// the end every page's counter must equal the number of increments it
/// received, no guard may remain pinned, and the flushed image on the
/// backend must match the cache's view.
fn thrash(backend: Arc<dyn DiskBackend>, shards: usize) {
    let cache = Arc::new(BufferCache::with_shards(backend.clone(), CAPACITY, shards));
    let ids = Arc::new(seed_pages(&cache));
    let expected: Arc<Vec<AtomicU64>> =
        Arc::new((0..WORKING_SET).map(|_| AtomicU64::new(0)).collect());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let ids = Arc::clone(&ids);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                // Simple deterministic per-thread page walk with enough
                // spread that threads collide on pages and shards.
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..ROUNDS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x % WORKING_SET as u64) as usize;
                    let g = cache.fetch(ids[i]).unwrap();
                    g.with_page_write(|p| {
                        let cur = u64::from_le_bytes(p.get(SlotId(0)).unwrap().try_into().unwrap());
                        assert!(p.update(SlotId(0), &(cur + 1).to_le_bytes()));
                    });
                    expected[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(cache.pinned_frames(), 0, "guard leak");
    assert!(
        cache.resident() <= CAPACITY,
        "resident {} exceeds capacity {CAPACITY}",
        cache.resident()
    );

    // Every increment must be visible through the cache.
    for (i, id) in ids.iter().enumerate() {
        let g = cache.fetch(*id).unwrap();
        g.with_page_read(|p| {
            let cur = u64::from_le_bytes(p.get(SlotId(0)).unwrap().try_into().unwrap());
            assert_eq!(cur, expected[i].load(Ordering::Relaxed), "page {i}");
        });
    }
    let total: u64 = expected.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, (THREADS * ROUNDS) as u64);

    // And after a checkpoint, straight off the device too.
    cache.flush_all().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(*id, &mut raw).unwrap();
        let page = btrim_pagestore::SlottedPage::new(&mut raw);
        let cur = u64::from_le_bytes(page.get(SlotId(0)).unwrap().try_into().unwrap());
        assert_eq!(cur, expected[i].load(Ordering::Relaxed), "flushed page {i}");
    }
}

#[test]
fn thrash_memdisk_sharded() {
    thrash(Arc::new(MemDisk::new()), 4);
}

#[test]
fn thrash_memdisk_single_shard() {
    thrash(Arc::new(MemDisk::new()), 1);
}

#[test]
fn thrash_filedisk_sharded() {
    let dir = std::env::temp_dir().join(format!("btrim-buffer-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stress.pages");
    let _ = std::fs::remove_file(&path);
    thrash(Arc::new(FileDisk::open(&path).unwrap()), 4);
    let _ = std::fs::remove_file(&path);
}

/// Checkpoints race eviction: a flusher thread loops `flush_all` while
/// writers update pages under constant eviction pressure. A checkpoint
/// that cleared a frame's dirty bit without pinning it would let a
/// concurrent eviction drop the frame mid-write — a later fetch would
/// reload stale bytes from disk and the per-page counters would
/// regress.
#[test]
fn checkpoint_during_thrash_loses_no_updates() {
    let backend: Arc<dyn DiskBackend> = Arc::new(MemDisk::new());
    let cache = Arc::new(BufferCache::with_shards(backend.clone(), CAPACITY, 4));
    let ids = Arc::new(seed_pages(&cache));
    let expected: Arc<Vec<AtomicU64>> =
        Arc::new((0..WORKING_SET).map(|_| AtomicU64::new(0)).collect());
    let done = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let ids = Arc::clone(&ids);
                let expected = Arc::clone(&expected);
                s.spawn(move || {
                    let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..ROUNDS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let i = (x % WORKING_SET as u64) as usize;
                        let g = cache.fetch(ids[i]).unwrap();
                        g.with_page_write(|p| {
                            let cur =
                                u64::from_le_bytes(p.get(SlotId(0)).unwrap().try_into().unwrap());
                            assert!(p.update(SlotId(0), &(cur + 1).to_le_bytes()));
                        });
                        expected[i].fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let flusher = {
            let cache = Arc::clone(&cache);
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    cache.flush_all().unwrap();
                }
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        flusher.join().unwrap();
    });

    for (i, id) in ids.iter().enumerate() {
        let g = cache.fetch(*id).unwrap();
        g.with_page_read(|p| {
            let cur = u64::from_le_bytes(p.get(SlotId(0)).unwrap().try_into().unwrap());
            assert_eq!(cur, expected[i].load(Ordering::Relaxed), "page {i}");
        });
    }
    cache.flush_all().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(*id, &mut raw).unwrap();
        let page = btrim_pagestore::SlottedPage::new(&mut raw);
        let cur = u64::from_le_bytes(page.get(SlotId(0)).unwrap().try_into().unwrap());
        assert_eq!(cur, expected[i].load(Ordering::Relaxed), "flushed page {i}");
    }
}

/// Delegates to MemDisk but injects a long stall when reading one
/// designated page — a stand-in for a slow device read.
struct SlowDisk {
    inner: MemDisk,
    slow_page: AtomicU64,
    delay: Duration,
}

impl SlowDisk {
    fn new(delay: Duration) -> Self {
        SlowDisk {
            inner: MemDisk::new(),
            slow_page: AtomicU64::new(u64::MAX),
            delay,
        }
    }
}

impl DiskBackend for SlowDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if self.slow_page.load(Ordering::Acquire) == id.0 as u64 {
            std::thread::sleep(self.delay);
        }
        self.inner.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.inner.write_page(id, buf)
    }
    fn allocate_page(&self) -> Result<PageId> {
        self.inner.allocate_page()
    }
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn reads(&self) -> u64 {
        self.inner.reads()
    }
    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// With the old design a miss held the (single) cache lock across the
/// disk read, so a slow read of page A stalled a pure hit on page B.
/// Now the miss only holds a per-frame latch: the hit must complete
/// orders of magnitude faster than the in-flight read, even with one
/// shard (worst case: same shard as the miss).
#[test]
fn slow_miss_does_not_block_hits() {
    const DELAY: Duration = Duration::from_millis(300);
    let disk = Arc::new(SlowDisk::new(DELAY));
    let cache = Arc::new(BufferCache::with_shards(
        disk.clone() as Arc<dyn DiskBackend>,
        8,
        1,
    ));

    let a = cache
        .new_page(PageType::Heap, PartitionId(0))
        .unwrap()
        .page_id();
    let b = cache
        .new_page(PageType::Heap, PartitionId(0))
        .unwrap()
        .page_id();
    // Push A out of the cache so the next fetch is a real (slow) read;
    // B stays resident via its reference bit and explicit re-fetches.
    cache.flush_all().unwrap();
    for _ in 0..8 {
        let _ = cache.new_page(PageType::Heap, PartitionId(0)).unwrap();
        drop(cache.fetch(b).unwrap());
    }
    {
        let s = cache.stats();
        assert_eq!(s.misses, 0, "B must still be resident before the probe");
    }
    disk.slow_page.store(a.0 as u64, Ordering::Release);

    let misser = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let start = Instant::now();
            drop(cache.fetch(a).unwrap());
            start.elapsed()
        })
    };
    // Give the miss time to enter its disk read.
    std::thread::sleep(Duration::from_millis(50));

    let start = Instant::now();
    drop(cache.fetch(b).unwrap());
    let hit_time = start.elapsed();

    let miss_time = misser.join().unwrap();
    assert!(miss_time >= DELAY, "miss did not hit the slow path");
    assert!(
        hit_time < DELAY / 2,
        "hit on B blocked behind A's disk read: {hit_time:?}"
    );
}

/// Two fetchers of the same missing page share one disk read: the
/// second waits on the frame (counted as an io-wait), and the backend
/// sees a single physical read.
#[test]
fn concurrent_miss_coalesces_to_one_read() {
    const DELAY: Duration = Duration::from_millis(150);
    let disk = Arc::new(SlowDisk::new(DELAY));
    let cache = Arc::new(BufferCache::with_shards(
        disk.clone() as Arc<dyn DiskBackend>,
        8,
        1,
    ));
    let a = cache
        .new_page(PageType::Heap, PartitionId(0))
        .unwrap()
        .page_id();
    cache.flush_all().unwrap();
    for _ in 0..8 {
        let _ = cache.new_page(PageType::Heap, PartitionId(0)).unwrap();
    }
    let reads_before = disk.reads();
    disk.slow_page.store(a.0 as u64, Ordering::Release);

    std::thread::scope(|s| {
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                drop(cache.fetch(a).unwrap());
            });
        }
    });

    assert_eq!(disk.reads() - reads_before, 1, "read was not coalesced");
    assert!(cache.stats().io_waits >= 1, "waiters were not counted");
}

/// A failed read observed by a coalesced waiter must not skew the
/// hit/miss counters: each logical fetch counts exactly one miss (the
/// waiter retries and becomes its own miss) and never a phantom hit.
#[test]
fn failed_coalesced_read_counts_no_phantom_hit() {
    const DELAY: Duration = Duration::from_millis(100);
    let disk = Arc::new(SlowDisk::new(DELAY));
    let cache = Arc::new(BufferCache::with_shards(
        disk.clone() as Arc<dyn DiskBackend>,
        8,
        1,
    ));
    // Never-allocated page: the backend read fails (slowly, so the
    // second fetcher joins the pending frame and waits).
    let bogus = PageId(u32::MAX);
    disk.slow_page.store(bogus.0 as u64, Ordering::Release);

    std::thread::scope(|s| {
        let c = Arc::clone(&cache);
        s.spawn(move || assert!(c.fetch(bogus).is_err()));
        std::thread::sleep(Duration::from_millis(20));
        let c = Arc::clone(&cache);
        s.spawn(move || assert!(c.fetch(bogus).is_err()));
    });

    let s = cache.stats();
    assert_eq!(s.hits, 0, "a failed read must never count as a hit");
    // Normally exactly 2 (one per fetch); a lost install race adds a
    // legitimate retry-miss, so don't assert an exact count.
    assert!(s.misses >= 2, "each failed fetch is at least one miss");
}

/// A fully pinned cache reports how many frames are pinned, so an
/// operator can tell "cache too small" from "pin leak".
#[test]
fn exhausted_cache_reports_pin_count() {
    let cache = BufferCache::with_shards(Arc::new(MemDisk::new()), 8, 2);
    let guards: Vec<_> = (0..8)
        .map(|_| cache.new_page(PageType::Heap, PartitionId(0)).unwrap())
        .collect();
    match cache.new_page(PageType::Heap, PartitionId(0)) {
        Err(BtrimError::BufferExhausted { pinned, capacity }) => {
            assert_eq!(pinned, 8);
            assert_eq!(capacity, 8);
        }
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("allocation must fail with every frame pinned"),
    }
    drop(guards);
    assert_eq!(cache.pinned_frames(), 0);
    cache.new_page(PageType::Heap, PartitionId(0)).unwrap();
}
