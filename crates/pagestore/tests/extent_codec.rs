//! Satellite: codec proptests for the frozen-extent encodings.
//!
//! Dictionary and bit-packed encode/decode must roundtrip for every
//! bit width 1–64 and for the degenerate column shapes (empty,
//! single-value, all-equal, max-cardinality), and decoding any
//! truncated or bit-flipped extent must return a typed error — never
//! panic (`btrim-pagestore` is on the lint's no-panic list).

use btrim_common::{BtrimError, PartitionId, RowId, TableId};
use btrim_pagestore::extent::{
    bits_needed, pack_bits, packed_len, unpack_bits_at, ColumnData, FrozenExtent,
};
use proptest::prelude::*;

/// Build an extent around a single u64 column and return it with its
/// encoding.
fn encode_u64_column(values: Vec<u64>) -> (FrozenExtent, Vec<u8>) {
    let row_ids: Vec<RowId> = (0..values.len() as u64).map(RowId).collect();
    let ext = FrozenExtent::build(
        1,
        TableId(1),
        PartitionId(1),
        row_ids,
        vec![("v".into(), ColumnData::U64(values))],
        0,
    )
    .expect("build");
    let bytes = ext.encode();
    (ext, bytes)
}

fn encode_bytes_column(values: Vec<Vec<u8>>) -> (FrozenExtent, Vec<u8>) {
    let row_ids: Vec<RowId> = (0..values.len() as u64).map(RowId).collect();
    let ext = FrozenExtent::build(
        1,
        TableId(1),
        PartitionId(1),
        row_ids,
        vec![("v".into(), ColumnData::Bytes(values))],
        0,
    )
    .expect("build");
    let bytes = ext.encode();
    (ext, bytes)
}

fn assert_u64_roundtrip(values: &[u64]) {
    let (_, bytes) = encode_u64_column(values.to_vec());
    let back = FrozenExtent::decode(&bytes).expect("decode");
    let col = back.column("v").expect("column");
    assert_eq!(col.len(), values.len());
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(col.get_u64(i), Some(v), "index {i}");
    }
    if !values.is_empty() {
        let min = values.iter().copied().min().unwrap();
        let max = values.iter().copied().max().unwrap();
        assert_eq!(col.min_max(), Some((min, max)), "zone map recomputed");
    } else {
        assert_eq!(col.min_max(), None);
    }
}

/// Every bit width 1–64 (0 is the all-equal case below): values that
/// exactly span the width so FOR packs at precisely that width.
#[test]
fn roundtrip_every_bit_width_1_to_64() {
    for width in 1u8..=64 {
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut values: Vec<u64> = (0..131u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        // Pin the endpoints so the width is exactly `width`.
        values.push(0);
        values.push(mask);
        assert_eq!(bits_needed(mask), width);
        assert_u64_roundtrip(&values);
    }
}

#[test]
fn roundtrip_degenerate_column_shapes() {
    // Empty.
    assert_u64_roundtrip(&[]);
    let (_, bytes) = encode_bytes_column(Vec::new());
    assert_eq!(FrozenExtent::decode(&bytes).expect("decode").row_count(), 0);
    // Single value.
    assert_u64_roundtrip(&[u64::MAX]);
    assert_u64_roundtrip(&[0]);
    // All-equal (width-0 packing).
    assert_u64_roundtrip(&[0xABCD; 4096]);
    // Max-cardinality: every value distinct — dictionary gains nothing
    // and the adaptive choice must fall back to FOR without loss.
    let distinct: Vec<u64> = (0..4096u64).map(|i| i * 1_000_003).collect();
    assert_u64_roundtrip(&distinct);
    // Max-cardinality bytes: all strings distinct.
    let distinct_b: Vec<Vec<u8>> = (0..512)
        .map(|i| format!("unique-{i:05}").into_bytes())
        .collect();
    let (_, bytes) = encode_bytes_column(distinct_b.clone());
    let back = FrozenExtent::decode(&bytes).expect("decode");
    let col = back.column("v").expect("column");
    for (i, v) in distinct_b.iter().enumerate() {
        assert_eq!(col.get_bytes(i), Some(v.as_slice()));
    }
}

#[test]
fn bit_packing_primitives_roundtrip_at_every_width() {
    for width in 0u8..=64 {
        let mask = if width >= 64 {
            u64::MAX
        } else if width == 0 {
            0
        } else {
            (1u64 << width) - 1
        };
        let values: Vec<u64> = (0..257u64)
            .map(|i| i.wrapping_mul(0x0123_4567_89AB_CDEF) & mask)
            .collect();
        let packed = pack_bits(&values, width);
        assert_eq!(packed.len(), packed_len(values.len(), width));
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(unpack_bits_at(&packed, width, i), v, "width {width}");
        }
    }
}

/// Narrow-alphabet payloads (unique per row, so the value dictionary
/// gains nothing) must take the charset-packed wire path: digits pack
/// at 4 bits per byte, so the encoding must land well under the raw
/// payload size — and still roundtrip exactly.
#[test]
fn charset_packing_compresses_narrow_alphabet_strings() {
    let values: Vec<Vec<u8>> = (0..400u64)
        .map(|i| format!("{:024}", i * 7_919).into_bytes())
        .collect();
    let raw: usize = values.iter().map(Vec::len).sum();
    let (_, bytes) = encode_bytes_column(values.clone());
    assert!(
        bytes.len() < raw * 7 / 10,
        "10-symbol alphabet should pack at ~4 bits/byte: {} encoded vs {raw} raw",
        bytes.len()
    );
    let back = FrozenExtent::decode(&bytes).expect("decode");
    let col = back.column("v").expect("column");
    for (i, v) in values.iter().enumerate() {
        assert_eq!(col.get_bytes(i), Some(v.as_slice()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Payloads drawn from a small random alphabet roundtrip whichever
    /// wire path (PLAIN, DICT, or charset-packed) the cost model picks.
    #[test]
    fn narrow_alphabet_bytes_roundtrip(
        alpha in proptest::collection::vec(any::<u8>(), 1..12),
        rows in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..32), 0..120),
    ) {
        let values: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| r.iter().map(|&x| alpha[(x % alpha.len() as u64) as usize]).collect())
            .collect();
        let (_, bytes) = encode_bytes_column(values.clone());
        let back = FrozenExtent::decode(&bytes).expect("decode");
        let col = back.column("v").expect("column");
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.get_bytes(i), Some(v.as_slice()));
        }
    }

    /// Arbitrary u64 columns roundtrip exactly (the adaptive FOR/DICT
    /// choice must be lossless whichever branch it takes).
    #[test]
    fn u64_columns_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..300)) {
        assert_u64_roundtrip(&values);
    }

    /// Low-cardinality u64 columns (dictionary territory) roundtrip.
    #[test]
    fn low_cardinality_u64_columns_roundtrip(
        dict in proptest::collection::vec(any::<u64>(), 1..8),
        picks in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let values: Vec<u64> = picks.iter().map(|p| dict[(*p % dict.len() as u64) as usize]).collect();
        assert_u64_roundtrip(&values);
    }

    /// Arbitrary bytes columns roundtrip through PLAIN or DICT.
    #[test]
    fn bytes_columns_roundtrip(
        values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..150),
    ) {
        let (_, bytes) = encode_bytes_column(values.clone());
        let back = FrozenExtent::decode(&bytes).expect("decode");
        let col = back.column("v").expect("column");
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(col.get_bytes(i), Some(v.as_slice()));
        }
        prop_assert_eq!(col.get_bytes(values.len()), None);
    }

    /// Truncating an encoded extent at any point yields a typed error,
    /// never a panic.
    #[test]
    fn truncated_extents_error_cleanly(
        values in proptest::collection::vec(any::<u64>(), 1..60),
        strs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..60),
        cut in any::<u64>(),
    ) {
        let n = values.len().min(strs.len());
        let row_ids: Vec<RowId> = (0..n as u64).map(RowId).collect();
        let ext = FrozenExtent::build(
            2,
            TableId(4),
            PartitionId(9),
            row_ids,
            vec![
                ("nums".into(), ColumnData::U64(values[..n].to_vec())),
                ("blobs".into(), ColumnData::Bytes(strs[..n].to_vec())),
            ],
            64,
        ).expect("build");
        let bytes = ext.encode();
        let cut = (cut % bytes.len() as u64) as usize;
        let err = FrozenExtent::decode(&bytes[..cut]);
        prop_assert!(matches!(err, Err(BtrimError::Corrupt(_))), "cut at {cut}: {err:?}");
    }

    /// Flipping any single bit of an encoded extent is detected by the
    /// CRC trailer and reported as a typed error.
    #[test]
    fn bit_flipped_extents_error_cleanly(
        values in proptest::collection::vec(any::<u64>(), 1..60),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (_, mut bytes) = encode_u64_column(values);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let err = FrozenExtent::decode(&bytes);
        prop_assert!(matches!(err, Err(BtrimError::Corrupt(_))), "flip at {pos}: {err:?}");
    }

    /// Decoding arbitrary byte soup never panics.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = FrozenExtent::decode(&bytes);
    }
}
