//! Fixture corpus: every rule must fire on its known-bad fixture and
//! stay silent on the adjacent known-good code. These tests pin the
//! rule engine's behavior so a refactor that silently stops detecting
//! a class of violation fails CI instead of passing quietly.

use btrim_lint::rules::{check_file, Options};
use btrim_lint::snapshot;

fn rules_hit(findings: &[btrim_lint::rules::Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn lock_order_fires_on_inversions_only() {
    let src = include_str!("../fixtures/lock_order.rs");
    // The buffer.rs path activates the shard/frame classifications.
    let findings = check_file("crates/pagestore/src/buffer.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        2,
        "exactly the two inversions, none of the clean functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    // The findings land on the second (inverted) acquisition of each
    // bad function: `self.inner.lock()` and `lock_shard(pool, 3)`.
    let bad_lines: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("self.inner.lock()") && l.trim().starts_with("let s"))
        .map(|(i, _)| i as u32 + 1)
        .take(1)
        .chain(
            src.lines()
                .enumerate()
                .filter(|(_, l)| l.contains("lock_shard(pool"))
                .map(|(i, _)| i as u32 + 1),
        )
        .collect();
    for line in bad_lines {
        assert!(
            hits.iter().any(|(_, l)| *l == line),
            "expected a finding on line {line}: {findings:?}"
        );
    }
}

#[test]
fn lock_order_is_path_scoped() {
    // The same source under an unclassified path has no lock sites, so
    // the rule cannot fire.
    let src = include_str!("../fixtures/lock_order.rs");
    let findings = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn extent_store_publish_lock_is_classified() {
    let src = include_str!("../fixtures/extent_store.rs");
    // The extent.rs path activates the publish classification.
    let findings = check_file("crates/pagestore/src/extent.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        1,
        "exactly the held-publish re-acquisition, none of the clean \
         functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    let bad_line = src
        .lines()
        .position(|l| l.contains("other.publish.lock()") && l.contains("let b"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad acquisition");
    assert_eq!(hits[0].1, bad_line, "{findings:?}");
    // Under an unclassified path the same source is silent.
    let elsewhere = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn arbiter_window_lock_is_classified() {
    let src = include_str!("../fixtures/arbiter_window.rs");
    // The arbiter.rs path activates the window classification.
    let findings = check_file("crates/core/src/arbiter.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        1,
        "exactly the held-window re-acquisition, none of the clean \
         functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    let bad_line = src
        .lines()
        .position(|l| l.contains("other.window.lock()") && l.contains("let b"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad acquisition");
    assert_eq!(hits[0].1, bad_line, "{findings:?}");
    // Under an unclassified path the same source is silent.
    let elsewhere = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn no_panic_fires_outside_tests_and_respects_escapes() {
    let src = include_str!("../fixtures/no_panic.rs");
    let findings = check_file("crates/wal/src/fixture.rs", src, Options::default());
    let panics: Vec<_> = findings.iter().filter(|f| f.rule == "no-panic").collect();
    // unwrap + expect in parse(), panic! in boom(), unreachable! in
    // cant_happen(). The two annotated unwraps and the #[test] fn are
    // silent.
    assert_eq!(panics.len(), 4, "{findings:?}");
    assert!(
        findings.iter().all(|f| f.rule == "no-panic"),
        "no stray findings: {findings:?}"
    );
}

#[test]
fn pedantic_indexing_is_opt_in() {
    let src = include_str!("../fixtures/no_panic.rs");
    let quiet = check_file("crates/wal/src/fixture.rs", src, Options::default());
    assert!(quiet.iter().all(|f| f.rule != "indexing"));
    let pedantic = check_file("crates/wal/src/fixture.rs", src, Options { pedantic: true });
    assert!(
        pedantic.iter().any(|f| f.rule == "indexing"),
        "{pedantic:?}"
    );
}

#[test]
fn no_io_under_lock_fires_inside_critical_sections_only() {
    let src = include_str!("../fixtures/no_io_under_lock.rs");
    let findings = check_file("crates/wal/src/log.rs", src, Options::default());
    let io: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-io-under-lock")
        .collect();
    // append_bad only: append_staged's guard scope ended, and
    // append_serialized is escape-annotated.
    assert_eq!(io.len(), 1, "{findings:?}");
    let bad_line = src
        .lines()
        .position(|l| l.contains("inner.writer.write_all") && !l.contains("lint:"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad write");
    assert_eq!(io[0].line, bad_line);
}

#[test]
fn bad_escape_flags_malformed_escapes() {
    let src = include_str!("../fixtures/bad_escape.rs");
    // obs is neither a no-panic nor a no-io crate, isolating the rule.
    let findings = check_file("crates/obs/src/fixture.rs", src, Options::default());
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "bad-escape"));
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("unknown rule")));
    assert!(msgs.iter().any(|m| m.contains("no ` -- <reason>`")));
    assert!(msgs.iter().any(|m| m.contains("must be `lint: allow")));
}

#[test]
fn malformed_escape_does_not_suppress() {
    // An invalid escape must not silence the finding it sits on.
    let src = include_str!("../fixtures/bad_escape.rs");
    let findings = check_file("crates/wal/src/fixture.rs", src, Options::default());
    assert_eq!(
        findings.iter().filter(|f| f.rule == "no-panic").count(),
        3,
        "all three unwraps still fire: {findings:?}"
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "bad-escape").count(),
        3
    );
}

#[test]
fn snapshot_completeness_finds_unreachable_counters() {
    let obs = include_str!("../fixtures/snapshot_obs.rs");
    let stats = include_str!("../fixtures/snapshot_stats.rs");
    let buffer = include_str!("../fixtures/snapshot_buffer.rs");
    let findings = snapshot::check(
        ("fixtures/snapshot_obs.rs", obs),
        ("fixtures/snapshot_stats.rs", stats),
        ("fixtures/snapshot_buffer.rs", buffer),
    );
    assert!(findings.iter().all(|f| f.rule == "snapshot-completeness"));
    // Ghost missing from ALL and from name() = 2; orphan_counter = 1;
    // cold_scans + capacity_shifts = 2. The rendered arbiter_shifts and
    // shrink_debt fields stay silent.
    assert_eq!(findings.len(), 5, "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert_eq!(
        msgs.iter().filter(|m| m.contains("OpClass::Ghost")).count(),
        2
    );
    assert!(msgs.iter().any(|m| m.contains("orphan_counter")));
    assert!(msgs.iter().any(|m| m.contains("cold_scans")));
    assert!(msgs.iter().any(|m| m.contains("capacity_shifts")));
    assert!(!msgs.iter().any(|m| m.contains("arbiter_shifts")));
    assert!(!msgs.iter().any(|m| m.contains("shrink_debt")));
}

#[test]
fn real_workspace_is_clean() {
    // The repo itself must lint clean — same invocation CI runs. Walk
    // up from the manifest dir so the test works from any cwd.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let findings = btrim_lint::check_workspace(root, Options::default()).unwrap();
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
