//! Fixture corpus: every rule must fire on its known-bad fixture and
//! stay silent on the adjacent known-good code. These tests pin the
//! rule engine's behavior so a refactor that silently stops detecting
//! a class of violation fails CI instead of passing quietly.

use btrim_lint::rules::{check_file, Options};
use btrim_lint::snapshot;

fn rules_hit(findings: &[btrim_lint::rules::Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn lock_order_fires_on_inversions_only() {
    let src = include_str!("../fixtures/lock_order.rs");
    // The buffer.rs path activates the shard/frame classifications.
    let findings = check_file("crates/pagestore/src/buffer.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        2,
        "exactly the two inversions, none of the clean functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    // The findings land on the second (inverted) acquisition of each
    // bad function: `self.inner.lock()` and `lock_shard(pool, 3)`.
    let bad_lines: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("self.inner.lock()") && l.trim().starts_with("let s"))
        .map(|(i, _)| i as u32 + 1)
        .take(1)
        .chain(
            src.lines()
                .enumerate()
                .filter(|(_, l)| l.contains("lock_shard(pool"))
                .map(|(i, _)| i as u32 + 1),
        )
        .collect();
    for line in bad_lines {
        assert!(
            hits.iter().any(|(_, l)| *l == line),
            "expected a finding on line {line}: {findings:?}"
        );
    }
}

#[test]
fn lock_order_is_path_scoped() {
    // The same source under an unclassified path has no lock sites, so
    // the rule cannot fire.
    let src = include_str!("../fixtures/lock_order.rs");
    let findings = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn extent_store_publish_lock_is_classified() {
    let src = include_str!("../fixtures/extent_store.rs");
    // The extent.rs path activates the publish classification.
    let findings = check_file("crates/pagestore/src/extent.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        1,
        "exactly the held-publish re-acquisition, none of the clean \
         functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    let bad_line = src
        .lines()
        .position(|l| l.contains("other.publish.lock()") && l.contains("let b"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad acquisition");
    assert_eq!(hits[0].1, bad_line, "{findings:?}");
    // Under an unclassified path the same source is silent.
    let elsewhere = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn arbiter_window_lock_is_classified() {
    let src = include_str!("../fixtures/arbiter_window.rs");
    // The arbiter.rs path activates the window classification.
    let findings = check_file("crates/core/src/arbiter.rs", src, Options::default());
    let hits = rules_hit(&findings);
    assert_eq!(
        hits.len(),
        1,
        "exactly the held-window re-acquisition, none of the clean \
         functions: {findings:?}"
    );
    assert!(hits.iter().all(|(r, _)| *r == "lock-order"));
    let bad_line = src
        .lines()
        .position(|l| l.contains("other.window.lock()") && l.contains("let b"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad acquisition");
    assert_eq!(hits[0].1, bad_line, "{findings:?}");
    // Under an unclassified path the same source is silent.
    let elsewhere = check_file("crates/obs/src/lib.rs", src, Options::default());
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn no_panic_fires_outside_tests_and_respects_escapes() {
    let src = include_str!("../fixtures/no_panic.rs");
    let findings = check_file("crates/wal/src/fixture.rs", src, Options::default());
    let panics: Vec<_> = findings.iter().filter(|f| f.rule == "no-panic").collect();
    // unwrap + expect in parse(), panic! in boom(), unreachable! in
    // cant_happen(). The two annotated unwraps and the #[test] fn are
    // silent.
    assert_eq!(panics.len(), 4, "{findings:?}");
    assert!(
        findings.iter().all(|f| f.rule == "no-panic"),
        "no stray findings: {findings:?}"
    );
}

#[test]
fn pedantic_indexing_is_opt_in() {
    let src = include_str!("../fixtures/no_panic.rs");
    let quiet = check_file("crates/wal/src/fixture.rs", src, Options::default());
    assert!(quiet.iter().all(|f| f.rule != "indexing"));
    let pedantic = check_file("crates/wal/src/fixture.rs", src, Options { pedantic: true });
    assert!(
        pedantic.iter().any(|f| f.rule == "indexing"),
        "{pedantic:?}"
    );
}

#[test]
fn no_io_under_lock_fires_inside_critical_sections_only() {
    let src = include_str!("../fixtures/no_io_under_lock.rs");
    let findings = check_file("crates/wal/src/log.rs", src, Options::default());
    let io: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-io-under-lock")
        .collect();
    // append_bad only: append_staged's guard scope ended, and
    // append_serialized is escape-annotated.
    assert_eq!(io.len(), 1, "{findings:?}");
    let bad_line = src
        .lines()
        .position(|l| l.contains("inner.writer.write_all") && !l.contains("lint:"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains the bad write");
    assert_eq!(io[0].line, bad_line);
}

#[test]
fn bad_escape_flags_malformed_escapes() {
    let src = include_str!("../fixtures/bad_escape.rs");
    // obs is neither a no-panic nor a no-io crate, isolating the rule.
    let findings = check_file("crates/obs/src/fixture.rs", src, Options::default());
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "bad-escape"));
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("unknown rule")));
    assert!(msgs.iter().any(|m| m.contains("no ` -- <reason>`")));
    assert!(msgs.iter().any(|m| m.contains("must be `lint: allow")));
}

#[test]
fn malformed_escape_does_not_suppress() {
    // An invalid escape must not silence the finding it sits on.
    let src = include_str!("../fixtures/bad_escape.rs");
    let findings = check_file("crates/wal/src/fixture.rs", src, Options::default());
    assert_eq!(
        findings.iter().filter(|f| f.rule == "no-panic").count(),
        3,
        "all three unwraps still fire: {findings:?}"
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "bad-escape").count(),
        3
    );
}

#[test]
fn snapshot_completeness_finds_unreachable_counters() {
    let obs = include_str!("../fixtures/snapshot_obs.rs");
    let stats = include_str!("../fixtures/snapshot_stats.rs");
    let buffer = include_str!("../fixtures/snapshot_buffer.rs");
    let findings = snapshot::check(
        ("fixtures/snapshot_obs.rs", obs),
        ("fixtures/snapshot_stats.rs", stats),
        ("fixtures/snapshot_buffer.rs", buffer),
    );
    assert!(findings.iter().all(|f| f.rule == "snapshot-completeness"));
    // Ghost missing from ALL and from name() = 2; orphan_counter = 1;
    // cold_scans + capacity_shifts = 2. The rendered arbiter_shifts and
    // shrink_debt fields stay silent.
    assert_eq!(findings.len(), 5, "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert_eq!(
        msgs.iter().filter(|m| m.contains("OpClass::Ghost")).count(),
        2
    );
    assert!(msgs.iter().any(|m| m.contains("orphan_counter")));
    assert!(msgs.iter().any(|m| m.contains("cold_scans")));
    assert!(msgs.iter().any(|m| m.contains("capacity_shifts")));
    assert!(!msgs.iter().any(|m| m.contains("arbiter_shifts")));
    assert!(!msgs.iter().any(|m| m.contains("shrink_debt")));
}

#[test]
fn atomics_ordering_fires_on_weak_accesses() {
    let src = include_str!("../fixtures/atomics.rs");
    // The arena.rs path activates the `commit_ts`/`head` declarations.
    let findings = check_file("crates/imrs/src/arena.rs", src, Options::default());
    assert!(
        findings.iter().all(|f| f.rule == "atomics-ordering"),
        "no stray findings: {findings:?}"
    );
    // Relaxed publish store + Relaxed load + undeclared field. The
    // correct, stronger-than-declared, and escaped accesses are silent.
    assert_eq!(findings.len(), 3, "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs
        .iter()
        .any(|m| m.contains("`commit_ts.store`") && m.contains("Relaxed")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`head.load`") && m.contains("Relaxed")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`mystery_flag` has no declared")));
}

#[test]
fn atomics_ordering_is_path_scoped() {
    // obs is not an atomics crate; the same source is silent there.
    let src = include_str!("../fixtures/atomics.rs");
    let findings = check_file("crates/obs/src/fixture.rs", src, Options::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn atomics_ordering_checks_cas_slots() {
    let src = include_str!("../fixtures/atomics_cas.rs");
    // The manager.rs path activates the seq-cst `slots` declaration.
    let findings = check_file("crates/txn/src/manager.rs", src, Options::default());
    assert!(findings.iter().all(|f| f.rule == "atomics-ordering"));
    // One weak CAS yields two findings: the AcqRel RMW slot and the
    // Acquire failure-load slot. The SeqCst CAS and swap are silent.
    assert_eq!(findings.len(), 2, "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("AcqRel for its rmw")));
    assert!(msgs.iter().any(|m| m.contains("Acquire for its load")));
}

#[test]
fn wal_before_mutation_requires_append_on_all_paths() {
    let src = include_str!("../fixtures/wal_mutation.rs");
    let findings = check_file("crates/core/src/mutator.rs", src, Options::default());
    assert!(
        findings.iter().all(|f| f.rule == "wal-before-mutation"),
        "no stray findings: {findings:?}"
    );
    // mutate_unlogged, log_after (append-after-mutation ordering bug),
    // log_sometimes (branch-path miss), and via_helper (the default
    // index has no appender entry for log_helper). log_first, log_both,
    // apply_undo (replay), and the escaped purge_like are silent.
    assert_eq!(findings.len(), 4, "{findings:?}");
    let bad_line = |needle: &str, skip: usize| {
        src.lines()
            .enumerate()
            .filter(|(_, l)| l.contains(needle) && !l.trim_start().starts_with("//"))
            .map(|(i, _)| i as u32 + 1)
            .nth(skip)
            .expect("fixture line")
    };
    // First un-commented ridmap.set is mutate_unlogged's.
    assert_eq!(findings[0].line, bad_line("ridmap.set", 0), "{findings:?}");
    assert_eq!(findings[1].line, bad_line("heap.delete", 0), "{findings:?}");
}

#[test]
fn wal_before_mutation_uses_the_appender_index() {
    let src = include_str!("../fixtures/wal_mutation.rs");
    let path = "crates/core/src/mutator.rs";
    // With the workspace index built over the fixture, `log_helper` is
    // recognized as an appender and `via_helper` becomes clean — the
    // three genuinely-unlogged mutations still fire.
    let sources = [(path, src)];
    let idx = btrim_lint::build_index(&sources);
    let findings = btrim_lint::check_file_with(path, src, Options::default(), &idx);
    let wal: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "wal-before-mutation")
        .collect();
    assert_eq!(wal.len(), 3, "{findings:?}");
    let via_line = src
        .lines()
        .position(|l| l.contains("pub fn via_helper"))
        .map(|i| i as u32 + 1)
        .expect("fixture contains via_helper");
    assert!(
        wal.iter().all(|f| f.line < via_line),
        "via_helper must be clean under the index: {findings:?}"
    );
}

#[test]
fn wal_before_mutation_is_crate_scoped() {
    // The rule only gates `core`; the same source elsewhere is silent.
    let src = include_str!("../fixtures/wal_mutation.rs");
    let findings = check_file("crates/obs/src/mutator.rs", src, Options::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn changed_mode_matches_full_run_per_file() {
    // Build a throwaway workspace with one dirty file and one clean
    // file; `check_files` on the dirty file must report exactly what
    // `check_workspace` reports for it.
    let root = std::env::temp_dir().join(format!("btrim-lint-eq-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("bad.rs"),
        include_str!("../fixtures/wal_mutation.rs"),
    )
    .unwrap();
    std::fs::write(
        src_dir.join("clean.rs"),
        "pub fn log_first(&self) {\n    self.sh.append_sys(&rec);\n    self.sh.ridmap.set(row, loc);\n}\n",
    )
    .unwrap();
    let full = btrim_lint::check_workspace(&root, Options::default()).unwrap();
    assert!(!full.is_empty(), "the dirty file must produce findings");
    let one: std::collections::BTreeSet<String> = ["crates/core/src/bad.rs".to_string()].into();
    let changed = btrim_lint::check_files(&root, Options::default(), &one).unwrap();
    let full_for_bad: Vec<_> = full
        .iter()
        .filter(|f| f.file == "crates/core/src/bad.rs")
        .cloned()
        .collect();
    assert_eq!(
        changed, full_for_bad,
        "incremental run must match the full run"
    );
    // The clean file alone reports nothing.
    let clean: std::collections::BTreeSet<String> = ["crates/core/src/clean.rs".to_string()].into();
    let none = btrim_lint::check_files(&root, Options::default(), &clean).unwrap();
    assert!(none.is_empty(), "{none:?}");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn real_workspace_is_clean() {
    // The repo itself must lint clean — same invocation CI runs. Walk
    // up from the manifest dir so the test works from any cwd.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let findings = btrim_lint::check_workspace(root, Options::default()).unwrap();
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
