//! Property tests for the hand-rolled tokenizer.
//!
//! The lexer runs over every source file in the workspace on every CI
//! run, including files mid-edit; it must never panic and its spans
//! must tile the input exactly — any byte lost or double-counted
//! desynchronizes line numbers, and line numbers are how escapes attach
//! to findings.

use btrim_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fragments that stress the tricky lexer states: comment nesting,
/// raw strings, char-vs-lifetime disambiguation, escapes.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() { x.lock(); }".to_string()),
        Just("// line comment\n".to_string()),
        Just("/* block /* nested */ still */".to_string()),
        Just("/* unterminated".to_string()),
        Just("\"str with \\\" escape\"".to_string()),
        Just("\"unterminated".to_string()),
        Just("r#\"raw \" string\"#".to_string()),
        Just("r##\"nested # raw\"##".to_string()),
        Just("'c'".to_string()),
        Just("'\\n'".to_string()),
        Just("'static".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("ident_123".to_string()),
        Just("0x1F_u64".to_string()),
        Just("{ } [ ] ( ) ; , . :: -> => # !".to_string()),
        Just("\n\n\t  \r\n".to_string()),
        Just("€ 日本語 \u{1F600}".to_string()),
        Just("'".to_string()),
        Just("r#".to_string()),
        Just("\\".to_string()),
        Just("r#match".to_string()),
        Just("let r#loop = r#\"x\"#;".to_string()),
        Just("r##\"inner r#\"nested\"# edge\"##".to_string()),
        Just("&'a r#\"raw\"#".to_string()),
        Just("/// doc comment with `unwrap()` and lint: allow(no-panic)\n".to_string()),
        Just("//! module doc\n".to_string()),
        Just("/** block doc */".to_string()),
        Just("/*! inner block doc */".to_string()),
        Just("::".to_string()),
        Just("=>".to_string()),
        Just("->".to_string()),
        Just(":::".to_string()),
        Just("==>".to_string()),
        Just("Ordering::Relaxed".to_string()),
        Just("a::<B>::c".to_string()),
    ]
}

fn source() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..24).prop_map(|v| v.concat())
}

proptest! {
    /// The lexer never panics and every token's span is in-bounds,
    /// non-decreasing, and char-aligned.
    #[test]
    fn lex_never_panics_and_spans_tile(src in source()) {
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            let end = t.start + t.text.len();
            prop_assert!(t.start >= prev_end, "overlapping spans");
            prop_assert!(end <= src.len(), "span out of bounds");
            prop_assert_eq!(&src[t.start..end], t.text);
            prev_end = end;
        }
    }

    /// Line numbers are exactly 1 + the newlines before the token.
    #[test]
    fn line_numbers_match_newline_count(src in source()) {
        for t in lex(&src) {
            let expect = 1 + src[..t.start].bytes().filter(|b| *b == b'\n').count() as u32;
            prop_assert_eq!(t.line, expect, "token {:?} at byte {}", t.text, t.start);
        }
    }

    /// Concatenating all tokens plus the gaps between them recovers the
    /// input byte-for-byte (gaps are pure whitespace).
    #[test]
    fn tokens_and_whitespace_reconstruct_input(src in source()) {
        let tokens = lex(&src);
        let mut rebuilt = String::new();
        let mut pos = 0usize;
        for t in &tokens {
            let gap = &src[pos..t.start];
            prop_assert!(
                gap.chars().all(char::is_whitespace),
                "non-whitespace byte skipped: {gap:?}"
            );
            rebuilt.push_str(gap);
            rebuilt.push_str(t.text);
            pos = t.start + t.text.len();
        }
        rebuilt.push_str(&src[pos..]);
        prop_assert_eq!(rebuilt, src);
    }

    /// Comments are classified as comments — a comment never leaks out
    /// as an identifier or punctuation (that would let `lint:` escapes
    /// or `unwrap()` text inside comments confuse the rules).
    #[test]
    fn comment_text_stays_in_comment_tokens(src in source()) {
        for t in lex(&src) {
            if t.text.starts_with("//") {
                prop_assert_eq!(t.kind, TokKind::LineComment);
            }
            if t.text.starts_with("/*") {
                prop_assert_eq!(t.kind, TokKind::BlockComment);
            }
        }
    }
}

/// Deterministic regression cases that proptest shrinking found awkward
/// or that encode known-tricky Rust lexical corners.
#[test]
fn lexer_corner_cases() {
    // Lifetime vs char literal.
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
    assert!(toks.iter().any(|t| t.text == "'a"));
    assert!(toks.iter().any(|t| t.text == "'x'"));
    // Raw string containing what looks like a comment and an escape.
    let toks = lex(r####"let s = r#"// lint: allow(no-panic) -- not real"#;"####);
    assert!(
        toks.iter().all(|t| t.kind != TokKind::LineComment),
        "comment-looking text inside a raw string must stay a string"
    );
    // Unterminated block comment consumes to EOF without panicking.
    let toks = lex("code(); /* trailing");
    assert_eq!(toks.last().unwrap().kind, TokKind::BlockComment);
}

/// The structural two-character operators lex as single tokens — the
/// rules match on `::` (paths, `Ordering::Relaxed`) and `=>`
/// (match arms), so splitting them breaks the CFG parser silently.
#[test]
fn two_char_operators_are_single_tokens() {
    let toks = lex("m::n(Ordering::Relaxed) => |x| -> u64 { x }");
    let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
    assert_eq!(texts.iter().filter(|t| **t == "::").count(), 2);
    assert!(texts.contains(&"=>"));
    assert!(texts.contains(&"->"));
    assert!(!texts.contains(&":"), "no split `::` halves: {texts:?}");
    // A lone colon is still a colon, and `:::` is `::` + `:`.
    let texts: Vec<&str> = lex("a: b ::: c")
        .iter()
        .filter(|t| t.is_significant())
        .map(|t| t.text)
        .collect();
    assert_eq!(texts, ["a", ":", "b", "::", ":", "c"]);
}

/// Raw identifiers lex as one identifier token, keyword part included;
/// otherwise `r#match` would open a raw string and eat the file.
#[test]
fn raw_identifiers_do_not_open_raw_strings() {
    let toks = lex("let r#match = r#loop.lock();");
    assert!(toks
        .iter()
        .any(|t| t.text == "r#match" && t.kind == TokKind::Ident));
    assert!(toks
        .iter()
        .any(|t| t.text == "r#loop" && t.kind == TokKind::Ident));
    assert!(toks.iter().all(|t| t.kind != TokKind::StrLit));
    // And a real raw string right next to a lifetime still closes on
    // its own guard count.
    let toks = lex("&'a r##\"has \"# inside\"## trailing");
    let s = toks
        .iter()
        .find(|t| t.kind == TokKind::StrLit)
        .expect("raw string");
    assert_eq!(s.text, "r##\"has \"# inside\"##");
    assert!(toks.iter().any(|t| t.text == "trailing"));
}

/// Doc comments keep their comment kind (so escape parsing can skip
/// them) and never hide following code.
#[test]
fn doc_comments_lex_as_comments() {
    let src = "/// outer `unwrap()`\n//! inner\n/** block */\nfn f() {}";
    let toks = lex(src);
    assert_eq!(
        toks.iter()
            .filter(|t| matches!(t.kind, TokKind::LineComment))
            .count(),
        2
    );
    assert_eq!(
        toks.iter()
            .filter(|t| matches!(t.kind, TokKind::BlockComment))
            .count(),
        1
    );
    assert!(toks.iter().any(|t| t.text == "fn"));
}
