//! The JSON renderer must emit syntactically valid output whatever
//! bytes end up in finding messages — CI machine-parses it, so a
//! malformed document is a broken pipeline, not a cosmetic bug.

use btrim_lint::json;
use btrim_lint::rules::Finding;

fn finding(file: &str, line: u32, msg: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: "no-panic",
        msg: msg.to_string(),
    }
}

#[test]
fn empty_findings_render_valid_json() {
    let doc = json::render(&[]);
    json::validate(&doc).unwrap();
    assert!(doc.contains("\"count\": 0"));
    assert!(doc.contains("\"findings\": []"));
}

#[test]
fn hostile_messages_render_valid_json() {
    let findings = vec![
        finding("crates/a.rs", 1, "quote \" backslash \\ done"),
        finding("crates/b.rs", 2, "newline\nand\ttab\rand\u{1}control"),
        finding("crates/c.rs", 3, "unicode € 日本語 \u{1F600}"),
        finding("crates/d\"e.rs", 4, "brace {\"json\": [1,2]} inside"),
    ];
    let doc = json::render(&findings);
    json::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
    assert!(doc.contains("\"count\": 4"));
    // The control character must be \u-escaped, never raw.
    assert!(doc.contains("\\u0001"));
    assert!(!doc.bytes().any(|b| b < 0x20 && b != b'\n'));
}

#[test]
fn renderer_preserves_finding_fields() {
    let doc = json::render(&[finding("crates/x.rs", 42, "msg")]);
    json::validate(&doc).unwrap();
    assert!(doc.contains("\"file\": \"crates/x.rs\""));
    assert!(doc.contains("\"line\": 42"));
    assert!(doc.contains("\"rule\": \"no-panic\""));
    assert!(doc.contains("\"message\": \"msg\""));
}

#[test]
fn validator_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "{\"a\": }",
        "{\"a\": 1,}",
        "[1, 2",
        "\"unterminated",
        "{\"a\": 01e}",
        "nul",
        "{} trailing",
        "{\"a\": \"raw\ncontrol\"}",
        "{\"k\" 1}",
    ] {
        assert!(json::validate(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn validator_accepts_well_formed_documents() {
    for good in [
        "null",
        "true",
        " -12.5e+3 ",
        "{\"a\": [1, {\"b\": \"c\\u00e9\"}], \"d\": false}",
        "[]",
        "\"\\\\\\\"\"",
    ] {
        json::validate(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
    }
}
