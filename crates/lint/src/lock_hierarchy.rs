// The declared lock hierarchy — the single source of truth shared by
// the static lock-order lint (`btrim-lint`, which `include!`s this file
// as `btrim_lint::hierarchy`) and the debug-build lock-rank witness in
// the vendored `shims/parking_lot` (which `include!`s it as
// `parking_lot::lock_rank`). Editing a rank here retunes both checkers
// at once; they cannot drift apart.
//
// A lock may only be acquired (blocking) while every lock currently
// held by the thread has a strictly smaller rank. Rank 0 is "unranked":
// such locks are invisible to the witness and must be leaves (never
// held across another classified acquisition). The order below is
// derived from the engine as built through PR 4:
//
// * `maintenance_gate` is taken first and held across an entire
//   pack/GC/tuner cycle, which fetches pages and appends WAL records —
//   so engine state ranks below everything.
// * `evict_one` publishes a frame-state transition (frame `io` mutex)
//   while still inside the shard lock — so frames rank above shards.
// * Migration and pack append WAL records *before* touching the
//   RID-Map, and RID-Map shards are self-contained, so the RID-Map sits
//   between frames and the log without conflict.
// * The group-commit leader drops the generation lock before calling
//   `sink.flush()` (which takes the log's inner lock) — so the
//   generation lock must rank above the WAL log, making a flush under
//   the generation lock an immediate witness failure.

/// Engine maintenance gate (`core::engine::Shared::maintenance_gate`).
pub const ENGINE_STATE: u16 = 10;
/// Memory-arbiter window state (`core::arbiter::MemoryArbiter::window`).
/// Taken only from maintenance (under the gate) to snapshot the
/// previous window's counters and tally hysteresis votes; the budget
/// retargets it decides (`ImrsStore::set_budget`, `BufferCache::
/// set_capacity`) touch atomics and shard locks, so it ranks between
/// the gate and the buffer shards and is never held across I/O.
pub const MEM_ARBITER: u16 = 12;
/// Transaction-registry overflow table (`txn::manager::TxnRegistry::
/// overflow`). Taken only when more transactions are in flight than the
/// registry has lock-free slots; begin/commit/abort on the slot path and
/// every snapshot read are atomics-only and never touch it. Ranks below
/// the storage locks because `begin` can run under the maintenance gate
/// (internal migration transactions) but never inside a shard or frame.
pub const TXN_REGISTRY: u16 = 15;
/// Buffer-cache shard locks (`pagestore::buffer::Shard::inner`).
pub const BUFFER_SHARD: u16 = 20;
/// Frame latches: page data `RwLock` and the frame-state `io` mutex
/// (`pagestore::buffer::Frame::{data, io}`). Never nested in each other.
pub const FRAME: u16 = 30;
/// RID-Map shards (`imrs::ridmap::RidMap::shards`).
pub const RID_MAP: u16 = 40;
/// Before-image side-store shards (`core::sidestore::SideStore::shards`).
/// Writers stash a pre-update image *before* touching the page (so they
/// hold no frame latch), and purge runs from maintenance before WAL
/// appends — between the RID-Map and the log.
pub const SIDE_STORE: u16 = 45;
/// Frozen-extent directory publish lock (`pagestore::extent::
/// ExtentStore::publish`). Held only for the directory-slot install of
/// an already-encoded extent — never across encoding, I/O, or a WAL
/// append. Freeze stashes before-images (side-store) first and appends
/// the extent WAL record after the publish lock is released, so the
/// rank sits between the side store and the log.
pub const EXTENT_STORE: u16 = 48;
/// WAL inner locks (`wal::log::{MemLog, FileLog}::inner`).
pub const WAL_LOG: u16 = 50;
/// Active-transaction syslog floor table (`core::engine::Shared::
/// txn_syslog_floor`): first-record LSN of every transaction alive on
/// the page log, read by the fuzzy checkpoint to pick its low-water
/// truncation LSN. Maintained right after `append_sys` returns — the
/// log lock is already released, but DML callers may still hold locks
/// up to the WAL tier, so the table ranks just above the log.
pub const TXN_LOG_FLOOR: u16 = 55;
/// Group-commit generation state (`wal::group::GroupCommitter::state`).
pub const GROUP_COMMIT: u16 = 60;

/// `(class name, rank)` pairs, ascending — what the lint rule engine
/// iterates and what witness panic messages cite.
pub const LOCK_RANKS: &[(&str, u16)] = &[
    ("engine-state", ENGINE_STATE),
    ("mem-arbiter", MEM_ARBITER),
    ("txn-registry", TXN_REGISTRY),
    ("buffer-shard", BUFFER_SHARD),
    ("frame", FRAME),
    ("rid-map", RID_MAP),
    ("side-store", SIDE_STORE),
    ("extent-store", EXTENT_STORE),
    ("wal-log", WAL_LOG),
    ("txn-log-floor", TXN_LOG_FLOOR),
    ("group-commit", GROUP_COMMIT),
];

/// Display name for a rank (panic messages, lint findings).
pub fn rank_name(rank: u16) -> &'static str {
    let mut i = 0;
    while i < LOCK_RANKS.len() {
        if LOCK_RANKS[i].1 == rank {
            return LOCK_RANKS[i].0;
        }
        i += 1;
    }
    "unranked"
}
