//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p btrim-lint -- check [--pedantic] [--root <dir>]
//!                                  [--format text|json] [--changed <base>]
//! ```
//!
//! Findings print to stdout, one per line, as `file:line:rule: message`
//! (stable and greppable; sorted by file, then line, then rule), or as
//! one JSON document with `--format json`. `--changed <base>` lints
//! only the files `git diff --name-only <base>` reports — the workspace
//! symbol index is still built from every file, so the findings on a
//! changed file are exactly what a full run would report for it. Exit
//! codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use btrim_lint::{check_files, check_workspace, json, Options};

fn usage() -> ExitCode {
    eprintln!(
        "usage: btrim-lint check [--pedantic] [--root <dir>] \
         [--format text|json] [--changed <base>]"
    );
    ExitCode::from(2)
}

/// Files changed since `base`, as workspace-relative paths, restricted
/// to the `crates/*/src` trees the linter reads.
fn changed_files(root: &Path, base: &str) -> Result<BTreeSet<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", "-z", base, "--", "crates"])
        .output()
        .map_err(|e| format!("running git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .split('\0')
        .filter(|p| p.ends_with(".rs") && p.contains("/src/"))
        .map(str::to_string)
        .collect())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        return usage();
    }
    let mut opts = Options::default();
    let mut root = PathBuf::from(".");
    let mut json_out = false;
    let mut changed: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pedantic" => opts.pedantic = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json_out = false,
                Some("json") => json_out = true,
                _ => return usage(),
            },
            "--changed" => match args.next() {
                Some(base) => changed = Some(base),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let result = match &changed {
        None => check_workspace(&root, opts),
        Some(base) => match changed_files(&root, base) {
            Ok(filter) if filter.is_empty() => Ok(Vec::new()),
            Ok(filter) => check_files(&root, opts, &filter),
            Err(e) => {
                eprintln!("btrim-lint: {e}");
                return ExitCode::from(2);
            }
        },
    };
    match result {
        Ok(findings) => {
            if json_out {
                print!("{}", json::render(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                eprintln!("btrim-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("btrim-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("btrim-lint: {e}");
            ExitCode::from(2)
        }
    }
}
