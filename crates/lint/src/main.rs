//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p btrim-lint -- check [--pedantic] [--root <dir>]
//! ```
//!
//! Findings print to stdout, one per line, as `file:line:rule: message`
//! (stable and greppable; sorted by file, then line, then rule). Exit
//! codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use btrim_lint::{check_workspace, Options};

fn usage() -> ExitCode {
    eprintln!("usage: btrim-lint check [--pedantic] [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        return usage();
    }
    let mut opts = Options::default();
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pedantic" => opts.pedantic = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match check_workspace(&root, opts) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("btrim-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("btrim-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("btrim-lint: {e}");
            ExitCode::from(2)
        }
    }
}
