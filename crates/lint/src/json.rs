//! JSON output for findings — hand-rolled, like everything else in this
//! crate (the linter must stay dependency-free so it can lint the
//! workspace that builds it).
//!
//! [`render`] emits one stable document:
//!
//! ```json
//! {
//!   "version": 1,
//!   "count": 2,
//!   "findings": [
//!     {"file": "crates/...", "line": 10, "rule": "lock-order", "message": "..."}
//!   ]
//! }
//! ```
//!
//! [`validate`] is a minimal RFC 8259 syntax checker used by the tests
//! (and available to CI) to prove the renderer never emits malformed
//! output, whatever bytes end up in finding messages.

use crate::rules::Finding;

/// Render findings as a JSON document (sorted order is the caller's
/// job; `check_workspace` already returns findings sorted).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(64 + findings.len() * 128);
    out.push_str("{\n  \"version\": 1,\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        escape_into(&f.file, &mut out);
        out.push_str(", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": ");
        escape_into(f.rule, &mut out);
        out.push_str(", \"message\": ");
        escape_into(&f.msg, &mut out);
        out.push('}');
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// JSON string escaping per RFC 8259: `"`, `\`, and control characters.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let v = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let d = (v >> shift) & 0xF;
                    out.push(char::from_digit(d, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Check that `s` is one syntactically valid JSON value (with nothing
/// but whitespace after it). Returns the byte offset and a message on
/// the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    let Some(&c) = b.get(*i) else {
        return Err(format!("unexpected end of input at offset {i}", i = *i));
    };
    match c {
        b'{' => object(b, i),
        b'[' => array(b, i),
        b'"' => string(b, i),
        b'-' | b'0'..=b'9' => number(b, i),
        b't' => literal(b, i, "true"),
        b'f' => literal(b, i, "false"),
        b'n' => literal(b, i, "null"),
        _ => Err(format!("unexpected byte {c:#04x} at offset {i}", i = *i)),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}", i = *i))
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at offset {i}", i = *i));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}", i = *i));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(&b',') => *i += 1,
            Some(&b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {i}", i = *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(&b',') => *i += 1,
            Some(&b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {i}", i = *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '"'
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at offset {i}", i = *i));
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at offset {i}", i = *i)),
                }
            }
            0x00..=0x1F => return Err(format!("raw control char in string at offset {i}", i = *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let mut digits = 0;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at offset {i}", i = *i));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at offset {i}", i = *i));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    Ok(())
}
