//! The intra-procedural rule engine.
//!
//! All rules are lexical: they run over the token stream of one file,
//! with function bodies segmented by brace matching and lock-guard
//! scopes tracked by `let` bindings and `drop()` calls. That makes them
//! deliberately shallow — a guard smuggled through a helper function is
//! invisible here — which is why the same hierarchy is also enforced
//! dynamically by the `parking_lot` lock-rank witness (see
//! [`crate::hierarchy`]). The static rule catches mistakes at review
//! time; the witness catches whatever lexical analysis cannot see.

use crate::hierarchy;
use crate::lexer::{lex, TokKind, Token};

/// Rule identifiers, as used in findings and `lint: allow(...)` escapes.
pub const RULES: &[&str] = &[
    "lock-order",
    "no-panic",
    "no-io-under-lock",
    "snapshot-completeness",
    "indexing",
    "bad-escape",
];

/// Crates whose non-test code must be panic-free.
const NO_PANIC_CRATES: &[&str] = &["wal", "pagestore", "imrs", "txn", "core"];

/// Crates where I/O must not happen lexically under a classified lock.
const NO_IO_CRATES: &[&str] = &["core", "wal"];

/// Method names that perform (or directly front) device I/O: `std::io`
/// calls plus the `DiskBackend`/`LogSink` trait surface.
const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "sync_all",
    "sync_data",
    "flush",
    "set_len",
    "seek",
    "read_page",
    "write_page",
    "allocate_page",
    "sync",
];

/// Macros that abort the process (or thread) when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One lint finding. Ordered and formatted stably so CI diffs and
/// `grep` pipelines over the output survive refactors of the linter.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Linting options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Also flag slice/array indexing in no-panic crates. Off by
    /// default: indexing after an explicit bounds check is idiomatic in
    /// the page codecs, and flagging it all would bury real findings.
    pub pedantic: bool,
}

/// Classification of lock acquisitions: `(path substring, receiver or
/// callee name, rank)`. A `.lock()/.read()/.write()` (or `try_`
/// variant) whose receiver's final field — or, for method-call
/// receivers like `self.shard(r)`, the method name — matches an entry
/// for the current file is an acquisition of that class. Names are
/// file-scoped so `inner` can mean a buffer shard in one crate and the
/// WAL in another.
pub const LOCK_SITES: &[(&str, &str, u16)] = &[
    (
        "crates/core/src/engine.rs",
        "maintenance_gate",
        hierarchy::ENGINE_STATE,
    ),
    (
        "crates/core/src/arbiter.rs",
        "window",
        hierarchy::MEM_ARBITER,
    ),
    (
        "crates/pagestore/src/buffer.rs",
        "inner",
        hierarchy::BUFFER_SHARD,
    ),
    ("crates/pagestore/src/buffer.rs", "data", hierarchy::FRAME),
    ("crates/pagestore/src/buffer.rs", "io", hierarchy::FRAME),
    ("crates/imrs/src/ridmap.rs", "shard", hierarchy::RID_MAP),
    (
        "crates/pagestore/src/extent.rs",
        "publish",
        hierarchy::EXTENT_STORE,
    ),
    ("crates/wal/src/log.rs", "inner", hierarchy::WAL_LOG),
    ("crates/wal/src/group.rs", "state", hierarchy::GROUP_COMMIT),
];

/// Functions that *themselves* acquire and return a guard (no trailing
/// `.lock()` at the call site). Kept separate from [`LOCK_SITES`]: a
/// name here marks the call `lock_shard(…)` as the acquisition, whereas
/// a name there only classifies the receiver of a `.lock()`-family call
/// (`self.shard(row)` returns the lock, not a guard).
pub const LOCK_FNS: &[(&str, &str, u16)] = &[(
    "crates/pagestore/src/buffer.rs",
    "lock_shard",
    hierarchy::BUFFER_SHARD,
)];

fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn classify(path: &str, name: &str) -> Option<u16> {
    LOCK_SITES
        .iter()
        .find(|(file, n, _)| path.ends_with(file) && *n == name)
        .map(|&(_, _, rank)| rank)
}

fn classify_lock_fn(path: &str, name: &str) -> Option<u16> {
    LOCK_FNS
        .iter()
        .find(|(file, n, _)| path.ends_with(file) && *n == name)
        .map(|&(_, _, rank)| rank)
}

// ---------------------------------------------------------------------
// Escapes: `// lint: allow(<rule>) -- <reason>`
// ---------------------------------------------------------------------

struct Escape {
    rule: String,
    /// Lines the escape covers (its own line; plus the next code line
    /// when the comment stands alone).
    lines: Vec<u32>,
}

/// Parse escapes out of comment tokens. A trailing comment covers its
/// own line; a comment alone on its line covers the next line holding a
/// significant token. A missing ` -- reason` or an unknown rule name is
/// itself a finding (`bad-escape`) — escapes without a recorded "why"
/// rot into unconditional suppressions.
fn collect_escapes(path: &str, tokens: &[Token<'_>]) -> (Vec<Escape>, Vec<Finding>) {
    let mut escapes = Vec::new();
    let mut findings = Vec::new();
    let mut line_has_code = std::collections::HashSet::new();
    for t in tokens {
        if t.is_significant() {
            line_has_code.insert(t.line);
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) never carry
        // escapes — they are prose, and this linter's own docs describe
        // the escape syntax.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        // The escape must lead the comment (`// lint: allow(…) -- …`);
        // a `lint:` buried mid-sentence (or inside a path like
        // `btrim_lint::hierarchy`) is prose, not an escape.
        let stripped = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        let Some(body) = stripped.strip_prefix("lint:") else {
            continue;
        };
        let Some(open) = body.find("allow(") else {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: "lint escape must be `lint: allow(<rule>) -- <reason>`".into(),
            });
            continue;
        };
        let after = &body[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: "unterminated `lint: allow(` escape".into(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) || rule == "bad-escape" {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: format!("unknown rule `{rule}` in lint escape"),
            });
            continue;
        }
        let reason = after[close + 1..]
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: format!("lint escape for `{rule}` has no ` -- <reason>`"),
            });
            continue;
        }
        let mut lines = vec![t.line];
        if !line_has_code.contains(&t.line) {
            // Standalone comment: cover the next code line.
            if let Some(next) = tokens[i + 1..]
                .iter()
                .find(|n| n.is_significant())
                .map(|n| n.line)
            {
                lines.push(next);
            }
        }
        escapes.push(Escape { rule, lines });
    }
    (escapes, findings)
}

/// Lines on which a valid escape for `rule` applies in `src`. Used by
/// cross-file rules whose findings are produced outside [`check_file`].
pub fn escaped_lines(src: &str, rule: &str) -> std::collections::BTreeSet<u32> {
    let tokens = lex(src);
    let (escapes, _) = collect_escapes("", &tokens);
    escapes
        .iter()
        .filter(|e| e.rule == rule)
        .flat_map(|e| e.lines.iter().copied())
        .collect()
}

// ---------------------------------------------------------------------
// Function segmentation (with test/bench exclusion)
// ---------------------------------------------------------------------

/// A function body: the significant tokens between its braces.
struct FnBody<'a> {
    tokens: Vec<Token<'a>>,
}

/// Split the significant tokens of a file into function bodies, skipping
/// anything under a `#[test]`/`#[bench]` function or a `#[cfg(test)]`
/// (or similar test-mentioning attribute) module.
fn function_bodies<'a>(sig: &[Token<'a>]) -> Vec<FnBody<'a>> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut test_attr = false;
    while i < sig.len() {
        let t = &sig[i];
        match t.text {
            "#" => {
                // Attribute: scan the [...] group, noting test markers.
                let mut j = i + 1;
                if j < sig.len() && sig[j].text == "[" {
                    let mut depth = 0usize;
                    while j < sig.len() {
                        match sig[j].text {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" | "bench" => test_attr = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
            "mod" if test_attr => {
                // `#[cfg(test)] mod …` — skip the whole block.
                test_attr = false;
                i = skip_past_block(sig, i);
                continue;
            }
            "fn" => {
                let is_test = test_attr;
                test_attr = false;
                // Find the body's opening brace; a `;` first means a
                // bodiless declaration (trait method, extern).
                let mut j = i + 1;
                while j < sig.len() && sig[j].text != "{" && sig[j].text != ";" {
                    j += 1;
                }
                if j >= sig.len() || sig[j].text == ";" {
                    i = j + 1;
                    continue;
                }
                let (body_end, body) = brace_block(sig, j);
                if !is_test {
                    out.push(FnBody { tokens: body });
                }
                i = body_end;
                continue;
            }
            "struct" | "enum" | "trait" | "impl" | "mod" | "let" | "static" | "const" => {
                test_attr = false;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// From an item keyword at `i`, advance past the next balanced `{…}`
/// block (or past a terminating `;`).
fn skip_past_block(sig: &[Token<'_>], i: usize) -> usize {
    let mut j = i;
    while j < sig.len() && sig[j].text != "{" {
        if sig[j].text == ";" {
            return j + 1;
        }
        j += 1;
    }
    if j >= sig.len() {
        return sig.len();
    }
    brace_block(sig, j).0
}

/// From an opening `{` at `open`, return (index past the matching `}`,
/// the tokens strictly inside).
fn brace_block<'a>(sig: &[Token<'a>], open: usize) -> (usize, Vec<Token<'a>>) {
    let mut depth = 0usize;
    let mut j = open;
    let mut body = Vec::new();
    while j < sig.len() {
        match sig[j].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, body);
                }
            }
            _ => {}
        }
        if j > open {
            body.push(sig[j]);
        }
        j += 1;
    }
    (sig.len(), body)
}

// ---------------------------------------------------------------------
// Per-function rules
// ---------------------------------------------------------------------

/// A lock guard lexically in scope.
struct Guard {
    name: String,
    rank: u16,
    /// Brace depth at the binding; the guard dies when the enclosing
    /// block closes.
    depth: i32,
}

/// How an acquisition token was reached.
enum Acq {
    Blocking,
    Try,
}

fn acquisition_kind(method: &str) -> Option<Acq> {
    match method {
        "lock" | "read" | "write" => Some(Acq::Blocking),
        "try_lock" | "try_read" | "try_write" => Some(Acq::Try),
        _ => None,
    }
}

/// The receiver name to classify for a `.method()` call at `i`: the
/// field before the dot, or — when the receiver is itself a call like
/// `self.shard(row)` — the called method's name.
fn receiver_name<'a>(body: &[Token<'a>], i: usize) -> Option<&'a str> {
    // body[i] is the method ident; body[i-1] must be `.`.
    if i < 2 || body[i - 1].text != "." {
        return None;
    }
    let prev = &body[i - 2];
    if prev.kind == TokKind::Ident {
        return Some(prev.text);
    }
    if prev.text == ")" {
        // Walk back over the argument list to the method name.
        let mut depth = 0i32;
        let mut j = i - 2;
        loop {
            match body[j].text {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j >= 1 && body[j - 1].kind == TokKind::Ident {
            return Some(body[j - 1].text);
        }
    }
    None
}

/// Run the intra-procedural rules over one function body.
fn check_body(path: &str, body: &[Token<'_>], opts: Options, findings: &mut Vec<Finding>) {
    let krate = crate_of(path).unwrap_or("");
    let no_panic = NO_PANIC_CRATES.contains(&krate);
    let no_io = NO_IO_CRATES.contains(&krate);

    let mut held: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    // The binding target of the current statement, if any (`let g = …`
    // or a `g = …` re-acquisition after an explicit `drop(g)`).
    let mut binding: Option<String> = None;
    let mut stmt_start = true;

    for i in 0..body.len() {
        let t = &body[i];
        let next = body.get(i + 1).map(|n| n.text);
        match t.text {
            "{" => {
                depth += 1;
                stmt_start = true;
                continue;
            }
            "}" => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
                stmt_start = true;
                binding = None;
                continue;
            }
            ";" => {
                stmt_start = true;
                binding = None;
                continue;
            }
            _ => {}
        }

        if stmt_start {
            if t.text == "let" {
                binding = body[i + 1..]
                    .iter()
                    .take_while(|n| n.text != "=" && n.text != ";")
                    .find(|n| {
                        n.kind == TokKind::Ident && !matches!(n.text, "mut" | "Some" | "Ok" | "Err")
                    })
                    .map(|n| n.text.to_string());
            } else if t.kind == TokKind::Ident && next == Some("=") {
                // Possible re-acquisition: `st = self.state.lock()`.
                binding = Some(t.text.to_string());
            }
        }
        if t.kind == TokKind::Ident || t.text == "if" {
            // `if let Some(g) = x.try_lock()` also binds a guard.
            if t.text == "if" && next == Some("let") {
                stmt_start = true;
                continue;
            }
        }
        stmt_start = false;

        // drop(guard) ends a guard's scope early.
        if t.text == "drop" && next == Some("(") {
            if let Some(name) = body.get(i + 2) {
                if body.get(i + 3).map(|n| n.text) == Some(")") {
                    if let Some(pos) = held.iter().rposition(|g| g.name == name.text) {
                        held.remove(pos);
                    }
                }
            }
            continue;
        }

        if t.kind != TokKind::Ident || next != Some("(") {
            continue;
        }

        // Lock acquisitions: `.lock()` family on classified receivers,
        // plus guard-returning callables like `lock_shard(…)`.
        let acq = if let Some(kind) = acquisition_kind(t.text) {
            receiver_name(body, i)
                .and_then(|r| classify(path, r))
                .map(|rank| (kind, rank))
        } else {
            classify_lock_fn(path, t.text).map(|rank| (Acq::Blocking, rank))
        };
        if let Some((kind, rank)) = acq {
            match kind {
                Acq::Blocking => {
                    for g in &held {
                        if g.rank >= rank {
                            findings.push(Finding {
                                file: path.to_string(),
                                line: t.line,
                                rule: "lock-order",
                                msg: format!(
                                    "acquires {} (rank {rank}) while holding {} (rank {}); \
                                     declared order: {}",
                                    hierarchy::rank_name(rank),
                                    hierarchy::rank_name(g.rank),
                                    g.rank,
                                    order_string(),
                                ),
                            });
                        }
                    }
                    if let Some(name) = binding.take() {
                        held.push(Guard { name, rank, depth });
                    }
                }
                // `try_*` cannot block, so it cannot deadlock at the
                // acquisition itself, and lexically the call often sits
                // in a fallback (`match x.try_read() { None => x.read() }`)
                // where nothing is held when it fails. Guards it *does*
                // produce are invisible to this pass; the runtime
                // lock-rank witness tracks them instead. The binding is
                // left in place so a blocking retry in the fallback arm
                // claims it.
                Acq::Try => {}
            }
            continue;
        }

        // I/O under a classified guard.
        if no_io
            && IO_METHODS.contains(&t.text)
            && i >= 1
            && body[i - 1].text == "."
            && !held.is_empty()
        {
            let worst = held.iter().map(|g| g.rank).max().unwrap_or(0);
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "no-io-under-lock",
                msg: format!(
                    "calls `{}` while holding {} — move the I/O outside the \
                     critical section or annotate why it must stay",
                    t.text,
                    hierarchy::rank_name(worst),
                ),
            });
        }

        // Panicking calls.
        if no_panic && matches!(t.text, "unwrap" | "expect") && i >= 1 && body[i - 1].text == "." {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "no-panic",
                msg: format!(
                    "`.{}()` in non-test engine code — return a typed \
                     `BtrimError` instead",
                    t.text
                ),
            });
        }
    }

    // Panic macros and pedantic indexing need their own scans (the main
    // loop above keys on `ident (`-shaped calls).
    if no_panic {
        for (i, t) in body.iter().enumerate() {
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text)
                && body.get(i + 1).map(|n| n.text) == Some("!")
            {
                findings.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    msg: format!("`{}!` in non-test engine code", t.text),
                });
            }
            if opts.pedantic
                && t.text == "["
                && i >= 1
                && (body[i - 1].kind == TokKind::Ident
                    || body[i - 1].text == ")"
                    || body[i - 1].text == "]")
            {
                findings.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: "indexing",
                    msg: "slice indexing can panic; prefer `.get(..)` (pedantic)".into(),
                });
            }
        }
    }
}

fn order_string() -> String {
    hierarchy::LOCK_RANKS
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(" < ")
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Lint one file's source. `path` is the workspace-relative path (it
/// selects which crates' rules apply and how receivers classify).
/// Returns findings with escapes already applied.
pub fn check_file(path: &str, src: &str, opts: Options) -> Vec<Finding> {
    let tokens = lex(src);
    let (escapes, mut findings) = collect_escapes(path, &tokens);
    let sig: Vec<Token<'_>> = tokens
        .iter()
        .filter(|t| t.is_significant())
        .copied()
        .collect();
    for body in function_bodies(&sig) {
        check_body(path, &body.tokens, opts, &mut findings);
    }
    findings.retain(|f| {
        f.rule == "bad-escape"
            || !escapes
                .iter()
                .any(|e| e.rule == f.rule && e.lines.contains(&f.line))
    });
    findings.sort();
    findings.dedup();
    findings
}
