//! The intra-procedural rule engine.
//!
//! All rules are lexical: they run over the token stream of one file,
//! with function bodies segmented by brace matching and then parsed
//! into a CFG-lite statement tree ([`crate::cfg`]). Guard scopes and
//! the WAL-first dataflow fork per branch arm and join at the merge
//! point, so a guard dropped on one path stays held on the other and a
//! mutation is only clean when *every* surviving path logged first.
//! That is still deliberately shallow — a guard smuggled through a
//! helper function is invisible here — which is why the same hierarchy
//! is also enforced dynamically by the `parking_lot` lock-rank witness
//! (see [`crate::hierarchy`]), and the atomics discipline by the
//! debug-build witness in `btrim_common::atomics`. The static rules
//! catch mistakes at review time; the witnesses catch whatever lexical
//! analysis cannot see.

use crate::atomics as adisc;
use crate::cfg::{self, Node};
use crate::hierarchy;
use crate::index::WorkspaceIndex;
use crate::lexer::{lex, TokKind, Token};
use crate::waldisc;

/// Rule identifiers, as used in findings and `lint: allow(...)` escapes.
pub const RULES: &[&str] = &[
    "lock-order",
    "no-panic",
    "no-io-under-lock",
    "snapshot-completeness",
    "indexing",
    "atomics-ordering",
    "wal-before-mutation",
    "bad-escape",
];

/// Crates whose non-test code must be panic-free.
const NO_PANIC_CRATES: &[&str] = &["wal", "pagestore", "imrs", "txn", "core"];

/// Crates where I/O must not happen lexically under a classified lock.
const NO_IO_CRATES: &[&str] = &["core", "wal"];

/// Crates whose atomic fields must declare a protocol in
/// `atomics_discipline.rs` (and whose access sites are checked
/// against it).
const ATOMICS_CRATES: &[&str] = &["common", "imrs", "txn", "pagestore", "core"];

/// The `std::sync::atomic` type names the declaration-completeness
/// scan recognises. An exact list (not an `Atomic` prefix test) so
/// project types like `AtomicOp` don't trip it.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Method names that perform (or directly front) device I/O: `std::io`
/// calls plus the `DiskBackend`/`LogSink` trait surface.
const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "sync_all",
    "sync_data",
    "flush",
    "set_len",
    "seek",
    "read_page",
    "write_page",
    "allocate_page",
    "sync",
];

/// Macros that abort the process (or thread) when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One lint finding. Ordered and formatted stably so CI diffs and
/// `grep` pipelines over the output survive refactors of the linter.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Linting options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Also flag slice/array indexing in no-panic crates. Off by
    /// default: indexing after an explicit bounds check is idiomatic in
    /// the page codecs, and flagging it all would bury real findings.
    pub pedantic: bool,
}

/// Classification of lock acquisitions: `(path substring, receiver or
/// callee name, rank)`. A `.lock()/.read()/.write()` (or `try_`
/// variant) whose receiver's final field — or, for method-call
/// receivers like `self.shard(r)`, the method name — matches an entry
/// for the current file is an acquisition of that class. Names are
/// file-scoped so `inner` can mean a buffer shard in one crate and the
/// WAL in another.
pub const LOCK_SITES: &[(&str, &str, u16)] = &[
    (
        "crates/core/src/engine.rs",
        "maintenance_gate",
        hierarchy::ENGINE_STATE,
    ),
    (
        "crates/core/src/arbiter.rs",
        "window",
        hierarchy::MEM_ARBITER,
    ),
    (
        "crates/pagestore/src/buffer.rs",
        "inner",
        hierarchy::BUFFER_SHARD,
    ),
    ("crates/pagestore/src/buffer.rs", "data", hierarchy::FRAME),
    ("crates/pagestore/src/buffer.rs", "io", hierarchy::FRAME),
    ("crates/imrs/src/ridmap.rs", "shard", hierarchy::RID_MAP),
    (
        "crates/pagestore/src/extent.rs",
        "publish",
        hierarchy::EXTENT_STORE,
    ),
    ("crates/wal/src/log.rs", "inner", hierarchy::WAL_LOG),
    ("crates/wal/src/group.rs", "state", hierarchy::GROUP_COMMIT),
];

/// Functions that *themselves* acquire and return a guard (no trailing
/// `.lock()` at the call site). Kept separate from [`LOCK_SITES`]: a
/// name here marks the call `lock_shard(…)` as the acquisition, whereas
/// a name there only classifies the receiver of a `.lock()`-family call
/// (`self.shard(row)` returns the lock, not a guard).
pub const LOCK_FNS: &[(&str, &str, u16)] = &[(
    "crates/pagestore/src/buffer.rs",
    "lock_shard",
    hierarchy::BUFFER_SHARD,
)];

fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn classify(path: &str, name: &str) -> Option<u16> {
    LOCK_SITES
        .iter()
        .find(|(file, n, _)| path.ends_with(file) && *n == name)
        .map(|&(_, _, rank)| rank)
}

fn classify_lock_fn(path: &str, name: &str) -> Option<u16> {
    LOCK_FNS
        .iter()
        .find(|(file, n, _)| path.ends_with(file) && *n == name)
        .map(|&(_, _, rank)| rank)
}

// ---------------------------------------------------------------------
// Escapes: `// lint: allow(<rule>) -- <reason>`
// ---------------------------------------------------------------------

struct Escape {
    rule: String,
    /// Lines the escape covers (its own line; plus the next code line
    /// when the comment stands alone).
    lines: Vec<u32>,
}

/// Parse escapes out of comment tokens. A trailing comment covers its
/// own line; a comment alone on its line covers the next line holding a
/// significant token. A missing ` -- reason` or an unknown rule name is
/// itself a finding (`bad-escape`) — escapes without a recorded "why"
/// rot into unconditional suppressions.
fn collect_escapes(path: &str, tokens: &[Token<'_>]) -> (Vec<Escape>, Vec<Finding>) {
    let mut escapes = Vec::new();
    let mut findings = Vec::new();
    let mut line_has_code = std::collections::HashSet::new();
    for t in tokens {
        if t.is_significant() {
            line_has_code.insert(t.line);
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) never carry
        // escapes — they are prose, and this linter's own docs describe
        // the escape syntax.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        // The escape must lead the comment (`// lint: allow(…) -- …`);
        // a `lint:` buried mid-sentence (or inside a path like
        // `btrim_lint::hierarchy`) is prose, not an escape.
        let stripped = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        let Some(body) = stripped.strip_prefix("lint:") else {
            continue;
        };
        let Some(open) = body.find("allow(") else {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: "lint escape must be `lint: allow(<rule>) -- <reason>`".into(),
            });
            continue;
        };
        let after = &body[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: "unterminated `lint: allow(` escape".into(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) || rule == "bad-escape" {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: format!("unknown rule `{rule}` in lint escape"),
            });
            continue;
        }
        let reason = after[close + 1..]
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "bad-escape",
                msg: format!("lint escape for `{rule}` has no ` -- <reason>`"),
            });
            continue;
        }
        let mut lines = vec![t.line];
        if !line_has_code.contains(&t.line) {
            // Standalone comment: cover the next statement — every line
            // from the next significant token up to its terminating `;`
            // or opening `{` (rustfmt wraps method chains, so the access
            // the escape vouches for often sits on a continuation line).
            for n in tokens[i + 1..].iter().filter(|n| n.is_significant()) {
                lines.push(n.line);
                if n.text == ";" || n.text == "{" {
                    break;
                }
            }
        }
        escapes.push(Escape { rule, lines });
    }
    (escapes, findings)
}

/// Lines on which a valid escape for `rule` applies in `src`. Used by
/// cross-file rules whose findings are produced outside [`check_file`].
pub fn escaped_lines(src: &str, rule: &str) -> std::collections::BTreeSet<u32> {
    let tokens = lex(src);
    let (escapes, _) = collect_escapes("", &tokens);
    escapes
        .iter()
        .filter(|e| e.rule == rule)
        .flat_map(|e| e.lines.iter().copied())
        .collect()
}

// ---------------------------------------------------------------------
// Function segmentation (with test/bench exclusion)
// ---------------------------------------------------------------------

/// A function body: the significant tokens between its braces, plus the
/// function's name (used by the wal-before-mutation replay classifier
/// and the workspace appender index).
pub struct FnBody<'a> {
    pub name: Option<&'a str>,
    pub tokens: Vec<Token<'a>>,
}

/// A file split into its checkable parts.
pub struct Segmented<'a> {
    /// Non-test function bodies, in source order.
    pub fns: Vec<FnBody<'a>>,
    /// Every significant token outside test functions and test modules
    /// (struct declarations, constants, *and* the fn bodies again) —
    /// the stream the atomics declaration/access scans run over.
    pub nontest: Vec<Token<'a>>,
}

/// Split the significant tokens of a file, skipping anything under a
/// `#[test]`/`#[bench]` function or a `#[cfg(test)]` (or similar
/// test-mentioning attribute) module.
pub fn segment<'a>(sig: &[Token<'a>]) -> Segmented<'a> {
    let mut fns = Vec::new();
    let mut nontest = Vec::new();
    let mut i = 0;
    let mut test_attr = false;
    while i < sig.len() {
        let t = &sig[i];
        match t.text {
            "#" => {
                // Attribute: scan the [...] group, noting test markers.
                let mut j = i + 1;
                if j < sig.len() && sig[j].text == "[" {
                    let mut depth = 0usize;
                    while j < sig.len() {
                        match sig[j].text {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" | "bench" => test_attr = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
            "mod" if test_attr => {
                // `#[cfg(test)] mod …` — skip the whole block.
                test_attr = false;
                i = skip_past_block(sig, i);
                continue;
            }
            "fn" => {
                let is_test = test_attr;
                test_attr = false;
                let name = sig
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text);
                // Find the body's opening brace; a `;` first means a
                // bodiless declaration (trait method, extern).
                let mut j = i + 1;
                while j < sig.len() && sig[j].text != "{" && sig[j].text != ";" {
                    j += 1;
                }
                if j >= sig.len() || sig[j].text == ";" {
                    if !is_test {
                        nontest.extend_from_slice(&sig[i..j.min(sig.len())]);
                    }
                    i = j + 1;
                    continue;
                }
                let (body_end, body) = brace_block(sig, j);
                if !is_test {
                    nontest.extend_from_slice(&sig[i..j]);
                    nontest.extend_from_slice(&body);
                    fns.push(FnBody { name, tokens: body });
                }
                i = body_end;
                continue;
            }
            "struct" | "enum" | "trait" | "impl" | "mod" | "let" | "static" | "const" => {
                test_attr = false;
                nontest.push(*t);
            }
            _ => {
                nontest.push(*t);
            }
        }
        i += 1;
    }
    Segmented { fns, nontest }
}

/// From an item keyword at `i`, advance past the next balanced `{…}`
/// block (or past a terminating `;`).
fn skip_past_block(sig: &[Token<'_>], i: usize) -> usize {
    let mut j = i;
    while j < sig.len() && sig[j].text != "{" {
        if sig[j].text == ";" {
            return j + 1;
        }
        j += 1;
    }
    if j >= sig.len() {
        return sig.len();
    }
    brace_block(sig, j).0
}

/// From an opening `{` at `open`, return (index past the matching `}`,
/// the tokens strictly inside).
fn brace_block<'a>(sig: &[Token<'a>], open: usize) -> (usize, Vec<Token<'a>>) {
    let mut depth = 0usize;
    let mut j = open;
    let mut body = Vec::new();
    while j < sig.len() {
        match sig[j].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, body);
                }
            }
            _ => {}
        }
        if j > open {
            body.push(sig[j]);
        }
        j += 1;
    }
    (sig.len(), body)
}

// ---------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------

/// The receiver name to classify for a `.method()` call at `i`: the
/// field before the dot, the collection behind an index expression
/// (`self.slots[i].load(…)` → `slots`), or — when the receiver is
/// itself a call like `self.shard(row)` — the called method's name.
fn receiver_name<'a>(body: &[Token<'a>], i: usize) -> Option<&'a str> {
    // body[i] is the method ident; body[i-1] must be `.`.
    if i < 2 || body[i - 1].text != "." {
        return None;
    }
    let mut j = i - 2;
    if body[j].text == "]" {
        // Index expression: walk back over `[…]` to the collection.
        let mut depth = 0i32;
        loop {
            match body[j].text {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    let prev = &body[j];
    if prev.kind == TokKind::Ident {
        return Some(prev.text);
    }
    if prev.text == ")" {
        // Walk back over the argument list to the method name.
        let mut depth = 0i32;
        loop {
            match body[j].text {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j >= 1 && body[j - 1].kind == TokKind::Ident {
            return Some(body[j - 1].text);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Guard tracking over the CFG tree (lock-order, no-io-under-lock)
// ---------------------------------------------------------------------

/// A lock guard in scope on some path.
#[derive(Clone)]
struct Guard {
    name: String,
    rank: u16,
    /// Tree depth at the binding; the guard dies when the enclosing
    /// scope/arm closes.
    depth: i32,
}

/// How an acquisition token was reached.
enum Acq {
    Blocking,
    Try,
}

fn acquisition_kind(method: &str) -> Option<Acq> {
    match method {
        "lock" | "read" | "write" => Some(Acq::Blocking),
        "try_lock" | "try_read" | "try_write" => Some(Acq::Try),
        _ => None,
    }
}

/// Path state for the guard walk.
#[derive(Clone, Default)]
struct GuardState {
    held: Vec<Guard>,
    /// The binding target of the current statement, if any (`let g = …`
    /// or a `g = …` re-acquisition after an explicit `drop(g)`).
    binding: Option<String>,
    /// A `return`/`break`/`continue` was seen; the path diverges once
    /// its expression finishes (at `;` or scope/arm end).
    pending: bool,
    /// This path has exited the function/loop; nothing after runs.
    diverged: bool,
}

impl GuardState {
    fn settle(&mut self) {
        if self.pending {
            self.pending = false;
            self.diverged = true;
        }
    }
}

struct GuardCtx<'p> {
    path: &'p str,
    no_io: bool,
}

fn walk_guards(
    ctx: &GuardCtx<'_>,
    nodes: &[Node<'_>],
    st: &mut GuardState,
    depth: i32,
    findings: &mut Vec<Finding>,
) {
    for n in nodes {
        if st.diverged {
            return;
        }
        match n {
            Node::Run(toks) => scan_guard_run(ctx, toks, st, depth, findings),
            Node::Scope { nodes, diverging } => {
                if *diverging {
                    // `let … else { … }`: the block only runs on the
                    // refuted path, which must diverge — walk a copy
                    // (to check its contents) and discard it.
                    let mut sub = st.clone();
                    sub.pending = false;
                    walk_guards(ctx, nodes, &mut sub, depth + 1, findings);
                } else {
                    walk_guards(ctx, nodes, st, depth + 1, findings);
                    st.held.retain(|g| g.depth <= depth);
                    st.settle();
                    st.binding = None;
                }
            }
            Node::Branch { arms, exhaustive } => {
                let base = st.clone();
                let mut merged: Vec<Guard> = Vec::new();
                let mut any_live = false;
                if !*exhaustive {
                    // Fall-through path: the branch did not run.
                    any_live = true;
                    merged = base.held.clone();
                }
                for arm in arms {
                    let mut sub = base.clone();
                    sub.pending = false;
                    walk_guards(ctx, arm, &mut sub, depth + 1, findings);
                    sub.held.retain(|g| g.depth <= depth);
                    sub.settle();
                    if !sub.diverged {
                        any_live = true;
                        for g in sub.held {
                            if !merged.iter().any(|m| m.name == g.name && m.rank == g.rank) {
                                merged.push(g);
                            }
                        }
                    }
                }
                st.held = merged;
                st.binding = None;
                st.pending = base.pending;
                st.diverged = !any_live;
            }
            Node::Loop(body) => {
                // Zero-or-more iterations: check the body on a copy of
                // the incoming state, then keep the incoming state
                // (guards acquired inside die at the body's scope; a
                // drop() of an outer guard on some iteration must not
                // un-hold it, so union-with-incoming == incoming).
                let mut sub = st.clone();
                sub.pending = false;
                walk_guards(ctx, body, &mut sub, depth + 1, findings);
                st.binding = None;
            }
        }
    }
}

/// Straight-line guard tracking inside one [`Node::Run`].
fn scan_guard_run(
    ctx: &GuardCtx<'_>,
    toks: &[Token<'_>],
    st: &mut GuardState,
    depth: i32,
    findings: &mut Vec<Finding>,
) {
    let path = ctx.path;
    let mut stmt_start = true;
    for i in 0..toks.len() {
        if st.diverged {
            return;
        }
        let t = &toks[i];
        let next = toks.get(i + 1).map(|n| n.text);
        match t.text {
            ";" => {
                st.settle();
                stmt_start = true;
                st.binding = None;
                continue;
            }
            "return" | "break" | "continue" => {
                // The trailing expression (if any) still executes; the
                // path diverges when the statement ends.
                st.pending = true;
                stmt_start = false;
                continue;
            }
            _ => {}
        }

        if stmt_start {
            if t.text == "let" {
                st.binding = toks[i + 1..]
                    .iter()
                    .take_while(|n| n.text != "=" && n.text != ";")
                    .find(|n| {
                        n.kind == TokKind::Ident && !matches!(n.text, "mut" | "Some" | "Ok" | "Err")
                    })
                    .map(|n| n.text.to_string());
            } else if t.kind == TokKind::Ident && next == Some("=") {
                // Possible re-acquisition: `st = self.state.lock()`.
                st.binding = Some(t.text.to_string());
            }
        }
        // `if let Some(g) = x.try_lock()` also binds a guard.
        if t.text == "if" && next == Some("let") {
            stmt_start = true;
            continue;
        }
        stmt_start = false;

        // drop(guard) ends a guard's scope early.
        if t.text == "drop" && next == Some("(") {
            if let Some(name) = toks.get(i + 2) {
                if toks.get(i + 3).map(|n| n.text) == Some(")") {
                    if let Some(pos) = st.held.iter().rposition(|g| g.name == name.text) {
                        st.held.remove(pos);
                    }
                }
            }
            continue;
        }

        if t.kind != TokKind::Ident || next != Some("(") {
            continue;
        }

        // Lock acquisitions: `.lock()` family on classified receivers,
        // plus guard-returning callables like `lock_shard(…)`.
        let acq = if let Some(kind) = acquisition_kind(t.text) {
            receiver_name(toks, i)
                .and_then(|r| classify(path, r))
                .map(|rank| (kind, rank))
        } else {
            classify_lock_fn(path, t.text).map(|rank| (Acq::Blocking, rank))
        };
        if let Some((kind, rank)) = acq {
            match kind {
                Acq::Blocking => {
                    for g in &st.held {
                        if g.rank >= rank {
                            findings.push(Finding {
                                file: path.to_string(),
                                line: t.line,
                                rule: "lock-order",
                                msg: format!(
                                    "acquires {} (rank {rank}) while holding {} (rank {}); \
                                     declared order: {}",
                                    hierarchy::rank_name(rank),
                                    hierarchy::rank_name(g.rank),
                                    g.rank,
                                    order_string(),
                                ),
                            });
                        }
                    }
                    if let Some(name) = st.binding.take() {
                        st.held.push(Guard { name, rank, depth });
                    }
                }
                // `try_*` cannot block, so it cannot deadlock at the
                // acquisition itself, and lexically the call often sits
                // in a fallback (`match x.try_read() { None => x.read() }`)
                // where nothing is held when it fails. Guards it *does*
                // produce are invisible to this pass; the runtime
                // lock-rank witness tracks them instead. The binding is
                // left in place so a blocking retry in the fallback arm
                // claims it.
                Acq::Try => {}
            }
            continue;
        }

        // I/O under a classified guard.
        if ctx.no_io
            && IO_METHODS.contains(&t.text)
            && i >= 1
            && toks[i - 1].text == "."
            && !st.held.is_empty()
        {
            let worst = st.held.iter().map(|g| g.rank).max().unwrap_or(0);
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "no-io-under-lock",
                msg: format!(
                    "calls `{}` while holding {} — move the I/O outside the \
                     critical section or annotate why it must stay",
                    t.text,
                    hierarchy::rank_name(worst),
                ),
            });
        }
    }
}

fn order_string() -> String {
    hierarchy::LOCK_RANKS
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(" < ")
}

// ---------------------------------------------------------------------
// Structure-blind per-function scans (no-panic, pedantic indexing)
// ---------------------------------------------------------------------

fn check_flat(
    path: &str,
    body: &[Token<'_>],
    opts: Options,
    no_panic: bool,
    findings: &mut Vec<Finding>,
) {
    if !no_panic {
        return;
    }
    for (i, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text, "unwrap" | "expect")
            && body.get(i + 1).map(|n| n.text) == Some("(")
            && i >= 1
            && body[i - 1].text == "."
        {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "no-panic",
                msg: format!(
                    "`.{}()` in non-test engine code — return a typed \
                     `BtrimError` instead",
                    t.text
                ),
            });
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text)
            && body.get(i + 1).map(|n| n.text) == Some("!")
        {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "no-panic",
                msg: format!("`{}!` in non-test engine code", t.text),
            });
        }
        if opts.pedantic
            && t.text == "["
            && i >= 1
            && (body[i - 1].kind == TokKind::Ident
                || body[i - 1].text == ")"
                || body[i - 1].text == "]")
        {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "indexing",
                msg: "slice indexing can panic; prefer `.get(..)` (pedantic)".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// wal-before-mutation: WAL-first dataflow over the CFG tree
// ---------------------------------------------------------------------

/// Path state for the WAL-first dataflow: has this path definitely
/// appended to the log yet?
#[derive(Clone, Copy, Default)]
struct WalState {
    appended: bool,
    pending: bool,
    diverged: bool,
}

impl WalState {
    fn settle(&mut self) {
        if self.pending {
            self.pending = false;
            self.diverged = true;
        }
    }
}

fn walk_wal(
    path: &str,
    index: &WorkspaceIndex,
    nodes: &[Node<'_>],
    st: &mut WalState,
    findings: &mut Vec<Finding>,
) {
    for n in nodes {
        if st.diverged {
            return;
        }
        match n {
            Node::Run(toks) => {
                for i in 0..toks.len() {
                    if st.diverged {
                        break;
                    }
                    let t = &toks[i];
                    match t.text {
                        ";" => {
                            st.settle();
                            continue;
                        }
                        "return" | "break" | "continue" => {
                            st.pending = true;
                            continue;
                        }
                        _ => {}
                    }
                    if t.kind != TokKind::Ident || toks.get(i + 1).map(|n| n.text) != Some("(") {
                        continue;
                    }
                    if index.is_appender(t.text) {
                        st.appended = true;
                        continue;
                    }
                    let hit = waldisc::MUTATION_METHODS
                        .iter()
                        .find(|(recv, m, _)| *m == t.text && receiver_name(toks, i) == Some(*recv));
                    if let Some(&(recv, m, label)) = hit {
                        if !st.appended {
                            findings.push(Finding {
                                file: path.to_string(),
                                line: t.line,
                                rule: "wal-before-mutation",
                                msg: format!(
                                    "`{recv}.{m}` ({label}) is not dominated by a WAL append \
                                     on this path — log first, mutate second \
                                     (see wal_discipline.rs)"
                                ),
                            });
                        }
                    }
                }
            }
            Node::Scope { nodes, diverging } => {
                if *diverging {
                    let mut sub = *st;
                    sub.pending = false;
                    walk_wal(path, index, nodes, &mut sub, findings);
                } else {
                    walk_wal(path, index, nodes, st, findings);
                    st.settle();
                }
            }
            Node::Branch { arms, exhaustive } => {
                let base = *st;
                let mut all_appended = true;
                let mut any_live = false;
                if !*exhaustive {
                    // Fall-through path: the branch may not run at all.
                    any_live = true;
                    all_appended &= base.appended;
                }
                for arm in arms {
                    let mut sub = base;
                    sub.pending = false;
                    walk_wal(path, index, arm, &mut sub, findings);
                    sub.settle();
                    if !sub.diverged {
                        any_live = true;
                        all_appended &= sub.appended;
                    }
                }
                st.appended = any_live && all_appended;
                st.pending = base.pending;
                st.diverged = !any_live;
            }
            Node::Loop(body) => {
                // Zero-iteration path: an append inside the loop proves
                // nothing for the code after it. Mutations inside are
                // checked against the loop-entry state.
                let mut sub = *st;
                sub.pending = false;
                walk_wal(path, index, body, &mut sub, findings);
            }
        }
    }
}

// ---------------------------------------------------------------------
// atomics-ordering: declaration completeness + access-site checks
// ---------------------------------------------------------------------

/// The access slots an atomic method fills, in argument order. A CAS
/// checks its success ordering as an RMW and its failure ordering as a
/// load.
fn atomic_slots(method: &str) -> Option<&'static [u8]> {
    match method {
        "load" => Some(&[adisc::OP_LOAD]),
        "store" => Some(&[adisc::OP_STORE]),
        "swap" | "fetch_add" | "fetch_sub" | "fetch_and" | "fetch_or" | "fetch_xor"
        | "fetch_nand" | "fetch_max" | "fetch_min" => Some(&[adisc::OP_RMW]),
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => {
            Some(&[adisc::OP_RMW, adisc::OP_LOAD])
        }
        _ => None,
    }
}

fn ord_code(name: &str) -> Option<u8> {
    Some(match name {
        "Relaxed" => adisc::O_RELAXED,
        "Acquire" => adisc::O_ACQUIRE,
        "Release" => adisc::O_RELEASE,
        "AcqRel" => adisc::O_ACQREL,
        "SeqCst" => adisc::O_SEQCST,
        _ => return None,
    })
}

fn op_name(op: u8) -> &'static str {
    match op {
        adisc::OP_LOAD => "load",
        adisc::OP_STORE => "store",
        _ => "rmw",
    }
}

/// Run the atomics discipline over a file's non-test token stream:
/// every `name: AtomicX` field declaration must have a protocol entry
/// in `atomics_discipline.rs`, and every access site on a declared
/// name must use orderings at least as strong as the protocol.
fn check_atomics(path: &str, toks: &[Token<'_>], findings: &mut Vec<Finding>) {
    let krate = crate_of(path).unwrap_or("");
    if !ATOMICS_CRATES.contains(&krate) {
        return;
    }

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }

        // --- Declaration completeness: `name: [wrappers] AtomicX` ----
        if ATOMIC_TYPES.contains(&t.text)
            && toks.get(i + 1).map(|n| n.text) != Some("::")
            && (i == 0 || toks[i - 1].text != "&")
        {
            // Walk back over type wrappers (`Box<[…]>`, `Vec<…>`, …).
            let mut j = i;
            while j > 0 {
                let p = &toks[j - 1];
                let is_wrapper_name =
                    p.kind == TokKind::Ident && toks.get(j).map(|n| n.text) == Some("<");
                if p.text == "<" || p.text == "[" || is_wrapper_name {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
                let name = &toks[j - 2];
                let local = j >= 3 && matches!(toks[j - 3].text, "let" | "mut");
                if !local && adisc::declared_protocol(path, name.text).is_none() {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: name.line,
                        rule: "atomics-ordering",
                        msg: format!(
                            "atomic field `{}` has no declared publish/consume protocol — \
                             add an entry to atomics_discipline.rs",
                            name.text
                        ),
                    });
                }
            }
            continue;
        }

        // --- Access sites: `recv.method(…, Ordering::X, …)` ----------
        let Some(slots) = atomic_slots(t.text) else {
            continue;
        };
        if toks.get(i + 1).map(|n| n.text) != Some("(") || i < 1 || toks[i - 1].text != "." {
            continue;
        }
        let Some(recv) = receiver_name(toks, i) else {
            continue;
        };
        let Some(proto) = adisc::declared_protocol(path, recv) else {
            continue;
        };
        // Collect `Ordering::X` arguments at the call's own paren depth
        // (orderings inside nested calls belong to those calls).
        let mut ords: Vec<(&str, u32)> = Vec::new();
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "Ordering" if depth == 1 && toks.get(j + 1).map(|n| n.text) == Some("::") => {
                    if let Some(o) = toks.get(j + 2) {
                        ords.push((o.text, o.line));
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for (slot, (ord, line)) in slots.iter().zip(ords.iter()) {
            let Some(code) = ord_code(ord) else { continue };
            if !adisc::ordering_ok(proto, *slot, code) {
                findings.push(Finding {
                    file: path.to_string(),
                    line: *line,
                    rule: "atomics-ordering",
                    msg: format!(
                        "`{recv}.{}` uses Ordering::{ord} for its {} — weaker than the \
                         declared `{}` protocol (see atomics_discipline.rs)",
                        t.text,
                        op_name(*slot),
                        adisc::protocol_name(proto),
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Lint one file's source with cross-file context. `path` is the
/// workspace-relative path (it selects which crates' rules apply and
/// how receivers classify); `index` supplies the workspace appender
/// set for one-level call-graph propagation in `wal-before-mutation`.
/// Returns findings with escapes already applied.
pub fn check_file_with(
    path: &str,
    src: &str,
    opts: Options,
    index: &WorkspaceIndex,
) -> Vec<Finding> {
    let tokens = lex(src);
    let (escapes, mut findings) = collect_escapes(path, &tokens);
    let sig: Vec<Token<'_>> = tokens
        .iter()
        .filter(|t| t.is_significant())
        .copied()
        .collect();
    let seg = segment(&sig);

    let krate = crate_of(path).unwrap_or("");
    let no_panic = NO_PANIC_CRATES.contains(&krate);
    let guard_ctx = GuardCtx {
        path,
        no_io: NO_IO_CRATES.contains(&krate),
    };
    let wal_applies = krate == "core" && !waldisc::REPLAY_FILES.iter().any(|f| path.ends_with(f));

    for f in &seg.fns {
        let tree = cfg::build(&f.tokens);
        let mut gst = GuardState::default();
        walk_guards(&guard_ctx, &tree, &mut gst, 0, &mut findings);
        check_flat(path, &f.tokens, opts, no_panic, &mut findings);
        if wal_applies && !f.name.is_some_and(|n| waldisc::REPLAY_FNS.contains(&n)) {
            let mut wst = WalState::default();
            walk_wal(path, index, &tree, &mut wst, &mut findings);
        }
    }
    check_atomics(path, &seg.nontest, &mut findings);

    findings.retain(|f| {
        f.rule == "bad-escape"
            || !escapes
                .iter()
                .any(|e| e.rule == f.rule && e.lines.contains(&f.line))
    });
    findings.sort();
    findings.dedup();
    findings
}

/// Lint one file without workspace context (fixture tests, single-file
/// callers). `wal-before-mutation` still recognises the seed append
/// functions; only helper-propagated appends need the index.
pub fn check_file(path: &str, src: &str, opts: Options) -> Vec<Finding> {
    check_file_with(path, src, opts, &WorkspaceIndex::default())
}
