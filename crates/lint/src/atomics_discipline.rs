// The declared atomics discipline — the single source of truth shared
// by the static `atomics-ordering` lint (`btrim-lint`, which `include!`s
// this file as `btrim_lint::atomics`) and the debug-build witness in
// `btrim-common` (`btrim_common::atomics::discipline`). Editing a
// protocol here retunes both checkers at once; they cannot drift apart —
// the same ONE-table pattern as `lock_hierarchy.rs`.
//
// Every cross-thread atomic field in the `common`, `imrs`, `txn`,
// `pagestore`, and `core` crates declares its publish/consume protocol:
//
// * `P_RELAXED` — a monotone counter, advisory hint, or id allocator.
//   No ordering guarantees are needed; any `Ordering` is acceptable.
// * `P_ACQREL`  — release/acquire publication: stores must be at least
//   `Release`, loads at least `Acquire`, read-modify-writes at least
//   `AcqRel` (a CAS failure ordering is a load). Anything weaker is a
//   finding unless the site carries a reasoned
//   `// lint: allow(atomics-ordering) -- <why>` escape.
// * `P_SEQCST`  — part of a store-load (Dekker-style) protocol where
//   total order matters; every access must be `SeqCst`.
//
// Fields are keyed `(file suffix, field name)` — the same file-scoped
// naming as `LOCK_SITES`, so `inner` can mean different things in
// different crates. A few entries name *local aliases* (a `&AtomicU64`
// parameter or loop variable) rather than a struct field; their notes
// say which field they alias. The lint's completeness check walks every
// `name: AtomicX` struct-field declaration in the five crates and
// demands an entry here, so a new atomic cannot land undeclared.

/// Any ordering is acceptable (counters, hints, allocators).
pub const P_RELAXED: u8 = 0;
/// Release-store / Acquire-load / AcqRel-RMW publication protocol.
pub const P_ACQREL: u8 = 1;
/// Store-load total-order protocol: every access SeqCst.
pub const P_SEQCST: u8 = 2;

/// Ordering codes (`std::sync::atomic::Ordering` flattened to `u8` so
/// this file compiles in both the linter and the engine).
pub const O_RELAXED: u8 = 0;
pub const O_ACQUIRE: u8 = 1;
pub const O_RELEASE: u8 = 2;
pub const O_ACQREL: u8 = 3;
pub const O_SEQCST: u8 = 4;

/// Access-kind codes for [`ordering_ok`].
pub const OP_LOAD: u8 = 0;
pub const OP_STORE: u8 = 1;
pub const OP_RMW: u8 = 2;

/// Is `ord` strong enough for an access of kind `op` on a field
/// declared with `proto`? (A CAS checks its success ordering as
/// `OP_RMW` and its failure ordering as `OP_LOAD`.)
pub const fn ordering_ok(proto: u8, op: u8, ord: u8) -> bool {
    match proto {
        P_RELAXED => true,
        P_ACQREL => match op {
            OP_LOAD => matches!(ord, O_ACQUIRE | O_SEQCST),
            OP_STORE => matches!(ord, O_RELEASE | O_SEQCST),
            _ => matches!(ord, O_ACQREL | O_SEQCST),
        },
        _ => ord == O_SEQCST,
    }
}

/// Display name for a protocol (witness panics, lint findings).
pub fn protocol_name(proto: u8) -> &'static str {
    match proto {
        P_RELAXED => "relaxed",
        P_ACQREL => "acq-rel",
        P_SEQCST => "seq-cst",
        _ => "unknown",
    }
}

/// `(file suffix, field name, protocol, why)` for every cross-thread
/// atomic field in common/imrs/txn/pagestore/core.
pub const ATOMIC_FIELDS: &[(&str, &str, u8, &str)] = &[
    // ----- common: commit clock, histograms, trace ring -------------
    (
        "crates/common/src/clock.rs",
        "allocated",
        P_ACQREL,
        "reserve/publish clock: fetch_add hands out timestamps; fetch_max on restart republishes",
    ),
    (
        "crates/common/src/clock.rs",
        "published",
        P_ACQREL,
        "snapshot horizon: now() acquires what the in-order publish CAS released",
    ),
    ("crates/common/src/hist.rs", "buckets", P_RELAXED, "histogram counters; snapshots tolerate tearing"),
    ("crates/common/src/hist.rs", "bucket", P_RELAXED, "alias: one `buckets` word in iteration"),
    ("crates/common/src/hist.rs", "count", P_RELAXED, "histogram counter"),
    ("crates/common/src/hist.rs", "sum", P_RELAXED, "histogram counter"),
    ("crates/common/src/hist.rs", "max", P_RELAXED, "monotone fetch_max watermark"),
    ("crates/common/src/ring.rs", "pushed", P_RELAXED, "trace-ring counter"),
    ("crates/common/src/ring.rs", "dropped", P_RELAXED, "trace-ring counter"),
    (
        "crates/common/src/counters.rs",
        "NEXT_THREAD_SLOT",
        P_RELAXED,
        "thread→shard slot allocator: only uniqueness-mod-SHARDS matters, not order",
    ),
    // ----- imrs: arena version chains, RID-Map, store accounting ----
    (
        "crates/imrs/src/arena.rs",
        "txn",
        P_RELAXED,
        "frozen before publish; the Release store of the chain link publishes it",
    ),
    (
        "crates/imrs/src/arena.rs",
        "commit_ts",
        P_ACQREL,
        "stamped once at commit (Release); visibility reads acquire it",
    ),
    (
        "crates/imrs/src/arena.rs",
        "meta",
        P_RELAXED,
        "frozen before publish; the Release store of the chain link publishes it",
    ),
    ("crates/imrs/src/arena.rs", "ha", P_RELAXED, "frozen before publish (see `meta`)"),
    ("crates/imrs/src/arena.rs", "hb", P_RELAXED, "frozen before publish (see `meta`)"),
    (
        "crates/imrs/src/arena.rs",
        "prev",
        P_ACQREL,
        "version-chain link: Release-published so readers acquire the node it points at",
    ),
    ("crates/imrs/src/arena.rs", "len", P_RELAXED, "arena high-water counter"),
    (
        "crates/imrs/src/arena.rs",
        "head",
        P_ACQREL,
        "alias: the RID-Map `head` cell passed into push/pop (chain publication point)",
    ),
    (
        "crates/imrs/src/alloc.rs",
        "max_chunks",
        P_ACQREL,
        "arbiter-published budget; allocators acquire the retarget",
    ),
    ("crates/imrs/src/alloc.rs", "used", P_RELAXED, "byte accounting"),
    ("crates/imrs/src/alloc.rs", "alloc_calls", P_RELAXED, "counter"),
    ("crates/imrs/src/alloc.rs", "free_calls", P_RELAXED, "counter"),
    ("crates/imrs/src/alloc.rs", "quarantined", P_RELAXED, "byte accounting"),
    (
        "crates/imrs/src/ridmap.rs",
        "loc",
        P_ACQREL,
        "row-location word: the publication point readers acquire before chasing a location",
    ),
    (
        "crates/imrs/src/ridmap.rs",
        "head",
        P_ACQREL,
        "version-chain head link (written by the arena with Release)",
    ),
    (
        "crates/imrs/src/ridmap.rs",
        "part",
        P_RELAXED,
        "written before `loc` publishes the entry; riders on that Release",
    ),
    ("crates/imrs/src/ridmap.rs", "last_access", P_RELAXED, "hotness hint"),
    ("crates/imrs/src/ridmap.rs", "reuse", P_RELAXED, "slot-generation hint"),
    ("crates/imrs/src/ridmap.rs", "next_row_id", P_RELAXED, "id allocator (fetch_add/fetch_max)"),
    ("crates/imrs/src/ridmap.rs", "mapped", P_RELAXED, "entry counter"),
    (
        "crates/imrs/src/row.rs",
        "enqueued",
        P_ACQREL,
        "pack-queue claim flag: AcqRel swap decides one enqueuer; Release store reopens",
    ),
    (
        "crates/imrs/src/row.rs",
        "head_cell",
        P_ACQREL,
        "alias: the RID-Map `head` cell (chain publication point)",
    ),
    ("crates/imrs/src/store.rs", "bytes", P_RELAXED, "byte accounting"),
    ("crates/imrs/src/store.rs", "rows", P_RELAXED, "row accounting"),
    // ----- txn: registry reservation protocol ------------------------
    ("crates/txn/src/manager.rs", "next_txn", P_RELAXED, "id allocator"),
    ("crates/txn/src/manager.rs", "committed", P_RELAXED, "counter"),
    ("crates/txn/src/manager.rs", "aborted", P_RELAXED, "counter"),
    (
        "crates/txn/src/manager.rs",
        "slots",
        P_SEQCST,
        "store-load reservation protocol: the SeqCst CAS + fences order slot claims against horizon scans",
    ),
    (
        "crates/txn/src/manager.rs",
        "slot",
        P_SEQCST,
        "alias: one `slots` cell in the horizon scan",
    ),
    (
        "crates/txn/src/manager.rs",
        "overflow_len",
        P_SEQCST,
        "paired with `slots`: the scan must observe the overflow spill of any reservation it missed",
    ),
    (
        "crates/txn/src/manager.rs",
        "cached_horizon",
        P_ACQREL,
        "monotone watermark cache published to GC/pack/purge",
    ),
    // ----- pagestore: buffer cache, disk, heap, frozen extents -------
    ("crates/pagestore/src/disk.rs", "reads", P_RELAXED, "counter"),
    ("crates/pagestore/src/disk.rs", "writes", P_RELAXED, "counter"),
    (
        "crates/pagestore/src/disk.rs",
        "next_page",
        P_ACQREL,
        "allocation fence: bounds-checked reads acquire the Release of allocate()",
    ),
    ("crates/pagestore/src/heap.rs", "live_rows", P_RELAXED, "row accounting"),
    (
        "crates/pagestore/src/buffer.rs",
        "pin",
        P_ACQREL,
        "pin count gates eviction; the unpin must be visible before the evictor frees the frame",
    ),
    ("crates/pagestore/src/buffer.rs", "referenced", P_RELAXED, "clock-hand hint"),
    (
        "crates/pagestore/src/buffer.rs",
        "dirty",
        P_ACQREL,
        "AcqRel swap claims the flush; Release store re-publishes on write failure",
    ),
    (
        "crates/pagestore/src/buffer.rs",
        "state",
        P_ACQREL,
        "frame lifecycle (pending/ready/evicting): readers acquire the page bytes the state publishes",
    ),
    ("crates/pagestore/src/buffer.rs", "hits", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "misses", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "evictions", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "flushes", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "latch_contention", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "io_waits", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "io_errors", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "io_retries", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "checksum_failures", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "capacity_shifts", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/buffer.rs", "lock_contention", P_RELAXED, "stats counter"),
    (
        "crates/pagestore/src/buffer.rs",
        "capacity",
        P_ACQREL,
        "arbiter-published budget; admission and shrink-debt math acquire the retarget",
    ),
    (
        "crates/pagestore/src/buffer.rs",
        "resident",
        P_ACQREL,
        "admission gate: the fetch_update CAS claims a slot; decrements release the freed one",
    ),
    (
        "crates/pagestore/src/buffer.rs",
        "shard_cap",
        P_ACQREL,
        "arbiter-published per-shard cap (see `capacity`)",
    ),
    (
        "crates/pagestore/src/extent.rs",
        "encoded_len",
        P_RELAXED,
        "written once before the extent publishes through the directory lock",
    ),
    (
        "crates/pagestore/src/extent.rs",
        "live",
        P_ACQREL,
        "liveness bitmap: AcqRel mark-gone races snapshot scans that acquire the word",
    ),
    (
        "crates/pagestore/src/extent.rs",
        "live_word",
        P_ACQREL,
        "alias: one `live` bitmap word",
    ),
    ("crates/pagestore/src/extent.rs", "live_count", P_RELAXED, "zone-pruning hint"),
    (
        "crates/pagestore/src/extent.rs",
        "next",
        P_RELAXED,
        "extent-id allocator; directory slots publish through the `publish` lock, the Acquire bound-reads tolerate staleness",
    ),
    ("crates/pagestore/src/extent.rs", "count", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/extent.rs", "raw_bytes", P_RELAXED, "stats counter"),
    ("crates/pagestore/src/extent.rs", "encoded_bytes", P_RELAXED, "stats counter"),
    // ----- core: engine control plane, maintenance, side store -------
    (
        "crates/core/src/engine.rs",
        "last_maintenance",
        P_RELAXED,
        "advisory window claim; maintenance work serializes on the gate mutex",
    ),
    ("crates/core/src/engine.rs", "background", P_RELAXED, "control flag"),
    ("crates/core/src/engine.rs", "stop", P_RELAXED, "control flag"),
    ("crates/core/src/engine.rs", "consec_storage_errors", P_RELAXED, "health counter"),
    ("crates/core/src/engine.rs", "storage_errors", P_RELAXED, "health counter"),
    ("crates/core/src/engine.rs", "ckpt_ordinal", P_RELAXED, "checkpoint counter"),
    ("crates/core/src/engine.rs", "last_truncate_upto", P_RELAXED, "monotone fetch_max watermark"),
    (
        "crates/core/src/arbiter.rs",
        "last_window_at",
        P_RELAXED,
        "advisory window claim; the shifts it gates run under the maintenance gate",
    ),
    ("crates/core/src/arbiter.rs", "windows_run", P_RELAXED, "counter"),
    ("crates/core/src/arbiter.rs", "shifts_applied", P_RELAXED, "counter"),
    ("crates/core/src/arbiter.rs", "bytes_to_imrs", P_RELAXED, "counter"),
    ("crates/core/src/arbiter.rs", "bytes_to_buffer", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "reject_new", P_RELAXED, "admission hint"),
    ("crates/core/src/pack.rs", "cycles", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "rows_packed", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "bytes_packed", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "rows_skipped", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "pack_txn_commits", P_RELAXED, "counter"),
    ("crates/core/src/pack.rs", "next_internal", P_RELAXED, "id allocator"),
    ("crates/core/src/gc.rs", "processed", P_RELAXED, "counter"),
    ("crates/core/src/gc.rs", "bytes_freed", P_RELAXED, "counter"),
    ("crates/core/src/gc.rs", "rows_removed", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "extents_frozen", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "rows_frozen", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "raw_bytes", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "encoded_bytes", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "rows_thawed", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "rows_skipped_hot", P_RELAXED, "counter"),
    ("crates/core/src/freeze.rs", "rows_skipped_recent", P_RELAXED, "counter"),
    (
        "crates/core/src/sidestore.rs",
        "ts",
        P_ACQREL,
        "before-image commit stamp: readers acquire the payload the Release stamp published",
    ),
    ("crates/core/src/sidestore.rs", "bytes", P_RELAXED, "byte accounting"),
    ("crates/core/src/sidestore.rs", "entries", P_RELAXED, "entry accounting"),
    ("crates/core/src/tsf.rs", "tau", P_RELAXED, "learned threshold (advisory)"),
    ("crates/core/src/tsf.rs", "last_learned_at", P_RELAXED, "advisory window claim"),
    ("crates/core/src/tsf.rs", "learn_count", P_RELAXED, "counter"),
    ("crates/core/src/tuner.rs", "insert_enabled", P_RELAXED, "advisory ILM toggle"),
    ("crates/core/src/tuner.rs", "migrate_enabled", P_RELAXED, "advisory ILM toggle"),
    ("crates/core/src/tuner.rs", "cache_enabled", P_RELAXED, "advisory ILM toggle"),
    ("crates/core/src/tuner.rs", "disable_votes", P_RELAXED, "hysteresis counter"),
    ("crates/core/src/tuner.rs", "enable_votes", P_RELAXED, "hysteresis counter"),
    ("crates/core/src/tuner.rs", "toggles", P_RELAXED, "counter"),
    ("crates/core/src/tuner.rs", "last_window_at", P_RELAXED, "advisory window claim"),
    ("crates/core/src/tuner.rs", "windows_run", P_RELAXED, "counter"),
    ("crates/core/src/catalog.rs", "next_partition", P_RELAXED, "id allocator"),
];

/// Look up the declared protocol for `(file, field)`; `file` may be a
/// full workspace-relative path (matched by suffix).
pub fn declared_protocol(file: &str, field: &str) -> Option<u8> {
    ATOMIC_FIELDS
        .iter()
        .find(|(f, n, _, _)| file.ends_with(f) && *n == field)
        .map(|&(_, _, p, _)| p)
}
