//! CFG-lite: a structured statement tree over one function body.
//!
//! The flat brace-depth guard tracking of the original rule engine
//! could not tell an `if` arm from an `else` arm, so a guard dropped on
//! one path stayed dropped on the other, and a mutation reachable only
//! when an append was skipped looked identical to one dominated by it.
//! This module parses the significant tokens of a function body into a
//! tree of:
//!
//! * [`Node::Run`]    — straight-line tokens;
//! * [`Node::Scope`]  — a plain `{ … }` block (including closure
//!   bodies, which are treated as executing inline — right for the
//!   immediately-invoked `(|| { … })()` logging idiom, a documented
//!   blind spot for stored callbacks);
//! * [`Node::Branch`] — `if`/`else if`/`else` chains and `match`
//!   expressions, one arm per alternative, with exhaustiveness noted
//!   (a `match` is always exhaustive; an `if` only with a final
//!   `else`);
//! * [`Node::Loop`]   — `while`/`for`/`loop` bodies, which dataflow
//!   must treat as executing zero or more times.
//!
//! Rules walk the tree forking state per arm and joining at the merge
//! point: union for "what might be held" (lock-order), intersection
//! for "what has definitely happened" (wal-before-mutation). Early
//! exits (`return`, `break`, `continue`) divert a path out of the
//! join so the code after a diverging arm is only charged with the
//! surviving paths.

use crate::lexer::Token;

/// One node of the statement tree. Lifetimes borrow the lexed source.
pub enum Node<'a> {
    /// Straight-line significant tokens.
    Run(Vec<Token<'a>>),
    /// A nested plain block. `diverging` marks a `let … else { … }`
    /// block, whose state must not leak past the statement (the block
    /// only runs on the refuted-pattern path, which diverges).
    Scope {
        nodes: Vec<Node<'a>>,
        diverging: bool,
    },
    /// An `if`-chain or `match`: one `Vec<Node>` per arm.
    Branch {
        arms: Vec<Vec<Node<'a>>>,
        exhaustive: bool,
    },
    /// A `while`/`for`/`loop` body.
    Loop(Vec<Node<'a>>),
}

/// Parse a function body (significant tokens, braces stripped by the
/// caller's segmentation) into a statement tree.
pub fn build<'a>(body: &[Token<'a>]) -> Vec<Node<'a>> {
    let mut i = 0;
    parse_nodes(body, &mut i, false)
}

/// Every token of the tree in source order (structure-blind scans:
/// no-panic, pedantic indexing).
pub fn flatten<'a, 'n>(nodes: &'n [Node<'a>], out: &mut Vec<&'n Token<'a>>) {
    for n in nodes {
        match n {
            Node::Run(toks) => out.extend(toks.iter()),
            Node::Scope { nodes, .. } | Node::Loop(nodes) => flatten(nodes, out),
            Node::Branch { arms, .. } => {
                for arm in arms {
                    flatten(arm, out);
                }
            }
        }
    }
}

/// Parse until the end of the slice, or — when `until_close` — until
/// the `}` matching an already-consumed `{` (the `}` is consumed).
fn parse_nodes<'a>(toks: &[Token<'a>], i: &mut usize, until_close: bool) -> Vec<Node<'a>> {
    let mut nodes = Vec::new();
    let mut run: Vec<Token<'a>> = Vec::new();
    macro_rules! flush {
        () => {
            if !run.is_empty() {
                nodes.push(Node::Run(std::mem::take(&mut run)));
            }
        };
    }
    while *i < toks.len() {
        let t = toks[*i];
        match t.text {
            "}" if until_close => {
                *i += 1;
                flush!();
                return nodes;
            }
            "{" => {
                *i += 1;
                flush!();
                let inner = parse_nodes(toks, i, true);
                nodes.push(Node::Scope {
                    nodes: inner,
                    diverging: false,
                });
            }
            "if" => {
                flush!();
                // The condition's tokens execute before the branch, so
                // they must land in a Run node ahead of it.
                let mut cond = Vec::new();
                let node = parse_if(toks, i, &mut cond);
                if !cond.is_empty() {
                    nodes.push(Node::Run(cond));
                }
                nodes.push(node);
            }
            "match" => {
                *i += 1;
                // Scrutinee: up to the `{` at bracket depth 0.
                collect_header(toks, i, &mut run);
                flush!();
                if consume(toks, i, "{") {
                    nodes.push(parse_match_arms(toks, i));
                }
            }
            "while" | "for" => {
                *i += 1;
                collect_header(toks, i, &mut run);
                flush!();
                if consume(toks, i, "{") {
                    let body = parse_nodes(toks, i, true);
                    nodes.push(Node::Loop(body));
                }
            }
            "loop" => {
                *i += 1;
                flush!();
                if consume(toks, i, "{") {
                    let body = parse_nodes(toks, i, true);
                    nodes.push(Node::Loop(body));
                }
            }
            "else" => {
                // An `else` outside an if-chain is `let … else { … }`.
                *i += 1;
                flush!();
                if consume(toks, i, "{") {
                    let inner = parse_nodes(toks, i, true);
                    nodes.push(Node::Scope {
                        nodes: inner,
                        diverging: true,
                    });
                }
            }
            _ => {
                run.push(t);
                *i += 1;
            }
        }
    }
    flush!();
    nodes
}

/// Consume `text` if it is the next token.
fn consume(toks: &[Token<'_>], i: &mut usize, text: &str) -> bool {
    if *i < toks.len() && toks[*i].text == text {
        *i += 1;
        true
    } else {
        false
    }
}

/// Collect condition/scrutinee/iterator tokens into `run`, stopping at
/// the body's `{` (left unconsumed). Braces inside parens or brackets
/// (closures, struct literals in parenthesized expressions) belong to
/// the header.
fn collect_header<'a>(toks: &[Token<'a>], i: &mut usize, run: &mut Vec<Token<'a>>) {
    let mut depth = 0i32;
    while *i < toks.len() {
        let t = toks[*i];
        match t.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return,
            _ => {}
        }
        run.push(t);
        *i += 1;
    }
}

/// Parse a full `if … { } [else if … { }]* [else { }]` chain starting
/// at the `if` token. An `else if` becomes a nested `Branch` inside
/// the else arm, so dataflow joins compose naturally.
fn parse_if<'a>(toks: &[Token<'a>], i: &mut usize, run: &mut Vec<Token<'a>>) -> Node<'a> {
    debug_assert_eq!(toks[*i].text, "if");
    *i += 1;
    collect_header(toks, i, run);
    let then_arm = if consume(toks, i, "{") {
        parse_nodes(toks, i, true)
    } else {
        Vec::new()
    };
    if *i < toks.len() && toks[*i].text == "else" {
        *i += 1;
        if *i < toks.len() && toks[*i].text == "if" {
            // `else if`: the chain's tail is its own branch. Its
            // condition tokens execute only on this arm, so they go in
            // the arm, not the outer run.
            let mut tail_run = Vec::new();
            let tail = parse_if(toks, i, &mut tail_run);
            let mut else_arm = Vec::new();
            if !tail_run.is_empty() {
                else_arm.push(Node::Run(tail_run));
            }
            let exhaustive = matches!(
                tail,
                Node::Branch {
                    exhaustive: true,
                    ..
                }
            );
            else_arm.push(tail);
            return Node::Branch {
                arms: vec![then_arm, else_arm],
                exhaustive,
            };
        }
        let else_arm = if consume(toks, i, "{") {
            parse_nodes(toks, i, true)
        } else {
            Vec::new()
        };
        return Node::Branch {
            arms: vec![then_arm, else_arm],
            exhaustive: true,
        };
    }
    Node::Branch {
        arms: vec![then_arm],
        exhaustive: false,
    }
}

/// Parse match arms after the opening `{`. Each arm's pattern (and any
/// `if` guard) rides at the head of the arm as a `Run`; a braced arm
/// body parses recursively, an expression arm is re-parsed as nodes so
/// nested `if`/`match` inside it still branch.
fn parse_match_arms<'a>(toks: &[Token<'a>], i: &mut usize) -> Node<'a> {
    let mut arms = Vec::new();
    loop {
        // End of the match block?
        if *i >= toks.len() {
            break;
        }
        if toks[*i].text == "}" {
            *i += 1;
            break;
        }
        // Pattern (+ guard) up to `=>` at depth 0.
        let mut pat = Vec::new();
        let mut depth = 0i32;
        while *i < toks.len() {
            let t = toks[*i];
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => break,
                _ => {}
            }
            pat.push(t);
            *i += 1;
        }
        if !consume(toks, i, "=>") {
            break;
        }
        let mut arm = Vec::new();
        if !pat.is_empty() {
            arm.push(Node::Run(pat));
        }
        if *i < toks.len() && toks[*i].text == "{" {
            *i += 1;
            arm.extend(parse_nodes(toks, i, true));
            consume(toks, i, ",");
        } else {
            // Expression arm: tokens to the `,` (or closing `}`) at
            // depth 0, then re-parse so inner structure survives.
            let mut expr = Vec::new();
            let mut d = 0i32;
            while *i < toks.len() {
                let t = toks[*i];
                match t.text {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" => d -= 1,
                    "}" => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    "," if d == 0 => {
                        *i += 1;
                        break;
                    }
                    _ => {}
                }
                expr.push(t);
                *i += 1;
            }
            let mut j = 0;
            arm.extend(parse_nodes(&expr, &mut j, false));
        }
        arms.push(arm);
    }
    Node::Branch {
        arms,
        exhaustive: true,
    }
}
