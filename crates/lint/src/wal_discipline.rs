// The declared WAL-first mutation discipline — consumed by the
// `wal-before-mutation` rule (and kept beside `lock_hierarchy.rs` /
// `atomics_discipline.rs` so the three discipline tables live in one
// place). The commit/migration life cycle (paper §IV, §VI) demands
// that every *destructive* page / RID-Map / IMRS mutation is dominated
// by a log append on every control-flow path: a failed append must
// leave committed data untouched, and recovery must be able to replay
// or discard what the log says. The reverse order has produced real
// bugs twice (PR 2's lost acknowledged row, PR 8's freeze ordering).
//
// *Additive* operations on uncommitted data (`heap.insert`,
// `store.insert_row`, staging redo in a per-txn buffer) are exempt by
// design: recovery gates them on the transaction's commit verdict, so
// an unlogged loser is simply discarded. Replay/undo contexts apply
// the log itself and are classified out below.

/// Destructive mutation methods, keyed `(receiver name, method)`. The
/// receiver is the field or binding before the dot (`sh.ridmap.set` →
/// `ridmap`), file-scoped to `crates/core` by the rule itself.
pub const MUTATION_METHODS: &[(&str, &str, &str)] = &[
    ("ridmap", "set", "RID-Map location flip"),
    ("ridmap", "remove", "RID-Map entry removal"),
    ("ridmap", "compare_and_set", "RID-Map location flip"),
    ("heap", "delete", "page slot delete"),
    ("heap", "update", "in-place page overwrite"),
    ("heap", "try_update_in_place", "in-place page overwrite"),
    ("heap", "try_update_in_place_logged", "in-place page overwrite"),
    ("store", "remove_row", "IMRS row removal"),
    ("ext", "mark_gone", "frozen-extent slot retirement"),
];

/// Seed append functions: a call to any of these marks the path as
/// logged. `append`/`append_batch` are the `LogSink` trait surface;
/// the `append_*` family are the engine's funnels in front of it.
pub const APPEND_FNS: &[&str] = &[
    "append",
    "append_batch",
    "append_sys",
    "append_imrs",
    "append_imrs_raw",
    "append_imrs_batch",
];

/// Files that ARE the replay path: every mutation in them applies
/// records already read back from the log.
pub const REPLAY_FILES: &[&str] = &["crates/core/src/recovery.rs"];

/// Functions classified as replay/undo context wherever they live:
/// they apply inverses of operations whose forward images were logged
/// (or never acknowledged), so they mutate without appending.
pub const REPLAY_FNS: &[&str] = &["apply_undo", "apply_redo", "adopt_pages"];
