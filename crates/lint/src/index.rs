//! Workspace symbol index.
//!
//! One cheap pass over every file before the rule pass, collecting the
//! facts that cross file boundaries:
//!
//! * **appender functions** — functions whose bodies call one of the
//!   seed log-append functions (`LogSink::append`/`append_batch`, the
//!   engine's `append_*` funnels). The `wal-before-mutation` dataflow
//!   treats a call to any of them as an append: one level of
//!   call-graph propagation, enough for the `log_records_then_mutate`
//!   helper idiom without whole-program analysis.
//!
//! The index is deliberately name-based (no type resolution): two
//! functions sharing a name alias into one entry. That over-approximates
//! appends — a documented blind spot traded for a dependency-free
//! linter that runs in milliseconds.

use std::collections::BTreeSet;

use crate::lexer::{lex, Token};
use crate::rules::{segment, Segmented};
use crate::waldisc;

/// Cross-file facts consumed by [`crate::rules::check_file_with`].
#[derive(Clone, Debug, Default)]
pub struct WorkspaceIndex {
    /// Function names whose bodies (one level deep) append to a log.
    pub appenders: BTreeSet<String>,
}

impl WorkspaceIndex {
    /// Is a call to `name` an append (seed table or propagated)?
    pub fn is_appender(&self, name: &str) -> bool {
        waldisc::APPEND_FNS.contains(&name) || self.appenders.contains(name)
    }
}

/// Build the index over `(workspace-relative path, source)` pairs.
pub fn build_index<P: AsRef<str>, S: AsRef<str>>(files: &[(P, S)]) -> WorkspaceIndex {
    let mut idx = WorkspaceIndex::default();
    for (_, src) in files {
        let tokens = lex(src.as_ref());
        let sig: Vec<Token<'_>> = tokens
            .iter()
            .filter(|t| t.is_significant())
            .copied()
            .collect();
        let Segmented { fns, .. } = segment(&sig);
        for f in fns {
            let Some(name) = f.name else { continue };
            if waldisc::APPEND_FNS.contains(&name) {
                continue; // seeds stand on their own
            }
            let calls_append = f.tokens.iter().enumerate().any(|(i, t)| {
                waldisc::APPEND_FNS.contains(&t.text)
                    && f.tokens.get(i + 1).map(|n| n.text) == Some("(")
            });
            if calls_append {
                idx.appenders.insert(name.to_string());
            }
        }
    }
    idx
}
