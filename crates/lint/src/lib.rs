//! `btrim-lint`: the workspace's static-analysis pass.
//!
//! A dependency-free Rust tokenizer ([`lexer`]) feeds a rule engine
//! ([`rules`]) that segments function bodies, parses each into a
//! CFG-lite statement tree ([`cfg`]), and consults a workspace symbol
//! index ([`index`]) built in a first pass over every crate. Rules:
//!
//! * **lock-order** — nested lock acquisitions must follow the declared
//!   hierarchy in [`hierarchy`] (shared, via `include!`, with the
//!   debug-build lock-rank witness inside the vendored `parking_lot`);
//! * **no-panic** — no `unwrap`/`expect`/`panic!`-family calls in
//!   non-test code of the `wal`, `pagestore`, `imrs`, `txn`, and `core`
//!   crates;
//! * **no-io-under-lock** — no device I/O lexically inside a classified
//!   lock-guard scope in `core` and `wal`;
//! * **snapshot-completeness** — every declared counter/histogram
//!   reaches `render_report`/`to_json` ([`snapshot`], cross-file);
//! * **atomics-ordering** — every cross-thread atomic field declares a
//!   publish/consume protocol in [`atomics`] (`atomics_discipline.rs`,
//!   also `include!`d by the debug-build witness in
//!   `btrim_common::atomics`), and no access uses a weaker ordering;
//! * **wal-before-mutation** — every destructive page/RID-Map/IMRS
//!   mutation in `core` is dominated by a WAL append on all control-flow
//!   paths, per the tables in [`waldisc`] (`wal_discipline.rs`), unless
//!   it is replay/recovery context.
//!
//! Intentional exceptions carry `// lint: allow(<rule>) -- <reason>`
//! escapes; an escape without a reason is itself a finding.
//!
//! Run it as `cargo run -p btrim-lint -- check` from the workspace
//! root; findings print as `file:line:rule: message` (or `--format
//! json`) and a non-empty set exits non-zero.

#![forbid(unsafe_code)]

pub mod cfg;
pub mod index;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod snapshot;

/// The declared lock hierarchy (see `src/lock_hierarchy.rs`, the file
/// also consumed by `shims/parking_lot`'s lock-rank witness).
pub mod hierarchy {
    include!("lock_hierarchy.rs");
}

/// The declared atomics discipline (see `src/atomics_discipline.rs`,
/// the file also consumed by `btrim_common::atomics`' debug witness).
pub mod atomics {
    include!("atomics_discipline.rs");
}

/// The declared WAL-first mutation discipline
/// (see `src/wal_discipline.rs`).
pub mod waldisc {
    include!("wal_discipline.rs");
}

pub use index::{build_index, WorkspaceIndex};
pub use rules::{check_file, check_file_with, Finding, Options};

use std::io;
use std::path::{Path, PathBuf};

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable finding keys on
/// any platform).
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Read every crate's sources under `<root>/crates` as
/// `(workspace-relative path, source)` pairs, sorted by path.
fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} not found — run from the workspace root",
                crates.display()
            ),
        ));
    }
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    let mut sources = Vec::new();
    for path in &files {
        sources.push((rel(root, path), std::fs::read_to_string(path)?));
    }
    Ok(sources)
}

/// The three files the cross-file snapshot-completeness rule reads.
const SNAPSHOT_FILES: &[&str] = &[
    "crates/obs/src/lib.rs",
    "crates/core/src/stats.rs",
    "crates/pagestore/src/buffer.rs",
];

fn snapshot_findings(sources: &[(String, String)]) -> Vec<Finding> {
    let get = |key: &str| {
        sources
            .iter()
            .find(|(p, _)| p == key)
            .map(|(_, s)| s.as_str())
    };
    if let (Some(obs), Some(stats), Some(buffer)) = (
        get(SNAPSHOT_FILES[0]),
        get(SNAPSHOT_FILES[1]),
        get(SNAPSHOT_FILES[2]),
    ) {
        snapshot::check(
            (SNAPSHOT_FILES[0], obs),
            (SNAPSHOT_FILES[1], stats),
            (SNAPSHOT_FILES[2], buffer),
        )
    } else {
        Vec::new()
    }
}

/// Lint every crate's `src/` under `<root>/crates`: pass one builds the
/// workspace symbol index, pass two runs the per-file rules with it,
/// then the cross-file snapshot-completeness rule runs. Returns sorted
/// findings.
pub fn check_workspace(root: &Path, opts: Options) -> io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let idx = build_index(&sources);
    let mut findings = Vec::new();
    for (path, src) in &sources {
        findings.extend(check_file_with(path, src, opts, &idx));
    }
    findings.extend(snapshot_findings(&sources));
    findings.sort();
    Ok(findings)
}

/// Incremental mode: lint only the files whose workspace-relative paths
/// are in `filter`, but build the symbol index (and escape context)
/// from the whole workspace, so findings on a changed file are exactly
/// the findings a full run would report for it. Cross-file snapshot
/// findings are included when any of the files they read changed.
pub fn check_files(
    root: &Path,
    opts: Options,
    filter: &std::collections::BTreeSet<String>,
) -> io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let idx = build_index(&sources);
    let mut findings = Vec::new();
    for (path, src) in &sources {
        if filter.contains(path) {
            findings.extend(check_file_with(path, src, opts, &idx));
        }
    }
    if SNAPSHOT_FILES.iter().any(|f| filter.contains(*f)) {
        findings.extend(snapshot_findings(&sources));
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}
