//! `btrim-lint`: the workspace's static-analysis pass.
//!
//! A dependency-free Rust tokenizer ([`lexer`]) feeds an
//! intra-procedural rule engine ([`rules`]) enforcing:
//!
//! * **lock-order** — nested lock acquisitions must follow the declared
//!   hierarchy in [`hierarchy`] (shared, via `include!`, with the
//!   debug-build lock-rank witness inside the vendored `parking_lot`);
//! * **no-panic** — no `unwrap`/`expect`/`panic!`-family calls in
//!   non-test code of the `wal`, `pagestore`, `imrs`, `txn`, and `core`
//!   crates;
//! * **no-io-under-lock** — no device I/O lexically inside a classified
//!   lock-guard scope in `core` and `wal`;
//! * **snapshot-completeness** — every declared counter/histogram
//!   reaches `render_report`/`to_json` ([`snapshot`], cross-file).
//!
//! Intentional exceptions carry `// lint: allow(<rule>) -- <reason>`
//! escapes; an escape without a reason is itself a finding.
//!
//! Run it as `cargo run -p btrim-lint -- check` from the workspace
//! root; findings print as `file:line:rule: message` and a non-empty
//! set exits non-zero.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod snapshot;

/// The declared lock hierarchy (see `src/lock_hierarchy.rs`, the file
/// also consumed by `shims/parking_lot`'s lock-rank witness).
pub mod hierarchy {
    include!("lock_hierarchy.rs");
}

pub use rules::{check_file, Finding, Options};

use std::io;
use std::path::{Path, PathBuf};

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable finding keys on
/// any platform).
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every crate's `src/` under `<root>/crates`, then run the
/// cross-file snapshot-completeness rule. Returns sorted findings.
pub fn check_workspace(root: &Path, opts: Options) -> io::Result<Vec<Finding>> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} not found — run from the workspace root",
                crates.display()
            ),
        ));
    }
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    let mut sources: std::collections::BTreeMap<String, String> = Default::default();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let key = rel(root, path);
        findings.extend(check_file(&key, &src, opts));
        sources.insert(key, src);
    }

    const OBS: &str = "crates/obs/src/lib.rs";
    const STATS: &str = "crates/core/src/stats.rs";
    const BUFFER: &str = "crates/pagestore/src/buffer.rs";
    if let (Some(obs), Some(stats), Some(buffer)) =
        (sources.get(OBS), sources.get(STATS), sources.get(BUFFER))
    {
        findings.extend(snapshot::check(
            (OBS, obs),
            (STATS, stats),
            (BUFFER, buffer),
        ));
    }
    findings.sort();
    Ok(findings)
}
