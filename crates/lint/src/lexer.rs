//! A hand-rolled Rust tokenizer.
//!
//! Not a full lexer for the language — a *lossless* one for static
//! analysis: every byte of the input lands in exactly one token, token
//! spans tile the input in order, and no input (including truncated or
//! malformed source) can make it panic. The hard cases it must survive:
//!
//! * raw strings with arbitrary hash fences (`r##"…"##`, `br#"…"#`);
//! * nested block comments (`/* a /* b */ c */`);
//! * the `'` ambiguity between char literals (`'a'`, `'\n'`,
//!   `'\u{1F600}'`) and lifetimes/labels (`'static`, `'outer:`);
//! * unterminated strings and comments (consumed to end of input).
//!
//! Numeric literals are tokenized approximately (`1e-5` splits into
//! `1e`, `-`, `5`): the rules only care that digits never merge with
//! the identifiers and punctuation around them, and approximation keeps
//! the lexer total.

/// Classification of one source token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavor: `"…"`, `b"…"`, `r#"…"#`, `br"…"`.
    StrLit,
    /// Numeric literal (integers, floats, any radix).
    NumLit,
    /// `// …` to end of line (newline not included).
    LineComment,
    /// `/* … */` with nesting; unterminated runs to end of input.
    BlockComment,
    /// Whitespace run.
    Whitespace,
    /// Any other character — single, except the structural two-char
    /// operators `::`, `=>`, and `->`, which lex as one token.
    Punct,
}

/// One token: kind, exact source text, byte offset, and 1-based line of
/// its first character.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub start: usize,
    pub line: u32,
}

impl Token<'_> {
    /// Whether the rule engine should see this token (comments and
    /// whitespace are carried separately).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Cursor over the source; all advances are by whole chars, so slices
/// taken at recorded offsets are always on char boundaries.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            self.bump();
        }
    }

    /// Consume `prefix` if the remaining input starts with it.
    fn eat_str(&mut self, prefix: &str) -> bool {
        if self.src[self.pos..].starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }
}

/// Tokenize `src`. The returned tokens tile the input: concatenating
/// `token.text` in order reproduces `src` exactly.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    let mut line: u32 = 1;
    while cur.pos < src.len() {
        let start = cur.pos;
        let start_line = line;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        if cur.pos == start {
            // Defensive: never loop forever even if a case above failed
            // to advance (release builds have no debug_assert).
            cur.bump();
        }
        let text = &src[start..cur.pos];
        line += text.bytes().filter(|&b| b == b'\n').count() as u32;
        out.push(Token {
            kind,
            text,
            start,
            line: start_line,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let Some(c) = cur.peek() else {
        return TokKind::Punct;
    };
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokKind::Whitespace;
    }
    if cur.eat_str("//") {
        cur.eat_while(|c| c != '\n');
        return TokKind::LineComment;
    }
    if cur.eat_str("/*") {
        let mut depth = 1usize;
        while depth > 0 && cur.pos < cur.src.len() {
            if cur.eat_str("/*") {
                depth += 1;
            } else if cur.eat_str("*/") {
                depth -= 1;
            } else {
                cur.bump();
            }
        }
        return TokKind::BlockComment;
    }
    match c {
        'r' | 'b' => prefixed(cur),
        '\'' => quote(cur),
        '"' => {
            cur.bump();
            eat_string_body(cur);
            TokKind::StrLit
        }
        c if c.is_ascii_digit() => {
            number(cur);
            TokKind::NumLit
        }
        c if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        _ => {
            let first = cur.bump();
            // The structural two-char operators the rule engine keys on
            // lex as single tokens: `::` (path separator — the atomics
            // rule distinguishes `Ordering::X` arguments from struct
            // field declarations `name: T`), `=>` (match arms in the
            // CFG builder), `->` (return types). Everything else stays
            // single-char; no rule needs `==`, `&&`, or the compound
            // assignments, and splitting them keeps the lexer total.
            match (first, cur.peek()) {
                (Some(':'), Some(':')) | (Some('='), Some('>')) | (Some('-'), Some('>')) => {
                    cur.bump();
                }
                _ => {}
            }
            TokKind::Punct
        }
    }
}

/// Tokens starting with `r` or `b`: raw strings, byte strings, byte
/// chars, raw identifiers, or plain identifiers.
fn prefixed(cur: &mut Cursor<'_>) -> TokKind {
    let save = cur.pos;
    let first = cur.bump().unwrap_or('r');
    // `br…` — only string flavors follow a `br` prefix.
    if first == 'b' && cur.peek() == Some('r') {
        let save_b = cur.pos;
        cur.bump();
        if eat_raw_string(cur) {
            return TokKind::StrLit;
        }
        cur.pos = save_b; // plain identifier starting with `br`
    }
    if first == 'b' {
        match cur.peek() {
            Some('"') => {
                cur.bump();
                eat_string_body(cur);
                return TokKind::StrLit;
            }
            Some('\'') => {
                cur.bump();
                eat_char_body(cur);
                return TokKind::CharLit;
            }
            _ => {}
        }
    }
    if first == 'r' {
        if eat_raw_string(cur) {
            return TokKind::StrLit;
        }
        // Raw identifier `r#name`.
        if cur.peek() == Some('#') && cur.peek_at(1).is_some_and(is_ident_start) {
            cur.bump();
            cur.eat_while(is_ident_continue);
            return TokKind::Ident;
        }
    }
    cur.pos = save;
    cur.bump();
    cur.eat_while(is_ident_continue);
    TokKind::Ident
}

/// At a position just past `r` (or `br`): consume `#*"…"#*` if present.
/// Restores the cursor and returns false if this is not a raw string.
fn eat_raw_string(cur: &mut Cursor<'_>) -> bool {
    let save = cur.pos;
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        cur.pos = save;
        return false;
    }
    cur.bump();
    // Scan for `"` followed by `hashes` hashes; unterminated → EOF.
    while cur.pos < cur.src.len() {
        if cur.bump() == Some('"') {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return true;
            }
        }
    }
    true
}

/// Past an opening `"`: consume the body and closing quote, honoring
/// backslash escapes; unterminated → EOF.
fn eat_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Past an opening `'` known to start a char literal: consume through
/// the closing `'` (same line), honoring escapes; give up at newline or
/// EOF so a stray quote cannot swallow the rest of the file.
fn eat_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        match c {
            '\\' => {
                cur.bump();
                cur.bump();
            }
            '\'' => {
                cur.bump();
                return;
            }
            '\n' => return,
            _ => {
                cur.bump();
            }
        }
    }
}

/// `'` — the char-vs-lifetime ambiguity. `'\…` is always a char;
/// `'ident` is a lifetime unless a `'` closes it (`'a'`); any other
/// single char followed by `'` is a char literal; a lone `'` is punct.
fn quote(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // the opening '
    match cur.peek() {
        Some('\\') => {
            eat_char_body(cur);
            TokKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            let save = cur.pos;
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                // `'a'` (or the malformed-but-tokenizable `'abc'`).
                cur.bump();
                TokKind::CharLit
            } else {
                // Lifetime or label; keep only the identifier chars.
                let _ = save;
                TokKind::Lifetime
            }
        }
        Some(c) if c != '\'' && c != '\n' => {
            // `'+'`, `'🦀'`, … — char literal iff a quote closes it.
            if cur.peek_at(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokKind::CharLit
            } else {
                TokKind::Punct
            }
        }
        _ => TokKind::Punct,
    }
}

/// Numeric literal: digits plus alphanumerics/underscore (covers hex,
/// octal, suffixes) and one embedded `.` when followed by a digit.
fn number(cur: &mut Cursor<'_>) {
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut joined = String::new();
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "span gap before {:?}", t.text);
            pos += t.text.len();
            joined.push_str(t.text);
        }
        assert_eq!(joined, src, "tokens must tile the input");
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"a "quoted" thing"#; let t = r##"x"#y"##;"####;
        tiles(src);
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokKind::StrLit && text.contains("quoted")));
        assert!(k
            .iter()
            .any(|(kind, text)| *kind == TokKind::StrLit && text.contains("x\"#y")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        tiles(src);
        let k = kinds(src);
        assert_eq!(k.len(), 3);
        assert_eq!(k[1].0, TokKind::BlockComment);
        assert!(k[1].1.ends_with("comment */"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src =
            "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop { break 'outer; } }";
        tiles(src);
        let k = kinds(src);
        let lifetimes: Vec<_> = k
            .iter()
            .filter(|(kk, _)| *kk == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = k.iter().filter(|(kk, _)| *kk == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 4, "{lifetimes:?}");
        assert_eq!(chars.len(), 2, "{chars:?}");
    }

    #[test]
    fn unterminated_inputs_consume_to_eof() {
        for src in [
            "\"never closed",
            "/* open forever",
            "r#\"raw tail",
            "b\"bytes",
        ] {
            tiles(src);
            assert_eq!(lex(src).len(), 1, "{src:?}");
        }
    }

    #[test]
    fn byte_and_raw_identifiers() {
        let src = "let b = b'x'; let r#fn = br\"raw bytes\"; broke(r, b);";
        tiles(src);
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::CharLit && *t == "b'x'"));
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::Ident && *t == "r#fn"));
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::StrLit && t.starts_with("br\"")));
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::Ident && *t == "broke"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nbb\n\nccc";
        let toks: Vec<_> = lex(src).into_iter().filter(Token::is_significant).collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn strings_hide_code_from_rules() {
        let src = r#"let s = "self.inner.lock() // not code";"#;
        let k = kinds(src);
        assert!(!k.iter().any(|(_, t)| *t == "lock"));
    }
}
