//! The `snapshot-completeness` rule: every counter/histogram the
//! observability layer declares must actually reach the human- and
//! machine-readable reports. This is the one cross-file rule — it reads
//! three files:
//!
//! * `crates/obs/src/lib.rs` — every `OpClass` variant must appear in
//!   `OpClass::ALL` and have an arm in `OpClass::name` (a variant
//!   missing from either silently vanishes from every report);
//! * `crates/core/src/stats.rs` — every `EngineSnapshot` field must be
//!   referenced in `render_report` or `to_json`;
//! * `crates/pagestore/src/buffer.rs` — every `BufferStatsSnapshot`
//!   field must be referenced somewhere in `stats.rs` (the snapshot is
//!   embedded whole, so a counter nobody renders is dead weight).

use std::collections::BTreeSet;

use crate::lexer::{lex, TokKind, Token};
use crate::rules::{escaped_lines, Finding};

const RULE: &str = "snapshot-completeness";

/// Significant tokens of one source.
fn sig(src: &str) -> Vec<Token<'_>> {
    lex(src).into_iter().filter(Token::is_significant).collect()
}

/// Fields of `struct name { … }`: `(field, line)` at brace depth 1.
fn struct_fields(toks: &[Token<'_>], name: &str) -> Vec<(String, u32)> {
    let Some(open) = item_open(toks, "struct", name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if depth == 1 => {
                let prev = toks[j - 1].text;
                let colon = toks.get(j + 1).map(|t| t.text) == Some(":")
                    && toks.get(j + 2).map(|t| t.text) != Some(":");
                if toks[j].kind == TokKind::Ident
                    && colon
                    && matches!(prev, "{" | "," | "pub" | "]")
                {
                    out.push((toks[j].text.to_string(), toks[j].line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Unit variants of `enum name { … }` at depth 1.
fn enum_variants(toks: &[Token<'_>], name: &str) -> Vec<(String, u32)> {
    let Some(open) = item_open(toks, "enum", name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if depth == 1 => {
                let prev = toks[j - 1].text;
                let next = toks.get(j + 1).map(|t| t.text);
                if toks[j].kind == TokKind::Ident
                    && matches!(prev, "{" | ",")
                    && matches!(next, Some(",") | Some("}") | Some("(") | Some("="))
                {
                    out.push((toks[j].text.to_string(), toks[j].line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Index of the `{` opening `kw name … {` (skipping generics and
/// attributes between the name and the brace).
fn item_open(toks: &[Token<'_>], kw: &str, name: &str) -> Option<usize> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == kw && toks[i + 1].text == name {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                return Some(j);
            }
        }
        i += 1;
    }
    None
}

/// Identifier set inside the body of `fn name`.
fn fn_body_idents(toks: &[Token<'_>], name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "fn" && toks[i + 1].text == name {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if toks[j].kind == TokKind::Ident {
                            out.insert(toks[j].text.to_string());
                        }
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Identifiers inside the `[…]` initializer of `const name`.
fn const_array_idents(toks: &[Token<'_>], name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "const" && toks[i + 1].text == name {
            // Skip the type annotation (`: [OpClass; COUNT]`) — only the
            // initializer after `=` names the variants.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            while j < toks.len() && toks[j].text != "[" {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if toks[j].kind == TokKind::Ident {
                            out.insert(toks[j].text.to_string());
                        }
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Run the rule. Paths are used verbatim in findings; sources may be
/// synthetic (the fixture corpus feeds known-bad snippets).
pub fn check(obs: (&str, &str), stats: (&str, &str), buffer: (&str, &str)) -> Vec<Finding> {
    let mut findings = Vec::new();

    // 1. OpClass variants ⊆ ALL ∩ name() arms.
    let obs_toks = sig(obs.1);
    let all = const_array_idents(&obs_toks, "ALL");
    let name_arms = fn_body_idents(&obs_toks, "name");
    for (variant, line) in enum_variants(&obs_toks, "OpClass") {
        for (place, set) in [("`OpClass::ALL`", &all), ("`OpClass::name`", &name_arms)] {
            if !set.contains(&variant) {
                findings.push(Finding {
                    file: obs.0.to_string(),
                    line,
                    rule: RULE,
                    msg: format!(
                        "OpClass::{variant} is declared but missing from {place} — \
                         it would never appear in any report"
                    ),
                });
            }
        }
    }

    // 2. EngineSnapshot fields referenced by render_report ∪ to_json.
    let stats_toks = sig(stats.1);
    let mut rendered = fn_body_idents(&stats_toks, "render_report");
    rendered.extend(fn_body_idents(&stats_toks, "to_json"));
    for (field, line) in struct_fields(&stats_toks, "EngineSnapshot") {
        if !rendered.contains(&field) {
            findings.push(Finding {
                file: stats.0.to_string(),
                line,
                rule: RULE,
                msg: format!("EngineSnapshot::{field} never reaches render_report or to_json"),
            });
        }
    }

    // 3. BufferStatsSnapshot fields referenced from stats.rs.
    let buffer_toks = sig(buffer.1);
    for (field, line) in struct_fields(&buffer_toks, "BufferStatsSnapshot") {
        if !rendered.contains(&field) {
            findings.push(Finding {
                file: buffer.0.to_string(),
                line,
                rule: RULE,
                msg: format!(
                    "BufferStatsSnapshot::{field} is counted but never rendered \
                     by EngineSnapshot::render_report/to_json"
                ),
            });
        }
    }

    // Apply per-file escapes.
    for (path, src) in [obs, stats, buffer] {
        let allowed = escaped_lines(src, RULE);
        findings.retain(|f| f.file != path || !allowed.contains(&f.line));
    }
    findings.sort();
    findings
}
