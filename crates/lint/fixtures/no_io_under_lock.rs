//! Fixture: no-io-under-lock rule. Fed under the path
//! `crates/wal/src/log.rs`, where `inner` classifies as the WAL log
//! mutex (rank 50). Never compiled.

impl FileLog {
    // FINDING: device write while holding the log mutex.
    fn append_bad(&self, payload: &[u8]) {
        let mut inner = self.inner.lock();
        inner.writer.write_all(payload);
    }

    // Clean: the guard's block ends before the write.
    fn append_staged(&self, payload: &[u8]) {
        {
            let mut inner = self.inner.lock();
            inner.pending.push(payload.to_vec());
        }
        self.file.write_all(payload);
    }

    // Clean: annotated I/O that must stay under the lock.
    fn append_serialized(&self, payload: &[u8]) {
        let mut inner = self.inner.lock();
        inner.writer.write_all(payload); // lint: allow(no-io-under-lock) -- fixture: the write must serialize with the LSN assignment
    }
}
