//! Fixture: no-panic rule. Fed under a `crates/wal/` path, where
//! non-test code must be panic-free. Never compiled.

// FINDING ×2: unwrap and expect in engine code.
fn parse(data: &[u8]) -> u32 {
    let b = data.get(0..4).unwrap();
    u32::from_le_bytes(b.try_into().expect("4 bytes"))
}

// FINDING: panic! macro.
fn boom() {
    panic!("nope");
}

// FINDING: unreachable! macro.
fn cant_happen() {
    unreachable!("never");
}

// Clean: a trailing escape with a reason suppresses the finding.
fn annotated() {
    let x: Option<u8> = Some(1);
    x.unwrap(); // lint: allow(no-panic) -- fixture: reason recorded here
}

// Clean: a standalone escape covers the next code line.
fn annotated_above() {
    let x: Option<u8> = Some(1);
    // lint: allow(no-panic) -- fixture: standalone comment form
    x.unwrap();
}

// Clean: tests may panic freely.
#[test]
fn tests_may_panic() {
    None::<u8>.unwrap();
    panic!("fine in tests");
}

// PEDANTIC FINDING: direct indexing (only with --pedantic).
fn index(data: &[u8]) -> u8 {
    data[0]
}
