//! Fixture: bad-escape rule — malformed or unexplained escapes are
//! themselves findings. Never compiled.

fn unknown_rule() {
    let x: Option<u8> = Some(1);
    x.unwrap(); // lint: allow(no-such-rule) -- FINDING: rule does not exist
}

fn missing_reason() {
    let x: Option<u8> = Some(1);
    x.unwrap(); // lint: allow(no-panic)
}

fn missing_allow() {
    // lint: suppress everything please
    let x: Option<u8> = Some(1);
    x.unwrap();
}
