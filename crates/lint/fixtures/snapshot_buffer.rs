//! Fixture: snapshot-completeness, buffer side. `cold_scans` is counted
//! but never rendered by the stats fixture — one finding. Never compiled.

pub struct BufferStatsSnapshot {
    pub committed_txns: u64,
    pub cold_scans: u64,
}
