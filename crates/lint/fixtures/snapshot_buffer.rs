//! Fixture: snapshot-completeness, buffer side. `cold_scans` and
//! `capacity_shifts` are counted but never rendered by the stats
//! fixture — two findings. `shrink_debt` is rendered there, so it
//! stays silent. Never compiled.

pub struct BufferStatsSnapshot {
    pub committed_txns: u64,
    pub shrink_debt: u64,
    pub cold_scans: u64,
    pub capacity_shifts: u64,
}
