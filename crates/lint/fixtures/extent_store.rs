//! Fixture: lock-order rule for the extent-store publish lock. Fed to
//! the linter under the path `crates/pagestore/src/extent.rs`, where
//! `publish` classifies as extent-store (rank 48). Never compiled —
//! this file is raw input for the rule engine.

impl ExtentStore {
    // FINDING: publish (48) re-acquired while already held — the
    // directory publish lock is not re-entrant, and rank >= rank is an
    // ordering violation by definition.
    fn backwards(&self, other: &ExtentStore) {
        let a = self.publish.lock();
        let b = other.publish.lock();
        b.touch(&a);
    }

    // Clean: the first guard's scope ends before the second
    // acquisition.
    fn scoped(&self, other: &ExtentStore) {
        {
            let a = self.publish.lock();
            a.touch();
        }
        let b = other.publish.lock();
        b.touch();
    }

    // Clean: explicit drop ends the guard first.
    fn dropped(&self, other: &ExtentStore) {
        let a = self.publish.lock();
        a.touch();
        drop(a);
        let b = other.publish.lock();
        b.touch();
    }
}
