//! Fixture for the wal-before-mutation rule. Checked under a
//! `crates/core/src/…` path (the only crate the rule gates). Not
//! compiled — the tests `include_str!` it and lint the text.

// BAD: destructive RID-Map write with no WAL append anywhere.
pub fn mutate_unlogged(&self, row: RowId, loc: RowLocation) {
    self.sh.ridmap.set(row, loc);
}

// BAD: the append happens AFTER the page mutation — a crash between
// the two leaves an unlogged change.
pub fn log_after(&self, page: PageId, slot: SlotId) -> Result<()> {
    heap.delete(&self.sh.cache, page, slot)?;
    self.sh.append_sys(&rec)?;
    Ok(())
}

// BAD: the append only dominates the then-branch; on the fall-through
// path the mutation is unlogged.
pub fn log_sometimes(&self, big: bool, row: RowId, loc: RowLocation) {
    if big {
        self.sh.append_sys(&rec);
    }
    self.sh.ridmap.set(row, loc);
}

// GOOD: log first, mutate second.
pub fn log_first(&self, row: RowId, loc: RowLocation) {
    self.sh.append_sys(&rec);
    self.sh.ridmap.set(row, loc);
}

// GOOD: every arm of the exhaustive branch appends before the
// mutation joins the paths.
pub fn log_both(&self, big: bool, page: PageId, slot: SlotId) {
    if big {
        self.sh.append_sys(&big_rec);
    } else {
        self.sh.append_sys(&small_rec);
    }
    heap.update(&self.sh.cache, page, slot, data);
}

// GOOD: replay context — recovery re-applies already-durable records.
pub fn apply_undo(&self, row: RowId) {
    self.sh.ridmap.remove(row);
}

// GOOD: a reasoned escape for a mutation whose record is durable.
pub fn purge_like(&self, row: RowId) {
    // lint: allow(wal-before-mutation) -- fixture: the delete record
    // fell below the snapshot horizon, so it is already durable
    self.sh.ridmap.remove(row);
}

// Helper that seeds the appender index: its body calls a WAL append.
pub fn log_helper(&self) {
    self.sh.append_sys(&rec);
}

// Dominated through the one-level call graph: `log_helper` is an
// appender, so with a workspace index this is clean; without one
// (default index) it fires.
pub fn via_helper(&self, row: RowId, loc: RowLocation) {
    self.log_helper();
    self.sh.ridmap.set(row, loc);
}
