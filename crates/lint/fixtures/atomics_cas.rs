//! Fixture for the atomics-ordering rule's RMW/CAS slots. Checked
//! under the `crates/txn/src/manager.rs` path so the `slots` (seq-cst)
//! declaration applies. Not compiled.

use std::sync::atomic::{AtomicU64, Ordering};

// BAD twice: the seq-cst protocol demands SeqCst on both the RMW and
// the CAS failure load; AcqRel/Acquire are weaker.
pub fn claim_weak(slots: &AtomicU64, stamp: u64) -> bool {
    slots
        .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

// GOOD: full-strength CAS.
pub fn claim(slots: &AtomicU64, stamp: u64) -> bool {
    slots
        .compare_exchange(0, stamp, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

// GOOD: SeqCst RMW.
pub fn release(slots: &AtomicU64) -> u64 {
    slots.swap(0, Ordering::SeqCst)
}
