//! Fixture: lock-order rule. Fed to the linter under the path
//! `crates/pagestore/src/buffer.rs`, where `inner` classifies as
//! buffer-shard (rank 20), `data`/`io` as frame (rank 30), and
//! `lock_shard(..)` as a guard-returning buffer-shard acquisition.
//! Never compiled — this file is raw input for the rule engine.

impl Shard {
    // FINDING: frame (30) held, then buffer-shard (20) — backwards.
    fn backwards(&self) {
        let d = self.data.write();
        let s = self.inner.lock();
        s.touch(&d);
    }

    // FINDING: same inversion through a guard-returning function.
    fn backwards_via_fn(&self, pool: &Pool) {
        let d = self.data.write();
        let s = lock_shard(pool, 3);
        s.touch(&d);
    }

    // Clean: shard before frame matches the declared hierarchy.
    fn forwards(&self) {
        let s = self.inner.lock();
        let d = self.data.write();
        d.touch(&s);
    }

    // Clean: the frame guard's block ends before the shard lock.
    fn scoped(&self) {
        {
            let d = self.data.write();
            d.touch();
        }
        let s = self.inner.lock();
        s.touch();
    }

    // Clean: explicit drop ends the guard before the shard lock.
    fn dropped(&self) {
        let d = self.data.write();
        d.touch();
        drop(d);
        let s = self.inner.lock();
        s.touch();
    }
}
