//! Fixture: snapshot-completeness, stats side. `orphan_counter` never
//! reaches `render_report` or `to_json` — one finding. `arbiter_shifts`
//! is rendered, so it stays silent. Never compiled.

pub struct EngineSnapshot {
    pub committed_txns: u64,
    pub arbiter_shifts: u64,
    pub orphan_counter: u64,
}

impl EngineSnapshot {
    pub fn render_report(&self) -> String {
        format!(
            "commits {} shifts {} debt {}",
            self.committed_txns, self.arbiter_shifts, self.buffer.shrink_debt
        )
    }

    pub fn to_json(&self) -> String {
        format!("{{\"committed_txns\":{}}}", self.committed_txns)
    }
}
