//! Fixture: snapshot-completeness, stats side. `orphan_counter` never
//! reaches `render_report` or `to_json` — one finding. Never compiled.

pub struct EngineSnapshot {
    pub committed_txns: u64,
    pub orphan_counter: u64,
}

impl EngineSnapshot {
    pub fn render_report(&self) -> String {
        format!("commits {}", self.committed_txns)
    }

    pub fn to_json(&self) -> String {
        format!("{{\"committed_txns\":{}}}", self.committed_txns)
    }
}
