//! Fixture: snapshot-completeness, obs side. `Ghost` is declared but
//! missing from both `ALL` and `name()` — two findings. Never compiled.

pub enum OpClass {
    Get,
    Insert,
    Ghost,
}

impl OpClass {
    pub const ALL: [OpClass; 2] = [OpClass::Get, OpClass::Insert];

    pub fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Insert => "insert",
            _ => "?",
        }
    }
}
