//! Fixture for the atomics-ordering rule. Checked under the
//! `crates/imrs/src/arena.rs` path so the `commit_ts` (acq-rel) and
//! `head` (acq-rel) protocol declarations apply. Not compiled — the
//! tests `include_str!` it and run the linter over the text.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Node {
    commit_ts: AtomicU64,
    head: AtomicU64,
    // Undeclared atomic field: decl-completeness finding.
    mystery_flag: AtomicU64,
}

impl Node {
    // BAD: Relaxed publish store on an acq-rel field.
    pub fn publish_relaxed(&self, ts: u64) {
        self.commit_ts.store(ts, Ordering::Relaxed);
    }

    // BAD: Relaxed load on an acq-rel field.
    pub fn read_relaxed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    // GOOD: the declared protocol.
    pub fn publish(&self, ts: u64) {
        self.commit_ts.store(ts, Ordering::Release);
    }

    // GOOD: acquire side of the declared protocol.
    pub fn read(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    // GOOD: SeqCst is never weaker than the declaration.
    pub fn read_strong(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    // GOOD: a reasoned escape suppresses the weak access.
    pub fn read_escaped(&self) -> u64 {
        // lint: allow(atomics-ordering) -- fixture: a chain lock held by
        // every caller orders this load after the publishing store
        self.head.load(Ordering::Relaxed)
    }
}
