//! Fixture: lock-order rule for the memory-arbiter window lock. Fed to
//! the linter under the path `crates/core/src/arbiter.rs`, where
//! `window` classifies as mem-arbiter (rank 12). Never compiled — this
//! file is raw input for the rule engine.

impl MemoryArbiter {
    // FINDING: window (12) re-acquired while already held — two
    // arbiters never coordinate, and rank >= rank is an ordering
    // violation by definition.
    fn backwards(&self, other: &MemoryArbiter) {
        let a = self.window.lock();
        let b = other.window.lock();
        b.touch(&a);
    }

    // Clean: the first guard's scope ends before the second
    // acquisition.
    fn scoped(&self, other: &MemoryArbiter) {
        {
            let a = self.window.lock();
            a.touch();
        }
        let b = other.window.lock();
        b.touch();
    }

    // Clean: explicit drop ends the guard first — this is the shape
    // `run_window` uses so pool resizing happens outside the lock.
    fn dropped(&self, other: &MemoryArbiter) {
        let a = self.window.lock();
        a.touch();
        drop(a);
        let b = other.window.lock();
        b.touch();
    }
}
