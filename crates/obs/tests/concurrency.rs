//! Satellite: 8 threads hammering one histogram and one ILM trace ring
//! must lose no counts and never produce torn or interleaved events.

use std::sync::Arc;

use btrim_common::{LatencyHistogram, TraceRing};
use btrim_obs::{IlmTraceEvent, Obs, OpClass, PackCycleTrace, PackPartitionTrace};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn eight_threads_lose_no_histogram_counts() {
    let h = Arc::new(LatencyHistogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread values across many octaves so every thread
                    // contends on overlapping buckets.
                    h.record((t + 1) * (i % 4096 + 1));
                }
            });
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    // The sum is exactly reproducible: Σ_t Σ_i (t+1)*(i%4096+1).
    let expected: u64 = (1..=THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * (i % 4096 + 1)).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected);
    assert_eq!(s.max, THREADS * 4096);
}

#[test]
fn eight_threads_merge_into_one_losslessly() {
    // Per-thread histograms merged at the end equal one shared target —
    // the pattern multi-engine benches use.
    let partials: Vec<Arc<LatencyHistogram>> = (0..THREADS)
        .map(|_| Arc::new(LatencyHistogram::new()))
        .collect();
    std::thread::scope(|s| {
        for (t, h) in partials.iter().enumerate() {
            let h = Arc::clone(h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((t as u64 + 1) << (i % 20));
                }
            });
        }
    });
    let merged = LatencyHistogram::new();
    for h in &partials {
        merged.merge_from(h);
    }
    assert_eq!(merged.count(), THREADS * PER_THREAD);
    let s = merged.snapshot();
    assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
}

/// Every pushed event must come out whole: the cycle ordinal is
/// repeated in every field, so any torn or interleaved write shows up
/// as a mismatch.
fn stamped_event(thread: u64, seq: u64) -> IlmTraceEvent {
    let stamp = thread * 1_000_000 + seq;
    IlmTraceEvent::Pack(PackCycleTrace {
        cycle: stamp,
        level: "steady",
        utilization: stamp as f64,
        num_bytes_to_pack: stamp,
        bytes_packed: stamp,
        partitions: vec![PackPartitionTrace {
            partition: stamp,
            ui: stamp as f64,
            cui: stamp as f64,
            pi: stamp as f64,
            target_bytes: stamp,
            bytes_packed: stamp,
            rows_skipped_hot: stamp,
            tsf_bypassed: false,
            scanned: true,
        }],
    })
}

fn assert_untorn(ev: &IlmTraceEvent) -> u64 {
    let IlmTraceEvent::Pack(p) = ev else {
        panic!("unexpected event kind");
    };
    let stamp = p.cycle;
    assert_eq!(p.num_bytes_to_pack, stamp, "torn event");
    assert_eq!(p.bytes_packed, stamp, "torn event");
    assert_eq!(p.utilization, stamp as f64, "torn event");
    assert_eq!(p.partitions.len(), 1);
    let s = &p.partitions[0];
    assert_eq!(s.partition, stamp, "torn partition slice");
    assert_eq!(s.target_bytes, stamp, "torn partition slice");
    assert_eq!(s.rows_skipped_hot, stamp, "torn partition slice");
    stamp
}

#[test]
fn eight_threads_never_tear_trace_events() {
    const EVENTS: u64 = 2_000;
    let ring: Arc<TraceRing<IlmTraceEvent>> = Arc::new(TraceRing::new(512));
    std::thread::scope(|s| {
        // Writers push stamped events; a reader concurrently snapshots
        // and validates while the ring churns.
        for t in 0..THREADS {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..EVENTS {
                    ring.push(stamped_event(t, i));
                }
            });
        }
        let ring = Arc::clone(&ring);
        s.spawn(move || {
            while ring.pushed() < THREADS * EVENTS {
                for ev in ring.events() {
                    assert_untorn(&ev);
                }
            }
        });
    });
    // Accounting: everything pushed is either retained or counted as
    // evicted — no silent loss.
    assert_eq!(ring.pushed(), THREADS * EVENTS);
    assert_eq!(ring.pushed(), ring.dropped() + ring.len() as u64);
    // Final contents are whole, and per-thread sequence numbers appear
    // in increasing order (events from one thread never reorder).
    let mut last_seq = vec![None::<u64>; THREADS as usize];
    for ev in ring.events() {
        let stamp = assert_untorn(&ev);
        let (t, seq) = ((stamp / 1_000_000) as usize, stamp % 1_000_000);
        if let Some(prev) = last_seq[t] {
            assert!(
                seq > prev,
                "thread {t} events reordered: {seq} after {prev}"
            );
        }
        last_seq[t] = Some(seq);
    }
}

#[test]
fn obs_hub_is_safely_shared() {
    // The full hub under concurrent latency records + trace pushes, the
    // way engine threads and maintenance threads share it.
    let obs = Arc::new(Obs::new(true, 256));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let obs = Arc::clone(&obs);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    obs.record_nanos(OpClass::SelectImrs, i + 1);
                    if i % 100 == 0 {
                        obs.trace.push(stamped_event(t, i));
                    }
                }
            });
        }
    });
    assert_eq!(obs.hist(OpClass::SelectImrs).count(), THREADS * 10_000);
    assert_eq!(obs.trace.pushed(), THREADS * 100);
    for ev in obs.trace.events() {
        assert_untorn(&ev);
    }
}
