//! `btrim-obs`: the engine's observability layer.
//!
//! Three pieces, mirroring what the paper's evaluation (§VIII) needed
//! to *measure* and what its control loops (§V, §VI) needed to
//! *explain*:
//!
//! 1. A per-operation-class registry of lock-free log-scale latency
//!    histograms ([`Obs`] over [`btrim_common::LatencyHistogram`]) —
//!    ISUD split by IMRS-vs-page-store path, commit, WAL append/fsync,
//!    buffer-cache miss fetches, migration, pack cycles, GC passes,
//!    and tuning windows.
//! 2. An ILM decision trace ([`IlmTraceEvent`] in a
//!    [`btrim_common::TraceRing`]): every tuner verdict with the rule
//!    that fired and the inputs it saw, and every pack cycle with its
//!    `NumBytesToPack` apportioning (UI/CUI/PI) and TSF-bypass
//!    decisions.
//! 3. JSON export helpers ([`json`]) so benches and the TPC-C driver
//!    can report latency percentiles alongside throughput without
//!    serde.
//!
//! Cost model: when latency recording is disabled, [`Obs::start`]
//! returns `None` without reading the clock, so a disabled engine pays
//! one branch per instrumented operation. When enabled, each record is
//! two `Instant::now()` calls plus four relaxed atomic RMWs (measured
//! in EXPERIMENTS.md).

#![forbid(unsafe_code)]

pub mod json;

use std::sync::Arc;
use std::time::Instant;

use btrim_common::{HistSummary, LatencyHistogram, TraceRing};

/// Operation classes with dedicated latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum OpClass {
    /// INSERT placed in the IMRS.
    InsertImrs,
    /// INSERT routed to the page store.
    InsertPage,
    /// SELECT served from an IMRS row (re-use).
    SelectImrs,
    /// SELECT served from the page store.
    SelectPage,
    /// Snapshot (MVCC) read by a read-only transaction: version-chain
    /// walk on the IMRS path, page bytes + before-image side store on
    /// the page path. Tracked separately from `SelectImrs`/`SelectPage`
    /// because this is the lock-free path whose tail latency must stay
    /// flat as writers scale.
    SnapshotRead,
    /// UPDATE applied to an IMRS row.
    UpdateImrs,
    /// UPDATE applied in the page store.
    UpdatePage,
    /// DELETE of an IMRS row.
    DeleteImrs,
    /// DELETE of a page-store row.
    DeletePage,
    /// Whole commit call (log drain + group flush when durable).
    Commit,
    /// Commit-time serialization work inside `Commit`: stamping the
    /// commit timestamp into the transaction's staged WAL buffer and
    /// building the batch slices. The per-record encode itself happens
    /// at DML time (inside the ISUD classes), so this measures exactly
    /// what is left of serialization on the commit critical path.
    CommitSerialize,
    /// One WAL record append (either log).
    WalAppend,
    /// One WAL flush/fsync (group-commit leader or direct flush).
    WalFsync,
    /// Buffer-cache miss: disk fetch + frame install (hits untimed).
    BufferMiss,
    /// Page-store → IMRS movement (migration or select-caching).
    Migration,
    /// One pack cycle (§VI.B).
    PackCycle,
    /// One GC pass.
    GcPass,
    /// One tuning window (§V.B).
    TuningWindow,
    /// One fuzzy-checkpoint flush batch (dirty pages written back
    /// without quiescing writers).
    CheckpointFlush,
    /// One recovery replay worker's shard of forward redo (page-log
    /// redo or IMRS replay).
    RecoveryReplay,
    /// One snapshot-isolated analytic scan merging frozen extents,
    /// IMRS deltas, and page-resident rows.
    AnalyticScan,
}

impl OpClass {
    /// Number of classes; sizes the histogram table.
    pub const COUNT: usize = 21;

    /// All classes, in display order.
    pub const ALL: [OpClass; Self::COUNT] = [
        OpClass::InsertImrs,
        OpClass::InsertPage,
        OpClass::SelectImrs,
        OpClass::SelectPage,
        OpClass::SnapshotRead,
        OpClass::UpdateImrs,
        OpClass::UpdatePage,
        OpClass::DeleteImrs,
        OpClass::DeletePage,
        OpClass::Commit,
        OpClass::CommitSerialize,
        OpClass::WalAppend,
        OpClass::WalFsync,
        OpClass::BufferMiss,
        OpClass::Migration,
        OpClass::PackCycle,
        OpClass::GcPass,
        OpClass::TuningWindow,
        OpClass::CheckpointFlush,
        OpClass::RecoveryReplay,
        OpClass::AnalyticScan,
    ];

    /// Stable machine-readable name (JSON keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::InsertImrs => "insert_imrs",
            OpClass::InsertPage => "insert_page",
            OpClass::SelectImrs => "select_imrs",
            OpClass::SelectPage => "select_page",
            OpClass::SnapshotRead => "snapshot_read",
            OpClass::UpdateImrs => "update_imrs",
            OpClass::UpdatePage => "update_page",
            OpClass::DeleteImrs => "delete_imrs",
            OpClass::DeletePage => "delete_page",
            OpClass::Commit => "commit",
            OpClass::CommitSerialize => "commit_serialize",
            OpClass::WalAppend => "wal_append",
            OpClass::WalFsync => "wal_fsync",
            OpClass::BufferMiss => "buffer_miss_fetch",
            OpClass::Migration => "migration",
            OpClass::PackCycle => "pack_cycle",
            OpClass::GcPass => "gc_pass",
            OpClass::TuningWindow => "tuning_window",
            OpClass::CheckpointFlush => "checkpoint_flush",
            OpClass::RecoveryReplay => "recovery_replay",
            OpClass::AnalyticScan => "analytic_scan",
        }
    }
}

/// The observability hub: one histogram per [`OpClass`] plus the ILM
/// decision trace. Shared via `Arc` between the engine facade, its
/// background threads, and the WAL/buffer-cache hooks (which hold
/// plain `Arc<LatencyHistogram>` clones so the lower crates never
/// depend on this one).
pub struct Obs {
    latency_enabled: bool,
    hists: [Arc<LatencyHistogram>; OpClass::COUNT],
    /// Bounded ring of tuner verdicts and pack-cycle summaries.
    pub trace: TraceRing<IlmTraceEvent>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(true, 1024)
    }
}

impl Obs {
    pub fn new(latency_enabled: bool, trace_capacity: usize) -> Self {
        Obs {
            latency_enabled,
            hists: std::array::from_fn(|_| Arc::new(LatencyHistogram::new())),
            trace: TraceRing::new(trace_capacity),
        }
    }

    /// Everything off: no clock reads, no trace retention.
    pub fn disabled() -> Self {
        Self::new(false, 0)
    }

    pub fn latency_enabled(&self) -> bool {
        self.latency_enabled
    }

    /// Start timing an operation. `None` (no clock read at all) when
    /// latency recording is disabled — the caller just threads the
    /// `Option` through to [`Obs::record_since`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.latency_enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the elapsed nanoseconds since `started` under `class`.
    #[inline]
    pub fn record_since(&self, class: OpClass, started: Option<Instant>) {
        if let Some(t) = started {
            self.hists[class as usize].record(t.elapsed().as_nanos() as u64);
        }
    }

    /// Record an externally measured value (nanoseconds) under `class`.
    #[inline]
    pub fn record_nanos(&self, class: OpClass, nanos: u64) {
        if self.latency_enabled {
            self.hists[class as usize].record(nanos);
        }
    }

    /// The histogram behind a class — cloned into WAL / buffer-cache
    /// hooks, merged by multi-engine benches.
    pub fn hist(&self, class: OpClass) -> &Arc<LatencyHistogram> {
        &self.hists[class as usize]
    }

    /// Summaries of every class that recorded at least one value.
    pub fn summaries(&self) -> Vec<(OpClass, HistSummary)> {
        OpClass::ALL
            .iter()
            .filter_map(|&c| {
                let s = self.hists[c as usize].summary();
                (s.count > 0).then_some((c, s))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// ILM decision trace events
// ---------------------------------------------------------------------

/// What a tuner verdict did to a partition's ILM state (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerAction {
    /// A disable vote was cast (hysteresis still counting).
    VoteDisable,
    /// Stage 1 applied: select-caching and update-migration off.
    DisabledStage1,
    /// Stage 2 applied: inserts off too — partition fully disabled.
    DisabledFull,
    /// An enable vote was cast (hysteresis still counting).
    VoteEnable,
    /// All IMRS use re-enabled.
    Reenabled,
}

impl TunerAction {
    pub fn name(self) -> &'static str {
        match self {
            TunerAction::VoteDisable => "vote_disable",
            TunerAction::DisabledStage1 => "disabled_stage1",
            TunerAction::DisabledFull => "disabled_full",
            TunerAction::VoteEnable => "vote_enable",
            TunerAction::Reenabled => "reenabled",
        }
    }

    /// Whether this action toggled the partition's ILM state (matches
    /// `PartitionIlmState::toggles`).
    pub fn is_toggle(self) -> bool {
        matches!(
            self,
            TunerAction::DisabledStage1 | TunerAction::DisabledFull | TunerAction::Reenabled
        )
    }
}

/// One tuner verdict: the rule that fired and every input it read.
/// Hold verdicts (no vote, no transition) are not traced — they carry
/// no decision and would flood the bounded ring.
#[derive(Clone, Debug)]
pub struct TunerTrace {
    /// Tuning window ordinal (1-based, `Tuner::windows_run` after).
    pub window: u64,
    /// Partition the verdict applies to.
    pub partition: u64,
    pub action: TunerAction,
    /// Which §V rule fired: `low-reuse` (disable path), `contention`
    /// or `demand-growth` (re-enable path).
    pub rule: &'static str,
    /// Window delta of re-use ops (S+U+D on IMRS rows).
    pub reuse_ops: u64,
    /// Window delta of new rows brought into the IMRS.
    pub rows_in: u64,
    /// Window delta of page-store ops.
    pub page_ops: u64,
    /// Window delta of contended page-store ops.
    pub page_contention: u64,
    /// Re-use per resident row this window (`low-reuse` input).
    pub avg_reuse: f64,
    /// Partition IMRS footprint in bytes (guard input).
    pub footprint_bytes: u64,
    /// IMRS-resident rows in the partition.
    pub resident_rows: u64,
    /// Overall IMRS utilization at verdict time (guard input).
    pub utilization: f64,
    /// Re-use + page ops this window (`demand-growth` numerator).
    pub activity: u64,
    /// Activity in the window the partition was disabled (baseline).
    pub activity_baseline: u64,
    /// Consecutive same-direction votes including this one.
    pub votes: u32,
    /// Votes required before the verdict is applied (hysteresis).
    pub votes_needed: u32,
}

/// Per-partition slice of one pack cycle (§VI.C apportioning).
#[derive(Clone, Debug)]
pub struct PackPartitionTrace {
    pub partition: u64,
    /// Usefulness index `SUD_ρ / Σ SUD` (0 under the uniform policy).
    pub ui: f64,
    /// Cache-utilization index `mem_ρ / Σ mem` (0 under uniform).
    pub cui: f64,
    /// Packability index — this partition's share of the cycle.
    pub pi: f64,
    /// Byte target apportioned to the partition.
    pub target_bytes: u64,
    /// Bytes actually packed out.
    pub bytes_packed: u64,
    /// Rows inspected but rotated back as hot.
    pub rows_skipped_hot: u64,
    /// Whether the TSF was bypassed for this partition (low re-use
    /// rate, §VI.D.2) — when true, recency could not protect rows.
    pub tsf_bypassed: bool,
    /// False when the `pi < 0.01` gate skipped the partition without
    /// scanning its queue.
    pub scanned: bool,
}

/// One pack cycle: the global byte budget and how it was spent.
#[derive(Clone, Debug)]
pub struct PackCycleTrace {
    /// Cycle ordinal (`PackState::cycles` after this cycle).
    pub cycle: u64,
    /// Pack level: `steady` or `aggressive`.
    pub level: &'static str,
    /// IMRS utilization when the cycle started.
    pub utilization: f64,
    /// `NumBytesToPack` for the cycle.
    pub num_bytes_to_pack: u64,
    /// Bytes actually packed across all partitions.
    pub bytes_packed: u64,
    pub partitions: Vec<PackPartitionTrace>,
}

/// One fuzzy checkpoint, begin to end: how much it wrote, in how many
/// rate-limited batches, the low-water LSN it certified, and how long
/// the flushing stalled the checkpoint thread (writers are never
/// stalled — that is the contract this trace exists to audit).
#[derive(Clone, Debug)]
pub struct CheckpointTrace {
    /// Checkpoint ordinal (1-based over the engine's lifetime).
    pub ordinal: u64,
    /// Dirty pages enumerated at begin.
    pub dirty_pages: u64,
    /// Pages actually written back (≤ `dirty_pages`: pages evicted or
    /// cleaned mid-checkpoint are skipped).
    pub pages_flushed: u64,
    /// Flush batches issued.
    pub batches: u64,
    /// Redo low-water LSN the completed pair certified.
    pub low_water_lsn: u64,
    /// Syslog records dropped by the post-checkpoint prefix truncation.
    pub truncated_records: u64,
    /// Wall time the checkpoint thread spent flushing + syncing
    /// (excludes the deliberate inter-batch pauses).
    pub stall_nanos: u64,
}

/// One freeze decision: a batch of cold page-resident rows promoted
/// into an immutable compressed columnar extent, with the compression
/// achieved and why candidate rows were passed over.
#[derive(Clone, Debug)]
pub struct FreezeTrace {
    /// Extent id assigned to the new extent.
    pub extent: u64,
    /// Partition the rows were harvested from.
    pub partition: u64,
    /// Rows frozen into the extent.
    pub rows: u64,
    /// Uncompressed row-image bytes represented by the extent.
    pub raw_bytes: u64,
    /// Encoded (dictionary + bit-packed) extent size on the log.
    pub encoded_bytes: u64,
    /// Candidates skipped because their row lock was held.
    pub rows_skipped_hot: u64,
    /// Candidates skipped because a snapshot older than their newest
    /// stamped version was still pinned.
    pub rows_skipped_recent: u64,
    /// Whether the extent used the declared per-column layout (true)
    /// or fell back to a single opaque byte column (false).
    pub schema_columns: bool,
}

/// What a memory-arbiter window decided about the IMRS ↔ buffer-cache
/// budget split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArbiterAction {
    /// The IMRS had the higher marginal utility; hysteresis counting.
    VoteImrs,
    /// The buffer cache had the higher marginal utility; counting.
    VoteBuffer,
    /// Votes reached the hysteresis bar: budget moved to the IMRS.
    ShiftToImrs,
    /// Votes reached the hysteresis bar: budget moved to the cache.
    ShiftToBuffer,
}

impl ArbiterAction {
    pub fn name(self) -> &'static str {
        match self {
            ArbiterAction::VoteImrs => "vote_imrs",
            ArbiterAction::VoteBuffer => "vote_buffer",
            ArbiterAction::ShiftToImrs => "shift_to_imrs",
            ArbiterAction::ShiftToBuffer => "shift_to_buffer",
        }
    }

    /// Whether this action actually moved budget (matches the engine's
    /// shift counters).
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            ArbiterAction::ShiftToImrs | ArbiterAction::ShiftToBuffer
        )
    }
}

/// One memory-arbiter verdict: the marginal utilities compared and
/// every input they were computed from. Hold verdicts (neither side
/// ahead by the margin) are not traced, mirroring the tuner.
#[derive(Clone, Debug)]
pub struct ArbiterTrace {
    /// Arbiter window ordinal (1-based, `MemoryArbiter::windows_run`).
    pub window: u64,
    pub action: ArbiterAction,
    /// Window delta of page-store ops on IMRS-enabled partitions (rows
    /// ILM would keep resident with more budget) — the numerator of
    /// the IMRS marginal-utility signal.
    pub imrs_miss_ops: u64,
    /// Window delta of buffer-cache hits.
    pub buffer_hits: u64,
    /// Window delta of buffer-cache misses — the numerator of the
    /// buffer marginal-utility signal.
    pub buffer_misses: u64,
    /// Measured p50 miss-fetch latency in nanoseconds (obs histogram)
    /// weighting each miss against an in-memory re-use.
    pub miss_ns: u64,
    /// IMRS budget in bytes when the verdict was computed.
    pub imrs_bytes: u64,
    /// Buffer-cache budget in bytes when the verdict was computed.
    pub buffer_bytes: u64,
    /// IMRS utilization at verdict time: below the steady threshold the
    /// IMRS is not memory-constrained and its marginal utility is zero.
    pub imrs_utilization: f64,
    /// IMRS marginal utility: weighted re-use per MiB of IMRS budget.
    pub imrs_mu: f64,
    /// Buffer marginal utility: weighted misses per MiB of cache.
    pub buffer_mu: f64,
    /// Bytes moved by this verdict (0 for votes).
    pub shift_bytes: u64,
    /// IMRS budget in bytes after the verdict applied.
    pub imrs_bytes_after: u64,
    /// Buffer-cache capacity in frames after the verdict applied.
    pub buffer_frames_after: u64,
    /// Consecutive same-direction votes including this one.
    pub votes: u32,
    /// Votes required before budget actually moves (hysteresis).
    pub votes_needed: u32,
}

/// An entry in the ILM decision trace ring.
#[derive(Clone, Debug)]
pub enum IlmTraceEvent {
    Tuner(TunerTrace),
    Pack(PackCycleTrace),
    Checkpoint(CheckpointTrace),
    Freeze(FreezeTrace),
    Arbiter(ArbiterTrace),
}

impl IlmTraceEvent {
    /// Machine-readable JSON object for this event.
    pub fn to_json(&self) -> String {
        match self {
            IlmTraceEvent::Tuner(t) => format!(
                concat!(
                    "{{\"kind\":\"tuner\",\"window\":{},\"partition\":{},",
                    "\"action\":\"{}\",\"rule\":\"{}\",\"reuse_ops\":{},",
                    "\"rows_in\":{},\"page_ops\":{},\"page_contention\":{},",
                    "\"avg_reuse\":{},\"footprint_bytes\":{},\"resident_rows\":{},",
                    "\"utilization\":{},\"activity\":{},\"activity_baseline\":{},",
                    "\"votes\":{},\"votes_needed\":{}}}"
                ),
                t.window,
                t.partition,
                t.action.name(),
                json::escape(t.rule),
                t.reuse_ops,
                t.rows_in,
                t.page_ops,
                t.page_contention,
                json::num(t.avg_reuse),
                t.footprint_bytes,
                t.resident_rows,
                json::num(t.utilization),
                t.activity,
                t.activity_baseline,
                t.votes,
                t.votes_needed,
            ),
            IlmTraceEvent::Pack(p) => {
                let parts: Vec<String> = p
                    .partitions
                    .iter()
                    .map(|s| {
                        format!(
                            concat!(
                                "{{\"partition\":{},\"ui\":{},\"cui\":{},\"pi\":{},",
                                "\"target_bytes\":{},\"bytes_packed\":{},",
                                "\"rows_skipped_hot\":{},\"tsf_bypassed\":{},",
                                "\"scanned\":{}}}"
                            ),
                            s.partition,
                            json::num(s.ui),
                            json::num(s.cui),
                            json::num(s.pi),
                            s.target_bytes,
                            s.bytes_packed,
                            s.rows_skipped_hot,
                            s.tsf_bypassed,
                            s.scanned,
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "{{\"kind\":\"pack\",\"cycle\":{},\"level\":\"{}\",",
                        "\"utilization\":{},\"num_bytes_to_pack\":{},",
                        "\"bytes_packed\":{},\"partitions\":[{}]}}"
                    ),
                    p.cycle,
                    p.level,
                    json::num(p.utilization),
                    p.num_bytes_to_pack,
                    p.bytes_packed,
                    parts.join(","),
                )
            }
            IlmTraceEvent::Checkpoint(c) => format!(
                concat!(
                    "{{\"kind\":\"checkpoint\",\"ordinal\":{},\"dirty_pages\":{},",
                    "\"pages_flushed\":{},\"batches\":{},\"low_water_lsn\":{},",
                    "\"truncated_records\":{},\"stall_nanos\":{}}}"
                ),
                c.ordinal,
                c.dirty_pages,
                c.pages_flushed,
                c.batches,
                c.low_water_lsn,
                c.truncated_records,
                c.stall_nanos,
            ),
            IlmTraceEvent::Freeze(f) => format!(
                concat!(
                    "{{\"kind\":\"freeze\",\"extent\":{},\"partition\":{},",
                    "\"rows\":{},\"raw_bytes\":{},\"encoded_bytes\":{},",
                    "\"rows_skipped_hot\":{},\"rows_skipped_recent\":{},",
                    "\"schema_columns\":{}}}"
                ),
                f.extent,
                f.partition,
                f.rows,
                f.raw_bytes,
                f.encoded_bytes,
                f.rows_skipped_hot,
                f.rows_skipped_recent,
                f.schema_columns,
            ),
            IlmTraceEvent::Arbiter(a) => format!(
                concat!(
                    "{{\"kind\":\"arbiter\",\"window\":{},\"action\":\"{}\",",
                    "\"imrs_miss_ops\":{},\"buffer_hits\":{},\"buffer_misses\":{},",
                    "\"miss_ns\":{},\"imrs_bytes\":{},\"buffer_bytes\":{},",
                    "\"imrs_utilization\":{},\"imrs_mu\":{},\"buffer_mu\":{},",
                    "\"shift_bytes\":{},\"imrs_bytes_after\":{},",
                    "\"buffer_frames_after\":{},\"votes\":{},\"votes_needed\":{}}}"
                ),
                a.window,
                a.action.name(),
                a.imrs_miss_ops,
                a.buffer_hits,
                a.buffer_misses,
                a.miss_ns,
                a.imrs_bytes,
                a.buffer_bytes,
                json::num(a.imrs_utilization),
                json::num(a.imrs_mu),
                json::num(a.buffer_mu),
                a.shift_bytes,
                a.imrs_bytes_after,
                a.buffer_frames_after,
                a.votes,
                a.votes_needed,
            ),
        }
    }
}

/// JSON object for one class's [`HistSummary`] (nanosecond unit).
pub fn summary_to_json(class: OpClass, s: &HistSummary) -> String {
    format!(
        concat!(
            "{{\"class\":\"{}\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},",
            "\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}"
        ),
        class.name(),
        s.count,
        s.mean,
        s.p50,
        s.p95,
        s.p99,
        s.max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_have_unique_names_and_indices() {
        let names: std::collections::HashSet<&str> =
            OpClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), OpClass::COUNT);
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        assert!(obs.start().is_none());
        obs.record_since(OpClass::Commit, obs.start());
        obs.record_nanos(OpClass::Commit, 123);
        assert!(obs.summaries().is_empty());
        obs.trace.push(IlmTraceEvent::Pack(PackCycleTrace {
            cycle: 1,
            level: "steady",
            utilization: 0.5,
            num_bytes_to_pack: 10,
            bytes_packed: 0,
            partitions: vec![],
        }));
        assert!(obs.trace.is_empty());
    }

    #[test]
    fn enabled_obs_records_and_summarizes() {
        let obs = Obs::new(true, 16);
        let t = obs.start();
        assert!(t.is_some());
        obs.record_since(OpClass::SelectImrs, t);
        obs.record_nanos(OpClass::SelectImrs, 1_000);
        obs.record_nanos(OpClass::Commit, 5_000);
        let sums = obs.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].0, OpClass::SelectImrs);
        assert_eq!(sums[0].1.count, 2);
        assert_eq!(sums[1].0, OpClass::Commit);
    }

    #[test]
    fn trace_events_serialize_to_valid_json() {
        let tuner = IlmTraceEvent::Tuner(TunerTrace {
            window: 3,
            partition: 7,
            action: TunerAction::DisabledStage1,
            rule: "low-reuse",
            reuse_ops: 1,
            rows_in: 100,
            page_ops: 5,
            page_contention: 0,
            avg_reuse: 0.01,
            footprint_bytes: 4096,
            resident_rows: 80,
            utilization: 0.83,
            activity: 6,
            activity_baseline: 0,
            votes: 2,
            votes_needed: 2,
        });
        let pack = IlmTraceEvent::Pack(PackCycleTrace {
            cycle: 9,
            level: "aggressive",
            utilization: 0.91,
            num_bytes_to_pack: 65536,
            bytes_packed: 60000,
            partitions: vec![PackPartitionTrace {
                partition: 7,
                ui: 0.25,
                cui: 0.75,
                pi: 0.9,
                target_bytes: 58982,
                bytes_packed: 60000,
                rows_skipped_hot: 3,
                tsf_bypassed: true,
                scanned: true,
            }],
        });
        let ckpt = IlmTraceEvent::Checkpoint(CheckpointTrace {
            ordinal: 4,
            dirty_pages: 120,
            pages_flushed: 118,
            batches: 2,
            low_water_lsn: 501,
            truncated_records: 480,
            stall_nanos: 2_000_000,
        });
        let freeze = IlmTraceEvent::Freeze(FreezeTrace {
            extent: 3,
            partition: 9,
            rows: 512,
            raw_bytes: 40_960,
            encoded_bytes: 12_288,
            rows_skipped_hot: 2,
            rows_skipped_recent: 1,
            schema_columns: true,
        });
        let arbiter = IlmTraceEvent::Arbiter(ArbiterTrace {
            window: 2,
            action: ArbiterAction::ShiftToBuffer,
            imrs_miss_ops: 40,
            buffer_hits: 3_000,
            buffer_misses: 900,
            miss_ns: 45_000,
            imrs_bytes: 64 * 1024 * 1024,
            buffer_bytes: 64 * 1024 * 1024,
            imrs_utilization: 0.42,
            imrs_mu: 0.0,
            buffer_mu: 632.8,
            shift_bytes: 12 * 1024 * 1024,
            imrs_bytes_after: 52 * 1024 * 1024,
            buffer_frames_after: 9_728,
            votes: 2,
            votes_needed: 2,
        });
        for ev in [tuner, pack, ckpt, freeze, arbiter] {
            let js = ev.to_json();
            json::validate(&js).unwrap_or_else(|e| panic!("{e}: {js}"));
        }
        let s = HistSummary {
            count: 10,
            mean: 100,
            p50: 90,
            p95: 200,
            p99: 300,
            max: 400,
        };
        json::validate(&summary_to_json(OpClass::Commit, &s)).unwrap();
    }
}
