//! Minimal JSON emission and validation helpers.
//!
//! The build environment has no serde, so the export path hand-builds
//! JSON strings and the test/CI path checks them with a small
//! recursive-descent validator. The validator accepts exactly RFC 8259
//! JSON; it does not build a document tree, it only answers "would a
//! real parser accept this?" — which is what the fault-torture job
//! asserts about the post-recovery export.

/// Escape a string for embedding in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number token. JSON has no NaN/Infinity, so
/// non-finite inputs degrade to 0.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// Validate that `s` is one complete JSON value. Returns the byte
/// offset and a message on the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("bad number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad fraction"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "{}",
            "[1, 2, {\"k\": [null, false]}]",
            "{\"a\": {\"b\": [1.5, \"x\"]}, \"c\": -0.25}",
        ] {
            assert!(validate(doc).is_ok(), "rejected {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a': 1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate(doc).is_err(), "accepted {doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "quote\" slash\\ tab\t nl\n ctrl\u{1} unicode é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        assert!(validate(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(f64::NAN), "0.000000");
        assert_eq!(num(f64::INFINITY), "0.000000");
        assert!(validate(&num(0.125)).is_ok());
    }
}
