//! Deterministic fault injection for the storage stack (test support).
//!
//! [`FaultDisk`] wraps any [`DiskBackend`] and [`FaultLog`] wraps any
//! [`LogSink`]; both consult a shared [`FaultState`] built from a
//! seeded [`FaultPlan`], so a whole device set (page device + both
//! logs) misbehaves under one reproducible schedule:
//!
//! - **Transient errors**: seeded-probability read/write/sync failures,
//!   capped by an error budget (so workloads eventually make progress).
//! - **Torn page writes**: the Nth page write persists only the first
//!   `torn_prefix_bytes` of the new image over the old one and then
//!   *reports success* — a lying device. Detection is the checksum's
//!   job at fetch or recovery time.
//! - **Partial log appends**: a truncated payload reaches the sink but
//!   the caller gets an error — the record is framed (CRC-valid) yet
//!   undecodable, exercising decode-level salvage.
//! - **Log-device death**: after N successful appends every later
//!   append/flush fails, permanently — the engine must degrade to
//!   read-only, not hang or panic.
//! - **Fail-stop**: after K total device operations the shared crash
//!   switch flips and *every* wrapped device fails everything —
//!   a whole-machine crash at a single instant.
//!
//! Injected faults never touch `read_all`/`truncate_prefix` plumbing:
//! recovery reads go straight through, matching the model of a reboot
//! onto the surviving media.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use btrim_common::{BtrimError, Lsn, PageId, Result};
use btrim_pagestore::{DiskBackend, PAGE_SIZE};
use btrim_wal::LogSink;

/// A deterministic schedule of storage faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed; the same plan + seed reproduces the same fault
    /// schedule for the same operation sequence.
    pub seed: u64,
    /// Probability that a page read fails transiently.
    pub read_error_prob: f64,
    /// Probability that a page write fails transiently.
    pub write_error_prob: f64,
    /// Probability that a disk/log sync or flush fails transiently.
    pub sync_error_prob: f64,
    /// Probability that a log append persists only a truncated payload
    /// while reporting failure to the caller.
    pub partial_append_prob: f64,
    /// Cap on the total number of probabilistic faults injected.
    pub error_budget: u64,
    /// Tear the Nth page write (0-based, counted across the plan's
    /// devices): persist `torn_prefix_bytes` of the new image over the
    /// old page and report success.
    pub torn_write_at: Option<u64>,
    /// Prefix of the new image that survives a torn write.
    pub torn_prefix_bytes: usize,
    /// Log device dies permanently after this many successful appends.
    pub fail_appends_after: Option<u64>,
    /// Tear the Nth *batch* append (0-based, counted across the plan's
    /// wrapped logs): the caller gets an error, and the seeded RNG
    /// decides whether the media kept the whole batch or none of it —
    /// the only two outcomes a CRC-covered batch frame allows. A batch
    /// can never persist a prefix of its records; byte-level tears of
    /// the frame itself are exercised at the `FileLog` layer.
    pub torn_batch_at: Option<u64>,
    /// Fail-stop the whole device set after this many total operations.
    pub fail_stop_after_ops: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            sync_error_prob: 0.0,
            partial_append_prob: 0.0,
            error_budget: 0,
            torn_write_at: None,
            torn_prefix_bytes: 512,
            fail_appends_after: None,
            torn_batch_at: None,
            fail_stop_after_ops: None,
        }
    }
}

/// Counters of faults actually injected, for test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient read errors injected.
    pub read_errors: u64,
    /// Transient write errors injected.
    pub write_errors: u64,
    /// Transient sync/flush errors injected.
    pub sync_errors: u64,
    /// Torn page writes performed (reported as success).
    pub torn_writes: u64,
    /// Partial log appends performed (reported as failure).
    pub partial_appends: u64,
    /// Torn batch appends performed (reported as failure).
    pub torn_batches: u64,
    /// Appends rejected by a dead log device.
    pub dead_appends: u64,
}

/// Shared fault engine: one per plan, shared by every wrapped device so
/// budgets, the op counter, and the crash switch are global.
pub struct FaultState {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    ops: AtomicU64,
    /// Dynamically armed fail-stop: absolute op index at which the
    /// crash switch flips (`u64::MAX` = disarmed). Lets a test observe
    /// the system, then schedule a crash "N device ops from now" —
    /// e.g. mid-checkpoint — without knowing absolute counts up front.
    dynamic_fail_stop: AtomicU64,
    page_writes: AtomicU64,
    log_appends: AtomicU64,
    log_batches: AtomicU64,
    budget_left: AtomicU64,
    crashed: AtomicBool,
    log_dead: AtomicBool,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    sync_errors: AtomicU64,
    torn_writes: AtomicU64,
    partial_appends: AtomicU64,
    torn_batches: AtomicU64,
    dead_appends: AtomicU64,
}

fn injected(what: &str) -> BtrimError {
    BtrimError::Io(std::io::Error::other(format!("injected fault: {what}")))
}

impl FaultState {
    /// Build the shared state for one plan.
    pub fn new(plan: FaultPlan) -> Arc<FaultState> {
        Arc::new(FaultState {
            rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
            budget_left: AtomicU64::new(plan.error_budget),
            ops: AtomicU64::new(0),
            dynamic_fail_stop: AtomicU64::new(u64::MAX),
            page_writes: AtomicU64::new(0),
            log_appends: AtomicU64::new(0),
            log_batches: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            log_dead: AtomicBool::new(false),
            read_errors: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            sync_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            partial_appends: AtomicU64::new(0),
            torn_batches: AtomicU64::new(0),
            dead_appends: AtomicU64::new(0),
            plan,
        })
    }

    /// Whether the fail-stop switch has flipped.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Total device operations ticked so far (reads, writes, appends,
    /// flushes, truncations — everything that consults the plan).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// Arm a fail-stop `ops_from_now` device operations from the
    /// current count: op index `ops() + ops_from_now` and everything
    /// after it fails on every wrapped device. Arming again re-targets
    /// the crash; a plan-level `fail_stop_after_ops` still applies
    /// independently (whichever trips first wins).
    pub fn fail_stop_in(&self, ops_from_now: u64) {
        let at = self.ops().saturating_add(ops_from_now);
        self.dynamic_fail_stop.store(at, Ordering::Release);
    }

    /// Flip the fail-stop switch immediately (all wrapped devices fail
    /// everything from now on).
    pub fn crash_now(&self) {
        self.crashed.store(true, Ordering::Release);
    }

    /// Whether the log device has died permanently.
    pub fn log_dead(&self) -> bool {
        self.log_dead.load(Ordering::Acquire)
    }

    /// Kill the log device permanently (every later append and flush
    /// fails), independent of the append-count trigger.
    pub fn kill_log(&self) {
        self.log_dead.store(true, Ordering::Release);
    }

    /// Revive the log device (tests of health-state recovery).
    pub fn revive_log(&self) {
        self.log_dead.store(false, Ordering::Release);
    }

    /// Faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            read_errors: self.read_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            sync_errors: self.sync_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            partial_appends: self.partial_appends.load(Ordering::Relaxed),
            torn_batches: self.torn_batches.load(Ordering::Relaxed),
            dead_appends: self.dead_appends.load(Ordering::Relaxed),
        }
    }

    /// Count one device operation; flips the crash switch at the
    /// configured op index. Returns an error if the device set is
    /// (now) crashed.
    fn tick(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::AcqRel);
        if let Some(k) = self.plan.fail_stop_after_ops {
            if op >= k {
                self.crashed.store(true, Ordering::Release);
            }
        }
        if op >= self.dynamic_fail_stop.load(Ordering::Acquire) {
            self.crashed.store(true, Ordering::Release);
        }
        if self.crashed() {
            return Err(injected("fail-stop"));
        }
        Ok(())
    }

    /// Draw a probabilistic fault if the budget allows.
    fn draw(&self, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        if !self.rng.lock().gen_bool(prob) {
            return false;
        }
        self.budget_left
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_ok()
    }
}

/// A [`DiskBackend`] wrapper that injects the plan's disk faults.
pub struct FaultDisk {
    inner: Arc<dyn DiskBackend>,
    state: Arc<FaultState>,
}

impl FaultDisk {
    /// Wrap a backend.
    pub fn new(inner: Arc<dyn DiskBackend>, state: Arc<FaultState>) -> Self {
        FaultDisk { inner, state }
    }

    /// The shared fault state.
    pub fn state(&self) -> &Arc<FaultState> {
        &self.state
    }
}

impl DiskBackend for FaultDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.state.tick()?;
        if self.state.draw(self.state.plan.read_error_prob) {
            self.state.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(injected("transient read"));
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.state.tick()?;
        let widx = self.state.page_writes.fetch_add(1, Ordering::AcqRel);
        if self.state.plan.torn_write_at == Some(widx) && buf.len() == PAGE_SIZE {
            // The lying device: persist a torn image, report success.
            let n = self.state.plan.torn_prefix_bytes.min(PAGE_SIZE);
            let mut torn = vec![0u8; PAGE_SIZE];
            // Old image (a page never written reads back as zeros).
            if self.inner.read_page(id, &mut torn).is_err() {
                torn.fill(0);
            }
            torn[..n].copy_from_slice(&buf[..n]);
            self.inner.write_page(id, &torn)?;
            self.state.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if self.state.draw(self.state.plan.write_error_prob) {
            self.state.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(injected("transient write"));
        }
        self.inner.write_page(id, buf)
    }

    fn allocate_page(&self) -> Result<PageId> {
        self.state.tick()?;
        self.inner.allocate_page()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn sync(&self) -> Result<()> {
        self.state.tick()?;
        if self.state.draw(self.state.plan.sync_error_prob) {
            self.state.sync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(injected("transient sync"));
        }
        self.inner.sync()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// A [`LogSink`] wrapper that injects the plan's log faults.
pub struct FaultLog {
    inner: Arc<dyn LogSink>,
    state: Arc<FaultState>,
}

impl FaultLog {
    /// Wrap a sink.
    pub fn new(inner: Arc<dyn LogSink>, state: Arc<FaultState>) -> Self {
        FaultLog { inner, state }
    }

    /// The shared fault state.
    pub fn state(&self) -> &Arc<FaultState> {
        &self.state
    }

    fn check_dead(&self) -> Result<()> {
        if self.state.log_dead() {
            self.state.dead_appends.fetch_add(1, Ordering::Relaxed);
            return Err(injected("log device dead"));
        }
        Ok(())
    }
}

impl LogSink for FaultLog {
    fn append(&self, payload: &[u8]) -> Result<Lsn> {
        self.state.tick()?;
        self.check_dead()?;
        let aidx = self.state.log_appends.fetch_add(1, Ordering::AcqRel);
        if let Some(k) = self.state.plan.fail_appends_after {
            if aidx >= k {
                self.state.log_dead.store(true, Ordering::Release);
                self.state.dead_appends.fetch_add(1, Ordering::Relaxed);
                return Err(injected("log device dead"));
            }
        }
        if self.state.draw(self.state.plan.partial_append_prob) && payload.len() > 1 {
            // Persist a truncated payload (CRC-framed over the short
            // bytes — undecodable) and fail the caller.
            let _ = self.inner.append(&payload[..payload.len() / 2]);
            self.state.partial_appends.fetch_add(1, Ordering::Relaxed);
            return Err(injected("partial append"));
        }
        self.inner.append(payload)
    }

    fn append_batch(&self, payloads: &[&[u8]]) -> Result<btrim_wal::LsnRange> {
        self.state.tick()?;
        self.check_dead()?;
        // A batch counts as one append toward the death trigger (one
        // frame, one device write), and the death never splits it: a
        // batch that trips the trigger persists nothing.
        let aidx = self.state.log_appends.fetch_add(1, Ordering::AcqRel);
        if let Some(k) = self.state.plan.fail_appends_after {
            if aidx >= k {
                self.state.log_dead.store(true, Ordering::Release);
                self.state.dead_appends.fetch_add(1, Ordering::Relaxed);
                return Err(injected("log device dead"));
            }
        }
        let bidx = self.state.log_batches.fetch_add(1, Ordering::AcqRel);
        if self.state.plan.torn_batch_at == Some(bidx) {
            // The frame's CRC covers every record, so a tear leaves the
            // media holding either the whole batch or nothing — never a
            // prefix of its records. The seeded RNG picks which; the
            // caller sees an error either way (the ack never happened).
            let keep_all = self.state.rng.lock().gen_bool(0.5);
            if keep_all {
                let _ = self.inner.append_batch(payloads);
            }
            self.state.torn_batches.fetch_add(1, Ordering::Relaxed);
            return Err(injected("torn batch append"));
        }
        // `partial_append_prob` deliberately does not apply here: a
        // truncated *record* cannot exist inside a CRC-covered batch
        // frame. Transient whole-batch failures come from the death and
        // torn-batch triggers above.
        self.inner.append_batch(payloads)
    }

    fn flush(&self) -> Result<()> {
        self.state.tick()?;
        self.check_dead()?;
        if self.state.draw(self.state.plan.sync_error_prob) {
            self.state.sync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(injected("transient flush"));
        }
        self.inner.flush()
    }

    fn read_all(&self) -> Result<Vec<(Lsn, Vec<u8>)>> {
        // Recovery reads go straight through: a reboot reads whatever
        // survived on the media.
        self.inner.read_all()
    }

    fn record_count(&self) -> u64 {
        self.inner.record_count()
    }

    fn byte_size(&self) -> u64 {
        self.inner.byte_size()
    }

    fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        self.state.tick()?;
        self.inner.truncate_prefix(upto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_pagestore::{stamp_page_checksum, verify_page_checksum, MemDisk};
    use btrim_wal::MemLog;

    fn heap_page(fill: u8) -> Vec<u8> {
        let mut buf = vec![fill; PAGE_SIZE];
        buf[0] = 1; // PageType::Heap so the checksum is not exempt
        stamp_page_checksum(&mut buf);
        buf
    }

    #[test]
    fn passthrough_when_plan_is_empty() {
        let state = FaultState::new(FaultPlan::default());
        let disk = FaultDisk::new(Arc::new(MemDisk::new()), state.clone());
        let p = disk.allocate_page().unwrap();
        let w = heap_page(7);
        disk.write_page(p, &w).unwrap();
        let mut r = vec![0u8; PAGE_SIZE];
        disk.read_page(p, &mut r).unwrap();
        assert_eq!(r, w);
        disk.sync().unwrap();
        assert_eq!(state.counters(), FaultCounters::default());
    }

    #[test]
    fn transient_errors_are_deterministic_and_budgeted() {
        let plan = FaultPlan {
            seed: 42,
            read_error_prob: 0.5,
            error_budget: 3,
            ..FaultPlan::default()
        };
        let run = |plan: FaultPlan| {
            let state = FaultState::new(plan);
            let disk = FaultDisk::new(Arc::new(MemDisk::new()), state.clone());
            let p = disk.allocate_page().unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            let outcomes: Vec<bool> = (0..64)
                .map(|_| disk.read_page(p, &mut buf).is_ok())
                .collect();
            (outcomes, state.counters())
        };
        let (a, ca) = run(plan.clone());
        let (b, cb) = run(plan);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(ca, cb);
        assert_eq!(ca.read_errors, 3, "budget caps injections");
        assert!(a.iter().filter(|ok| !**ok).count() == 3);
    }

    #[test]
    fn torn_write_is_silent_and_checksum_detected() {
        let plan = FaultPlan {
            torn_write_at: Some(1),
            torn_prefix_bytes: 100,
            ..FaultPlan::default()
        };
        let inner = Arc::new(MemDisk::new());
        let state = FaultState::new(plan);
        let disk = FaultDisk::new(inner.clone(), state.clone());
        let p = disk.allocate_page().unwrap();
        let v1 = heap_page(0xAA);
        disk.write_page(p, &v1).unwrap(); // write 0: intact
        let v2 = heap_page(0xBB);
        disk.write_page(p, &v2).unwrap(); // write 1: torn, still Ok
        assert_eq!(state.counters().torn_writes, 1);

        let mut r = vec![0u8; PAGE_SIZE];
        inner.read_page(p, &mut r).unwrap();
        assert_eq!(&r[..100], &v2[..100], "new prefix landed");
        assert_eq!(&r[100..], &v1[100..], "old tail survived");
        assert!(
            !verify_page_checksum(&r),
            "torn page must fail verification"
        );
    }

    #[test]
    fn fail_stop_kills_every_device_at_one_instant() {
        let plan = FaultPlan {
            fail_stop_after_ops: Some(5),
            ..FaultPlan::default()
        };
        let state = FaultState::new(plan);
        let disk = FaultDisk::new(Arc::new(MemDisk::new()), state.clone());
        let log = FaultLog::new(Arc::new(MemLog::new()), state.clone());
        let p = disk.allocate_page().unwrap(); // op 0
        let w = heap_page(1);
        disk.write_page(p, &w).unwrap(); // op 1
        log.append(b"a").unwrap(); // op 2
        log.append(b"b").unwrap(); // op 3
        disk.sync().unwrap(); // op 4
                              // Op 5 crosses the threshold: everything fails from here on,
                              // on both devices.
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(disk.read_page(p, &mut buf).is_err());
        assert!(log.append(b"c").is_err());
        assert!(disk.write_page(p, &w).is_err());
        assert!(log.flush().is_err());
        assert!(state.crashed());
        // Recovery-style reads still see what landed before the crash.
        assert_eq!(log.read_all().unwrap().len(), 2);
    }

    #[test]
    fn log_death_after_n_appends_is_permanent() {
        let plan = FaultPlan {
            fail_appends_after: Some(2),
            ..FaultPlan::default()
        };
        let state = FaultState::new(plan);
        let log = FaultLog::new(Arc::new(MemLog::new()), state.clone());
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        for _ in 0..5 {
            assert!(log.append(b"never").is_err());
            assert!(log.flush().is_err());
        }
        assert!(state.log_dead());
        assert!(state.counters().dead_appends >= 5);
        // Revive (simulated device replacement): appends work again.
        state.revive_log();
        // The count-based trigger stays tripped via log_appends, so
        // revival is only honored when the trigger is disabled — a
        // revived state keeps failing here because append index keeps
        // growing past the threshold.
        assert!(log.append(b"still dead").is_err());
    }

    #[test]
    fn partial_append_persists_garbage_but_reports_failure() {
        let plan = FaultPlan {
            seed: 7,
            partial_append_prob: 1.0,
            error_budget: 1,
            ..FaultPlan::default()
        };
        let inner = Arc::new(MemLog::new());
        let state = FaultState::new(plan);
        let log = FaultLog::new(inner.clone(), state.clone());
        let payload = b"0123456789abcdef".to_vec();
        assert!(log.append(&payload).is_err());
        assert_eq!(state.counters().partial_appends, 1);
        let on_media = inner.read_all().unwrap();
        assert_eq!(on_media.len(), 1);
        assert_eq!(on_media[0].1, payload[..payload.len() / 2].to_vec());
        // Budget exhausted: the next append goes through intact.
        assert!(log.append(&payload).is_ok());
        assert_eq!(inner.read_all().unwrap().len(), 2);
    }

    #[test]
    fn torn_batch_is_all_or_nothing_and_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan {
                seed,
                torn_batch_at: Some(1),
                ..FaultPlan::default()
            };
            let inner = Arc::new(MemLog::new());
            let state = FaultState::new(plan);
            let log = FaultLog::new(inner.clone(), state.clone());
            log.append_batch(&[b"a0".as_ref(), b"a1".as_ref()]).unwrap();
            // Batch 1 is torn: error to the caller, media keeps all of
            // it or none of it.
            assert!(log
                .append_batch(&[b"b0".as_ref(), b"b1".as_ref(), b"b2".as_ref()])
                .is_err());
            assert_eq!(state.counters().torn_batches, 1);
            let n = inner.read_all().unwrap().len();
            assert!(n == 2 || n == 5, "all-or-nothing, got {n} records");
            // Later batches go through intact.
            log.append_batch(&[b"c0".as_ref()]).unwrap();
            n
        };
        // Deterministic per seed; different seeds reach both outcomes.
        for seed in 0..16 {
            assert_eq!(run(seed), run(seed));
        }
        let outcomes: std::collections::BTreeSet<usize> = (0..16).map(run).collect();
        assert_eq!(outcomes.len(), 2, "both tear outcomes exercised");
    }

    #[test]
    fn dead_log_rejects_batches_without_splitting_them() {
        let plan = FaultPlan {
            fail_appends_after: Some(1),
            ..FaultPlan::default()
        };
        let inner = Arc::new(MemLog::new());
        let state = FaultState::new(plan);
        let log = FaultLog::new(inner.clone(), state.clone());
        log.append(b"one").unwrap();
        assert!(log.append_batch(&[b"x".as_ref(), b"y".as_ref()]).is_err());
        assert!(state.log_dead());
        assert_eq!(
            inner.read_all().unwrap().len(),
            1,
            "dying device persisted no part of the batch"
        );
    }

    #[test]
    fn dynamic_fail_stop_counts_from_now() {
        let state = FaultState::new(FaultPlan::default());
        let disk = FaultDisk::new(Arc::new(MemDisk::new()), state.clone());
        let log = FaultLog::new(Arc::new(MemLog::new()), state.clone());
        let p = disk.allocate_page().unwrap(); // op 0
        log.append(b"a").unwrap(); // op 1
        assert_eq!(state.ops(), 2);
        // Crash two ops from now: ops 2 and 3 succeed, op 4 fails.
        state.fail_stop_in(2);
        let w = heap_page(3);
        disk.write_page(p, &w).unwrap(); // op 2
        log.append(b"b").unwrap(); // op 3
        assert!(disk.sync().is_err()); // op 4: crash
        assert!(state.crashed());
        assert!(log.append(b"c").is_err());
        // Recovery-style reads still pass through.
        assert_eq!(log.read_all().unwrap().len(), 2);
    }

    #[test]
    fn crash_now_flips_the_switch() {
        let state = FaultState::new(FaultPlan::default());
        let disk = FaultDisk::new(Arc::new(MemDisk::new()), state.clone());
        disk.allocate_page().unwrap();
        state.crash_now();
        assert!(disk.allocate_page().is_err());
        assert!(disk.sync().is_err());
    }
}
