//! In-memory hash index over IMRS rows.
//!
//! "Table-specific non-logged, in-memory hash-indexes are built on top
//! of lock-free hash tables. Hash indexes span only in-memory rows and
//! provide a fast-path performance accelerator under unique BTree
//! indexes" (§II).
//!
//! This implementation uses fine-grained sharding (256 shards, each a
//! reader-writer-locked open hash table) rather than a fully lock-free
//! table: with 256 shards, the probability of two cores colliding on a
//! shard is negligible, and readers never block each other. The index
//! is non-logged and rebuilt from the IMRS after recovery, exactly as
//! the paper's non-logged hash indexes are.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

use parking_lot::RwLock;

use btrim_common::RowId;

const SHARDS: usize = 256;

/// Fast FxHash-style hasher for byte keys (keys are engine-generated,
/// HashDoS is not a concern inside the engine).
#[derive(Default, Clone, Copy)]
struct FxBuild;

struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(K);
        }
    }
}

impl BuildHasher for FxBuild {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// Unique hash index: key bytes → RowId. Spans only IMRS-resident rows.
pub struct HashIndex {
    shards: Vec<RwLock<HashMap<Vec<u8>, RowId, FxBuild>>>,
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        HashIndex {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::with_hasher(FxBuild)))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &RwLock<HashMap<Vec<u8>, RowId, FxBuild>> {
        let mut h = FxHasher(0);
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Point lookup.
    #[inline]
    pub fn get(&self, key: &[u8]) -> Option<RowId> {
        self.shard(key).read().get(key).copied()
    }

    /// Insert / replace the mapping for `key`. Returns the previous
    /// RowId, if any.
    pub fn insert(&self, key: &[u8], rid: RowId) -> Option<RowId> {
        self.shard(key).write().insert(key.to_vec(), rid)
    }

    /// Remove a mapping (row left the IMRS). Returns the removed RowId.
    pub fn remove(&self, key: &[u8]) -> Option<RowId> {
        self.shard(key).write().remove(key)
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drop all entries (recovery rebuild).
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove() {
        let h = HashIndex::new();
        assert_eq!(h.get(b"k1"), None);
        assert_eq!(h.insert(b"k1", RowId(1)), None);
        assert_eq!(h.get(b"k1"), Some(RowId(1)));
        assert_eq!(h.insert(b"k1", RowId(2)), Some(RowId(1)));
        assert_eq!(h.remove(b"k1"), Some(RowId(2)));
        assert_eq!(h.get(b"k1"), None);
        assert!(h.is_empty());
    }

    #[test]
    fn many_keys_distribute() {
        let h = HashIndex::new();
        for i in 0..10_000u64 {
            h.insert(&i.to_be_bytes(), RowId(i));
        }
        assert_eq!(h.len(), 10_000);
        for i in (0..10_000u64).step_by(131) {
            assert_eq!(h.get(&i.to_be_bytes()), Some(RowId(i)));
        }
        let populated = h.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(populated > SHARDS / 2);
    }

    #[test]
    fn clear_empties_everything() {
        let h = HashIndex::new();
        for i in 0..100u64 {
            h.insert(&i.to_be_bytes(), RowId(i));
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.get(&5u64.to_be_bytes()), None);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let h = Arc::new(HashIndex::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let key = (t * 1_000_000 + i).to_be_bytes();
                        h.insert(&key, RowId(i));
                        assert_eq!(h.get(&key), Some(RowId(i)));
                        if i % 2 == 0 {
                            h.remove(&key);
                        }
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.len(), 8 * 1000);
    }
}
