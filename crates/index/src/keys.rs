//! Order-preserving binary key encoding.
//!
//! Composite keys (e.g. TPC-C `(w_id, d_id, o_id)`) are encoded
//! big-endian so that lexicographic comparison of the encoded bytes
//! matches the tuple ordering. Strings are padded/terminated with a
//! 0x00 byte so that a prefix orders before any extension.

/// Builder for composite, order-preserving keys.
#[derive(Debug, Default, Clone)]
pub struct KeyBuilder {
    buf: Vec<u8>,
}

impl KeyBuilder {
    /// Start an empty key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a u8 component.
    pub fn push_u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Append a u16 component (big-endian).
    pub fn push_u16(mut self, v: u16) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a u32 component (big-endian).
    pub fn push_u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a u64 component (big-endian).
    pub fn push_u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append an i64 component; sign bit flipped so negative orders
    /// before positive.
    pub fn push_i64(mut self, v: i64) -> Self {
        self.buf
            .extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
        self
    }

    /// Append a string component, 0x00-terminated. Embedded NULs are
    /// rejected by debug assertion (they would break ordering).
    pub fn push_str(mut self, v: &str) -> Self {
        debug_assert!(!v.as_bytes().contains(&0), "NUL in key component");
        self.buf.extend_from_slice(v.as_bytes());
        self.buf.push(0);
        self
    }

    /// Finish the key.
    pub fn build(self) -> Vec<u8> {
        self.buf
    }
}

/// Smallest key strictly greater than every key having `prefix` as a
/// prefix (for exclusive-upper-bound range scans). Returns `None` when
/// the prefix is all-0xFF (no such key exists).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_components_order_correctly() {
        let k = |a: u32, b: u32| KeyBuilder::new().push_u32(a).push_u32(b).build();
        assert!(k(1, 2) < k(1, 3));
        assert!(k(1, 900) < k(2, 0));
        assert!(k(0, u32::MAX) < k(1, 0));
    }

    #[test]
    fn signed_components_order_correctly() {
        let k = |v: i64| KeyBuilder::new().push_i64(v).build();
        assert!(k(-5) < k(-1));
        assert!(k(-1) < k(0));
        assert!(k(0) < k(7));
        assert!(k(i64::MIN) < k(i64::MAX));
    }

    #[test]
    fn string_prefix_orders_before_extension() {
        let k = |s: &str| KeyBuilder::new().push_u16(1).push_str(s).build();
        assert!(k("BAR") < k("BARBAR"));
        assert!(k("ABLE") < k("BAKER"));
    }

    #[test]
    fn prefix_successor_covers_prefix_range() {
        let p = KeyBuilder::new().push_u32(5).build();
        let succ = prefix_successor(&p).unwrap();
        let inside = KeyBuilder::new().push_u32(5).push_u64(u64::MAX).build();
        let outside = KeyBuilder::new().push_u32(6).build();
        assert!(inside < succ);
        assert!(outside >= succ);
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
    }
}
