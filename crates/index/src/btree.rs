//! Page-based B+tree.
//!
//! Nodes live in buffer-cache pages (one serialized node per page), so
//! the tree pages behave like any other page-store page: they are
//! cached, evicted, and flushed by the buffer cache. Leaves map
//! order-preserving byte keys to `RowId`s and are chained through the
//! page header's next-page link for range scans.
//!
//! Concurrency: a tree-level reader-writer latch (simple and correct;
//! the engine's hash index provides the contention-free fast path for
//! point lookups, which is exactly the role the paper assigns it in
//! §II). Deletes do not rebalance — underfull nodes are tolerated and
//! the root collapses when it empties, a common engineering trade-off
//! for OLTP trees whose tables rarely shrink.

use std::sync::Arc;

use parking_lot::RwLock;

use btrim_common::codec::{Decoder, Encoder};
use btrim_common::{BtrimError, PageId, PartitionId, Result, RowId, SlotId};
use btrim_pagestore::page::PageType;
use btrim_pagestore::BufferCache;

/// Split a node once its encoding exceeds this many bytes.
const SPLIT_THRESHOLD: usize = 5800;
/// Maximum key length accepted.
pub const MAX_KEY_LEN: usize = 1024;

#[derive(Debug, Clone)]
struct Node {
    is_leaf: bool,
    /// Leaf: `(key, row_id)`. Inner: `(separator_key, child_page)`;
    /// keys in an inner node are the minimum key reachable through the
    /// paired child.
    entries: Vec<(Vec<u8>, u64)>,
    /// Inner only: child for keys below the first separator.
    first_child: u64,
}

impl Node {
    fn leaf() -> Node {
        Node {
            is_leaf: true,
            entries: Vec::new(),
            first_child: 0,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64 + self.entries.len() * 24);
        e.put_u8(self.is_leaf as u8);
        e.put_u64(self.first_child);
        e.put_u32(self.entries.len() as u32);
        for (k, v) in &self.entries {
            e.put_bytes(k);
            e.put_u64(*v);
        }
        e.into_vec()
    }

    fn decode(data: &[u8]) -> Result<Node> {
        let mut d = Decoder::new(data);
        let is_leaf = d.get_u8()? != 0;
        let first_child = d.get_u64()?;
        let n = d.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let k = d.get_bytes()?;
            let v = d.get_u64()?;
            entries.push((k, v));
        }
        Ok(Node {
            is_leaf,
            entries,
            first_child,
        })
    }

    fn encoded_size(&self) -> usize {
        13 + self
            .entries
            .iter()
            .map(|(k, _)| 12 + k.len())
            .sum::<usize>()
    }
}

/// Allocation-free view over an encoded node blob. Layout:
/// `[is_leaf u8][first_child u64][n u32]` then `n × ([len u32][key][val
/// u64])`, all little-endian.
struct BlobView<'a> {
    blob: &'a [u8],
    is_leaf: bool,
    first_child: u64,
    n: usize,
}

impl<'a> BlobView<'a> {
    fn new(blob: &'a [u8]) -> BlobView<'a> {
        debug_assert!(blob.len() >= 13);
        BlobView {
            blob,
            is_leaf: blob[0] != 0,
            first_child: u64::from_le_bytes(blob[1..9].try_into().unwrap()),
            n: u32::from_le_bytes(blob[9..13].try_into().unwrap()) as usize,
        }
    }

    /// Iterate `(key, value)` pairs without allocating.
    fn entries(&self) -> impl Iterator<Item = (&'a [u8], u64)> + '_ {
        let mut off = 13usize;
        let blob = self.blob;
        (0..self.n).map(move |_| {
            let len = u32::from_le_bytes(blob[off..off + 4].try_into().unwrap()) as usize;
            let key = &blob[off + 4..off + 4 + len];
            let val = u64::from_le_bytes(blob[off + 4 + len..off + 12 + len].try_into().unwrap());
            off += 12 + len;
            (key, val)
        })
    }

    /// Routing for inner nodes: child of the last separator <= key.
    fn route(&self, key: &[u8]) -> u64 {
        let mut child = self.first_child;
        for (k, v) in self.entries() {
            if k <= key {
                child = v;
            } else {
                break;
            }
        }
        child
    }

    /// Point lookup in a leaf.
    fn find(&self, key: &[u8]) -> Option<u64> {
        for (k, v) in self.entries() {
            if k == key {
                return Some(v);
            }
            if k > key {
                return None;
            }
        }
        None
    }
}

/// A page-based B+tree index.
pub struct BTreeIndex {
    cache: Arc<BufferCache>,
    partition: PartitionId,
    unique: bool,
    /// Root pointer; doubles as the tree latch.
    root: RwLock<PageId>,
}

impl BTreeIndex {
    /// Create an empty tree whose pages are tagged with `partition`.
    pub fn new(cache: Arc<BufferCache>, partition: PartitionId, unique: bool) -> Result<Self> {
        let guard = cache.new_page(PageType::BTreeLeaf, partition)?;
        let root_pid = guard.page_id();
        let blob = Node::leaf().encode();
        guard.with_page_write(|p| {
            p.insert(&blob).expect("empty node fits");
        });
        drop(guard);
        Ok(BTreeIndex {
            cache,
            partition,
            unique,
            root: RwLock::new(root_pid),
        })
    }

    /// Re-attach to an existing tree (recovery).
    pub fn open(
        cache: Arc<BufferCache>,
        partition: PartitionId,
        unique: bool,
        root: PageId,
    ) -> Self {
        BTreeIndex {
            cache,
            partition,
            unique,
            root: RwLock::new(root),
        }
    }

    /// Current root page (persisted by the engine catalog).
    pub fn root_page(&self) -> PageId {
        *self.root.read()
    }

    /// Whether duplicate keys are rejected.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    fn read_node(&self, pid: PageId) -> Result<Node> {
        let guard = self.cache.fetch(pid)?;
        guard.with_page_read(|p| {
            let blob = p
                .get(SlotId(0))
                .ok_or_else(|| BtrimError::Corrupt(format!("btree node {pid} missing blob")))?;
            Node::decode(blob)
        })
    }

    /// Run `f` over the raw node blob without decoding it (zero-copy
    /// read path: point lookups and descents stay allocation-free).
    fn with_node_blob<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let guard = self.cache.fetch(pid)?;
        guard.with_page_read(|p| {
            let blob = p
                .get(SlotId(0))
                .ok_or_else(|| BtrimError::Corrupt(format!("btree node {pid} missing blob")))?;
            Ok(f(blob))
        })
    }

    fn write_node(&self, pid: PageId, node: &Node) -> Result<()> {
        let blob = node.encode();
        let guard = self.cache.fetch(pid)?;
        let ok = guard.with_page_write(|p| p.update(SlotId(0), &blob));
        if ok {
            Ok(())
        } else {
            Err(BtrimError::Corrupt(format!(
                "btree node {pid} overflow: {} bytes",
                blob.len()
            )))
        }
    }

    fn new_node_page(&self, node: &Node) -> Result<PageId> {
        let page_type = if node.is_leaf {
            PageType::BTreeLeaf
        } else {
            PageType::BTreeInner
        };
        let guard = self.cache.new_page(page_type, self.partition)?;
        let pid = guard.page_id();
        let blob = node.encode();
        guard.with_page_write(|p| {
            p.insert(&blob).expect("split half fits in fresh page");
        });
        Ok(pid)
    }

    fn leaf_next(&self, pid: PageId) -> Result<PageId> {
        let guard = self.cache.fetch(pid)?;
        Ok(guard.with_page_read(|p| p.next_page()))
    }

    fn set_leaf_next(&self, pid: PageId, next: PageId) -> Result<()> {
        let guard = self.cache.fetch(pid)?;
        guard.with_page_write(|p| p.set_next_page(next));
        Ok(())
    }

    /// Insert `key → rid`. Errors with [`BtrimError::DuplicateKey`] on a
    /// unique tree when the key already exists.
    ///
    /// The descent is allocation-free (blob routing); only the leaf —
    /// and, on splits, the affected ancestors — are decoded and
    /// rewritten.
    pub fn insert(&self, key: &[u8], rid: RowId) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(BtrimError::Invalid(format!(
                "key of {} bytes exceeds MAX_KEY_LEN",
                key.len()
            )));
        }
        let root_guard = self.root.write();
        let root_pid = *root_guard;
        // Record the root→leaf path for split propagation.
        let mut path: Vec<PageId> = Vec::new();
        let mut pid = root_pid;
        loop {
            enum Step {
                Leaf,
                Descend(PageId),
            }
            let step = self.with_node_blob(pid, |blob| {
                let v = BlobView::new(blob);
                if v.is_leaf {
                    Step::Leaf
                } else {
                    Step::Descend(PageId(v.route(key) as u32))
                }
            })?;
            match step {
                Step::Leaf => break,
                Step::Descend(child) => {
                    path.push(pid);
                    pid = child;
                }
            }
        }
        // Mutate the leaf.
        let mut node = self.read_node(pid)?;
        let pos = node
            .entries
            .partition_point(|(k, v)| (k.as_slice(), *v) < (key, rid.0));
        if self.unique {
            if node.entries.iter().any(|(k, _)| k.as_slice() == key) {
                return Err(BtrimError::DuplicateKey(format!("{key:?}")));
            }
        } else if node
            .entries
            .get(pos)
            .is_some_and(|(k, v)| k.as_slice() == key && *v == rid.0)
        {
            // Exact (key, rid) pair already present: idempotent.
            return Ok(());
        }
        node.entries.insert(pos, (key.to_vec(), rid.0));
        let mut split = self.finish_write(pid, node)?;
        // Propagate splits up the recorded path.
        while let Some((sep, new_child)) = split {
            match path.pop() {
                Some(parent) => {
                    let mut pnode = self.read_node(parent)?;
                    let pos = pnode
                        .entries
                        .partition_point(|(k, _)| k.as_slice() <= sep.as_slice());
                    pnode.entries.insert(pos, (sep, new_child.0 as u64));
                    split = self.finish_write(parent, pnode)?;
                }
                None => {
                    // Root split: build a new root above.
                    let new_root = Node {
                        is_leaf: false,
                        first_child: root_pid.0 as u64,
                        entries: vec![(sep, new_child.0 as u64)],
                    };
                    let new_root_pid = self.new_node_page(&new_root)?;
                    let mut root_mut = root_guard;
                    *root_mut = new_root_pid;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Write `node` back to `pid`, splitting first when oversized.
    fn finish_write(&self, pid: PageId, mut node: Node) -> Result<Option<(Vec<u8>, PageId)>> {
        if node.encoded_size() <= SPLIT_THRESHOLD {
            self.write_node(pid, &node)?;
            return Ok(None);
        }
        let mid = node.entries.len() / 2;
        let (sep, right) = if node.is_leaf {
            let right_entries = node.entries.split_off(mid);
            let sep = right_entries[0].0.clone();
            (
                sep,
                Node {
                    is_leaf: true,
                    entries: right_entries,
                    first_child: 0,
                },
            )
        } else {
            let mut right_entries = node.entries.split_off(mid);
            let (sep, right_first) = right_entries.remove(0);
            (
                sep,
                Node {
                    is_leaf: false,
                    entries: right_entries,
                    first_child: right_first,
                },
            )
        };
        let right_pid = self.new_node_page(&right)?;
        if node.is_leaf {
            // Chain: left -> right -> old next.
            let old_next = self.leaf_next(pid)?;
            self.set_leaf_next(right_pid, old_next)?;
        }
        self.write_node(pid, &node)?;
        if node.is_leaf {
            self.set_leaf_next(pid, right_pid)?;
        }
        Ok(Some((sep, right_pid)))
    }

    fn find_leaf(&self, root: PageId, key: &[u8]) -> Result<PageId> {
        let mut pid = root;
        loop {
            enum Step {
                Leaf,
                Descend(PageId),
            }
            let step = self.with_node_blob(pid, |blob| {
                let v = BlobView::new(blob);
                if v.is_leaf {
                    Step::Leaf
                } else {
                    Step::Descend(PageId(v.route(key) as u32))
                }
            })?;
            match step {
                Step::Leaf => return Ok(pid),
                Step::Descend(child) => pid = child,
            }
        }
    }

    /// Point lookup (unique trees). Returns the first entry for `key`.
    /// Allocation-free: descends and searches over the raw node blobs.
    pub fn get(&self, key: &[u8]) -> Result<Option<RowId>> {
        let root = self.root.read();
        let leaf_pid = self.find_leaf(*root, key)?;
        let found = self.with_node_blob(leaf_pid, |blob| BlobView::new(blob).find(key))?;
        Ok(found.map(RowId))
    }

    /// All `RowId`s for `key` (non-unique trees; may cross leaves).
    pub fn get_all(&self, key: &[u8]) -> Result<Vec<RowId>> {
        let mut out = Vec::new();
        self.scan_range(key, Some(&[key, &[0u8][..]].concat()), |_, rid| {
            out.push(rid);
            true
        })?;
        Ok(out)
    }

    /// Remove an entry. On unique trees `rid` may be `None` (remove by
    /// key); on non-unique trees the exact `(key, rid)` pair is removed.
    /// Returns whether anything was removed.
    pub fn delete(&self, key: &[u8], rid: Option<RowId>) -> Result<bool> {
        let root_guard = self.root.write();
        let root_pid = *root_guard;
        let leaf_pid = self.find_leaf(root_pid, key)?;
        // Duplicates may spill into following leaves; walk until found
        // or past the key.
        let mut pid = leaf_pid;
        loop {
            let mut node = self.read_node(pid)?;
            let pos = node
                .entries
                .iter()
                .position(|(k, v)| k.as_slice() == key && rid.is_none_or(|r| *v == r.0));
            if let Some(pos) = pos {
                node.entries.remove(pos);
                self.write_node(pid, &node)?;
                return Ok(true);
            }
            let past = node.entries.last().is_some_and(|(k, _)| k.as_slice() > key);
            if past {
                return Ok(false);
            }
            let next = self.leaf_next(pid)?;
            if next.is_null() {
                return Ok(false);
            }
            pid = next;
        }
    }

    /// Scan keys in `[lo, hi)` (`hi = None` scans to the end), calling
    /// `f(key, rid)`; `f` returning `false` stops the scan. Copies out
    /// only the qualifying entries of each visited leaf.
    pub fn scan_range(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], RowId) -> bool,
    ) -> Result<()> {
        let root = self.root.read();
        let mut pid = self.find_leaf(*root, lo)?;
        loop {
            // Copy out the in-range slice of this leaf plus the next
            // pointer under one latch hold.
            let (batch, next, done): (Vec<(Vec<u8>, u64)>, PageId, bool) = {
                let guard = self.cache.fetch(pid)?;
                guard.with_page_read(|p| {
                    let blob = p.get(SlotId(0)).unwrap_or(&[]);
                    let mut out = Vec::new();
                    let mut done = false;
                    if blob.len() >= 13 {
                        let v = BlobView::new(blob);
                        for (k, val) in v.entries() {
                            if k < lo {
                                continue;
                            }
                            if let Some(hi) = hi {
                                if k >= hi {
                                    done = true;
                                    break;
                                }
                            }
                            out.push((k.to_vec(), val));
                        }
                    }
                    (out, p.next_page(), done)
                })
            };
            for (k, v) in &batch {
                if !f(k, RowId(*v)) {
                    return Ok(());
                }
            }
            if done || next.is_null() {
                return Ok(());
            }
            pid = next;
        }
    }

    /// Total entries (full scan; tests and stats).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        self.scan_range(&[], None, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (root to leaf), for stats and split testing.
    pub fn height(&self) -> Result<usize> {
        let root = self.root.read();
        let mut pid = *root;
        let mut h = 1;
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                return Ok(h);
            }
            pid = PageId(node.first_child as u32);
            h += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrim_pagestore::MemDisk;

    fn tree(unique: bool) -> BTreeIndex {
        let cache = Arc::new(BufferCache::new(Arc::new(MemDisk::new()), 256));
        BTreeIndex::new(cache, PartitionId(99), unique).unwrap()
    }

    fn key(n: u64) -> Vec<u8> {
        n.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let t = tree(true);
        t.insert(&key(5), RowId(50)).unwrap();
        t.insert(&key(1), RowId(10)).unwrap();
        t.insert(&key(9), RowId(90)).unwrap();
        assert_eq!(t.get(&key(1)).unwrap(), Some(RowId(10)));
        assert_eq!(t.get(&key(5)).unwrap(), Some(RowId(50)));
        assert_eq!(t.get(&key(9)).unwrap(), Some(RowId(90)));
        assert_eq!(t.get(&key(2)).unwrap(), None);
        assert_eq!(t.len().unwrap(), 3);
    }

    #[test]
    fn unique_rejects_duplicates() {
        let t = tree(true);
        t.insert(&key(1), RowId(10)).unwrap();
        assert!(matches!(
            t.insert(&key(1), RowId(11)),
            Err(BtrimError::DuplicateKey(_))
        ));
    }

    #[test]
    fn non_unique_collects_all() {
        let t = tree(false);
        for i in 0..10 {
            t.insert(&key(7), RowId(i)).unwrap();
        }
        t.insert(&key(8), RowId(100)).unwrap();
        let mut rids = t.get_all(&key(7)).unwrap();
        rids.sort();
        assert_eq!(rids, (0..10).map(RowId).collect::<Vec<_>>());
        assert_eq!(t.get_all(&key(6)).unwrap(), vec![]);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let t = tree(true);
        let n = 5000u64;
        // Insert in adversarial (reversed) order.
        for i in (0..n).rev() {
            t.insert(&key(i), RowId(i)).unwrap();
        }
        assert!(t.height().unwrap() >= 2, "splits must have happened");
        assert_eq!(t.len().unwrap(), n as usize);
        // All lookups succeed.
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(&key(i)).unwrap(), Some(RowId(i)));
        }
        // Full scan is sorted.
        let mut prev: Option<Vec<u8>> = None;
        t.scan_range(&[], None, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k);
            }
            prev = Some(k.to_vec());
            true
        })
        .unwrap();
    }

    #[test]
    fn range_scan_honours_bounds() {
        let t = tree(true);
        for i in 0..100 {
            t.insert(&key(i), RowId(i)).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_range(&key(10), Some(&key(20)), |_, rid| {
            seen.push(rid.0);
            true
        })
        .unwrap();
        assert_eq!(seen, (10..20).collect::<Vec<_>>());
        // Early stop.
        let mut count = 0;
        t.scan_range(&key(0), None, |_, _| {
            count += 1;
            count < 5
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn delete_by_key_and_pair() {
        let t = tree(false);
        t.insert(&key(1), RowId(10)).unwrap();
        t.insert(&key(1), RowId(11)).unwrap();
        // Remove a specific pair.
        assert!(t.delete(&key(1), Some(RowId(10))).unwrap());
        assert_eq!(t.get_all(&key(1)).unwrap(), vec![RowId(11)]);
        // Remove missing pair.
        assert!(!t.delete(&key(1), Some(RowId(10))).unwrap());
        // Remove by key.
        assert!(t.delete(&key(1), None).unwrap());
        assert!(t.get_all(&key(1)).unwrap().is_empty());
    }

    #[test]
    fn delete_after_splits() {
        let t = tree(true);
        let n = 3000u64;
        for i in 0..n {
            t.insert(&key(i), RowId(i)).unwrap();
        }
        for i in (0..n).step_by(2) {
            assert!(t.delete(&key(i), None).unwrap(), "delete {i}");
        }
        assert_eq!(t.len().unwrap(), (n / 2) as usize);
        for i in 0..n {
            let expect = if i % 2 == 0 { None } else { Some(RowId(i)) };
            assert_eq!(t.get(&key(i)).unwrap(), expect, "key {i}");
        }
    }

    #[test]
    fn variable_length_string_keys() {
        let t = tree(true);
        let names = ["BARBAR", "OUGHT", "ABLE", "PRES", "ESE", "ANTI", "CALLY"];
        for (i, n) in names.iter().enumerate() {
            let k = crate::keys::KeyBuilder::new().push_str(n).build();
            t.insert(&k, RowId(i as u64)).unwrap();
        }
        for (i, n) in names.iter().enumerate() {
            let k = crate::keys::KeyBuilder::new().push_str(n).build();
            assert_eq!(t.get(&k).unwrap(), Some(RowId(i as u64)));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btrim_pagestore::MemDisk;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The unique tree behaves like BTreeMap<Vec<u8>, u64> under any
        /// interleaving of inserts, deletes, and lookups.
        #[test]
        fn btree_matches_model(
            ops in proptest::collection::vec(
                (any::<bool>(), 0u64..500, any::<u64>()), 1..400)
        ) {
            let cache = Arc::new(BufferCache::new(Arc::new(MemDisk::new()), 512));
            let t = BTreeIndex::new(cache, PartitionId(0), true).unwrap();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (is_insert, k, v) in ops {
                let kb = k.to_be_bytes().to_vec();
                if is_insert {
                    match t.insert(&kb, RowId(v)) {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&kb));
                            model.insert(kb, v);
                        }
                        Err(BtrimError::DuplicateKey(_)) => {
                            prop_assert!(model.contains_key(&kb));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                } else {
                    let removed = t.delete(&kb, None).unwrap();
                    prop_assert_eq!(removed, model.remove(&kb).is_some());
                }
            }
            // Final state matches exactly.
            prop_assert_eq!(t.len().unwrap(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(t.get(k).unwrap(), Some(RowId(*v)));
            }
            // Scan order matches model order.
            let mut scanned = Vec::new();
            t.scan_range(&[], None, |k, rid| { scanned.push((k.to_vec(), rid.0)); true }).unwrap();
            let expect: Vec<(Vec<u8>, u64)> =
                model.into_iter().collect();
            prop_assert_eq!(scanned, expect);
        }
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use btrim_pagestore::MemDisk;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Readers racing a writer that drives splits: every key inserted
    /// before a read began must be found, and scans must stay sorted.
    #[test]
    fn readers_survive_concurrent_splits() {
        let cache = Arc::new(BufferCache::new(Arc::new(MemDisk::new()), 1024));
        let tree = Arc::new(BTreeIndex::new(cache, PartitionId(0), true).unwrap());
        let inserted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            {
                let tree = Arc::clone(&tree);
                let inserted = Arc::clone(&inserted);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) && i < 20_000 {
                        tree.insert(&i.to_be_bytes(), RowId(i)).unwrap();
                        inserted.store(i + 1, Ordering::Release);
                        i += 1;
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for _ in 0..3 {
                let tree = Arc::clone(&tree);
                let inserted = Arc::clone(&inserted);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = inserted.load(Ordering::Acquire);
                        if n == 0 {
                            continue;
                        }
                        // Point lookups over the settled prefix.
                        for k in (0..n).step_by((n as usize / 7).max(1)) {
                            assert_eq!(
                                tree.get(&k.to_be_bytes()).unwrap(),
                                Some(RowId(k)),
                                "key {k} of settled prefix {n}"
                            );
                        }
                        // Scans stay sorted even mid-split.
                        let mut prev: Option<Vec<u8>> = None;
                        tree.scan_range(&[], None, |k, _| {
                            if let Some(p) = &prev {
                                assert!(p.as_slice() <= k, "scan out of order");
                            }
                            prev = Some(k.to_vec());
                            true
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(tree.len().unwrap(), 20_000);
        assert!(tree.height().unwrap() >= 2, "splits happened");
    }
}
