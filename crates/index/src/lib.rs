//! Index structures for the BTrim engine.
//!
//! * [`btree`] — a page-based B+tree stored in the buffer cache. Its
//!   leaves map keys to `RowId`s, never to physical locations: "Page-
//!   based BTree indexes are enhanced to transparently scan rows either
//!   in the page-store or in the IMRS" (§II) — the transparency comes
//!   from resolving `RowId` through the RID-Map.
//! * [`hash`] — the in-memory, non-logged hash index built over IMRS
//!   rows only; a fast-path accelerator under unique B+tree indexes
//!   (§II).
//! * [`keys`] — order-preserving composite key encoding shared by both.

#![forbid(unsafe_code)]

pub mod btree;
pub mod hash;
pub mod keys;

pub use btree::BTreeIndex;
pub use hash::HashIndex;
pub use keys::KeyBuilder;
