//! HTAP scan-vs-oracle tests: the columnar analytic scan must agree
//! byte-for-byte (sums, match counts, coverage) with a row-at-a-time
//! oracle at every pinned snapshot, no matter how the rows are spread
//! across the IMRS, slotted pages, and frozen columnar extents — and
//! no matter how much freeze/thaw/pack churn happens while snapshots
//! stay pinned.
//!
//! 1. A deterministic walk drives one table through the full freeze
//!    life cycle (IMRS → packed → frozen → thawed by update/delete)
//!    with scans checked at each stage.
//! 2. A property test runs ≥300-step random histories — inserts,
//!    updates, deletes, aborts, pack cycles, freeze ticks — holding up
//!    to four snapshots open, each pinned to a frozen oracle; every
//!    analytic scan of every live snapshot must reproduce the oracle's
//!    aggregates exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use btrim_core::catalog::{FieldKind, RowLayout, TableOpts};
use btrim_core::freeze::freeze_tick;
use btrim_core::pack::{pack_cycle, PackLevel};
use btrim_core::{Engine, EngineConfig, EngineMode, ScanSpec, SnapshotTxn};

fn layout() -> RowLayout {
    RowLayout::new(&[
        ("k_hi", FieldKind::BeU32),
        ("k_lo", FieldKind::BeU32),
        ("val", FieldKind::U64),
        ("flag", FieldKind::U32),
        ("pad", FieldKind::Str),
    ])
}

fn opts() -> TableOpts {
    TableOpts::new("ht", Arc::new(|row: &[u8]| row[..8].to_vec())).with_layout(layout())
}

fn mkrow(key: u64, val: u64, flag: u32, pad: usize) -> Vec<u8> {
    let mut r = key.to_be_bytes().to_vec();
    r.extend_from_slice(&val.to_le_bytes());
    r.extend_from_slice(&flag.to_le_bytes());
    r.extend_from_slice(&(pad as u32).to_le_bytes());
    r.extend(std::iter::repeat_n(0x5A, pad));
    r
}

fn engine() -> Engine {
    Engine::new(EngineConfig {
        mode: EngineMode::IlmOn,
        imrs_budget: 256 * 1024,
        imrs_chunk_size: 64 * 1024,
        buffer_frames: 64,
        maintenance_interval_txns: u64::MAX / 2,
        freeze_enabled: true,
        freeze_min_rows: 2,
        freeze_max_rows: 32,
        ..Default::default()
    })
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Row-at-a-time oracle: evaluate the spec over a model `key → (val,
/// flag)` map exactly as the scan defines it.
fn oracle(model: &BTreeMap<u64, (u64, u32)>, lo: u64, hi: u64) -> (u64, u64, u128, u128) {
    let mut matched = 0u64;
    let mut sum_val = 0u128;
    let mut sum_flag = 0u128;
    for &(val, flag) in model.values() {
        if lo <= val && val <= hi {
            matched += 1;
            sum_val += val as u128;
            sum_flag += flag as u128;
        }
    }
    (model.len() as u64, matched, sum_val, sum_flag)
}

fn spec(lo: u64, hi: u64) -> ScanSpec {
    ScanSpec {
        filters: vec![("val".into(), lo, hi)],
        sums: vec!["val".into(), "flag".into()],
    }
}

fn check_scan(
    engine: &Engine,
    table: &btrim_core::catalog::TableDesc,
    snap: &SnapshotTxn,
    model: &BTreeMap<u64, (u64, u32)>,
    lo: u64,
    hi: u64,
    ctx: &str,
) {
    let got = engine.analytic_scan(snap, table, &spec(lo, hi)).unwrap();
    let (scanned, matched, sum_val, sum_flag) = oracle(model, lo, hi);
    assert_eq!(got.rows_scanned, scanned, "{ctx}: rows_scanned");
    assert_eq!(got.rows_matched, matched, "{ctx}: rows_matched");
    assert_eq!(got.sums, vec![sum_val, sum_flag], "{ctx}: sums");
}

// ---------------------------------------------------------------------
// 1. Deterministic freeze life cycle
// ---------------------------------------------------------------------

#[test]
fn scan_tracks_rows_through_freeze_and_thaw() {
    let e = engine();
    e.create_table(opts()).unwrap();
    let table = e.table("ht").unwrap();

    // 64 rows, all hot in the IMRS.
    let mut model: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
    let mut txn = e.begin();
    for k in 0..64u64 {
        let (val, flag) = (k * 10, (k % 4) as u32);
        e.insert(&mut txn, &table, &mkrow(k, val, flag, 16))
            .unwrap();
        model.insert(k, (val, flag));
    }
    e.commit(txn).unwrap();
    let s = e.begin_snapshot();
    check_scan(&e, &table, &s, &model, 0, u64::MAX, "imrs only");
    check_scan(&e, &table, &s, &model, 100, 300, "imrs filtered");
    e.end_snapshot(s);

    // Cold: pack everything to pages, then freeze the pages.
    e.run_maintenance();
    while pack_cycle(&e, PackLevel::Aggressive) > 0 {}
    let s = e.begin_snapshot();
    check_scan(&e, &table, &s, &model, 0, u64::MAX, "page resident");
    e.end_snapshot(s);

    // One tick freezes at most one extent per partition; drain fully.
    let mut frozen = 0;
    loop {
        let n = freeze_tick(&e);
        if n == 0 {
            break;
        }
        frozen += n;
    }
    assert!(
        frozen >= 33,
        "expected the cold rows to freeze, got {frozen}"
    );
    let snap_stats = e.snapshot();
    assert!(
        snap_stats.frozen_extents >= 2,
        "freeze_max_rows=32 splits extents"
    );
    assert_eq!(snap_stats.rows_frozen, frozen);
    assert!(
        snap_stats.frozen_encoded_bytes < snap_stats.frozen_raw_bytes,
        "columnar encoding must compress the uniform rows"
    );
    let s = e.begin_snapshot();
    check_scan(&e, &table, &s, &model, 0, u64::MAX, "frozen");
    check_scan(&e, &table, &s, &model, 200, 400, "frozen filtered");
    // Zone-map prune path: no extent holds vals above 630.
    check_scan(&e, &table, &s, &model, 10_000, 20_000, "frozen pruned");
    let res = e.analytic_scan(&s, &table, &spec(0, u64::MAX)).unwrap();
    assert_eq!(res.frozen_rows, frozen, "all rows served columnar");

    // Point reads still work against frozen rows.
    let row = e.get_snapshot(&s, &table, &7u64.to_be_bytes()).unwrap();
    assert_eq!(row, Some(mkrow(7, 70, 3, 16)));
    e.end_snapshot(s);

    // Thaw by update: the row leaves its extent, the scan follows.
    let mut txn = e.begin();
    assert!(e
        .update(
            &mut txn,
            &table,
            &7u64.to_be_bytes(),
            &mkrow(7, 7_000, 1, 16)
        )
        .unwrap());
    e.commit(txn).unwrap();
    model.insert(7, (7_000, 1));
    // Thaw by delete: gone from every tier.
    let mut txn = e.begin();
    assert!(e.delete(&mut txn, &table, &9u64.to_be_bytes()).unwrap());
    e.commit(txn).unwrap();
    model.remove(&9);
    let s = e.begin_snapshot();
    check_scan(&e, &table, &s, &model, 0, u64::MAX, "after thaw");
    check_scan(&e, &table, &s, &model, 7_000, 7_000, "thawed row matched");
    e.end_snapshot(s);
    assert!(
        e.freeze_stats()
            .rows_thawed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );

    // A snapshot pinned *before* a freeze keeps reading the same data
    // after the freeze retires the pages under it.
    let pre = e.begin_snapshot();
    let pre_model = model.clone();
    e.run_maintenance();
    while pack_cycle(&e, PackLevel::Aggressive) > 0 {}
    freeze_tick(&e);
    check_scan(
        &e,
        &table,
        &pre,
        &pre_model,
        0,
        u64::MAX,
        "pinned across freeze",
    );
    e.end_snapshot(pre);
}

// ---------------------------------------------------------------------
// 2. Random histories vs. pinned oracles
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    fn analytic_scans_match_pinned_oracles(seed in any::<u64>()) {
        let mut rng = seed | 1;
        let e = engine();
        e.create_table(opts()).unwrap();
        let table = e.table("ht").unwrap();

        type Pinned = (SnapshotTxn, BTreeMap<u64, (u64, u32)>);
        let mut model: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        let mut snaps: Vec<Pinned> = Vec::new();

        for step in 0..330u32 {
            let op = xorshift(&mut rng) % 100;
            let key = xorshift(&mut rng) % 40;
            match op {
                0..=29 => {
                    let key = (0..40)
                        .map(|d| (key + d) % 40)
                        .find(|k| !model.contains_key(k))
                        .unwrap_or(key);
                    let val = xorshift(&mut rng) % 1024;
                    let flag = (xorshift(&mut rng) % 8) as u32;
                    let pad = (xorshift(&mut rng) % 24) as usize;
                    let mut txn = e.begin();
                    match e.insert(&mut txn, &table, &mkrow(key, val, flag, pad)) {
                        Ok(_) => {
                            e.commit(txn).unwrap();
                            model.insert(key, (val, flag));
                        }
                        Err(_) => e.abort(txn),
                    }
                }
                30..=49 => {
                    if let Some((&key, _)) =
                        model.iter().nth(key as usize % model.len().max(1))
                    {
                        let val = xorshift(&mut rng) % 1024;
                        let flag = (xorshift(&mut rng) % 8) as u32;
                        let pad = (xorshift(&mut rng) % 24) as usize;
                        let mut txn = e.begin();
                        prop_assert!(e
                            .update(&mut txn, &table, &key.to_be_bytes(), &mkrow(key, val, flag, pad))
                            .unwrap());
                        e.commit(txn).unwrap();
                        model.insert(key, (val, flag));
                    }
                }
                50..=61 => {
                    if let Some((&key, _)) =
                        model.iter().nth(key as usize % model.len().max(1))
                    {
                        let mut txn = e.begin();
                        prop_assert!(e.delete(&mut txn, &table, &key.to_be_bytes()).unwrap());
                        e.commit(txn).unwrap();
                        model.remove(&key);
                    }
                }
                62..=69 => {
                    // Staged work that aborts: invisible to every scan.
                    let mut txn = e.begin();
                    let _ = e.insert(&mut txn, &table, &mkrow(key + 1_000, 7, 0, 8));
                    let _ = e.update(&mut txn, &table, &key.to_be_bytes(), &mkrow(key, 999_999, 9, 8));
                    e.abort(txn);
                }
                70..=75 => {
                    if snaps.len() < 4 {
                        snaps.push((e.begin_snapshot(), model.clone()));
                    }
                }
                76..=81 => {
                    if !snaps.is_empty() {
                        let i = (xorshift(&mut rng) as usize) % snaps.len();
                        let (snap, _) = snaps.swap_remove(i);
                        e.end_snapshot(snap);
                    }
                }
                82..=89 => {
                    e.run_maintenance();
                    pack_cycle(&e, PackLevel::Aggressive);
                }
                _ => {
                    // Cold path churn: pack to pages, then freeze the
                    // pages to extents (thaws race it via the update
                    // and delete arms above).
                    e.run_maintenance();
                    pack_cycle(&e, PackLevel::Aggressive);
                    freeze_tick(&e);
                }
            }

            // Every pinned snapshot re-aggregates to its frozen oracle.
            for (snap, frozen) in &snaps {
                let a = xorshift(&mut rng) % 1024;
                let b = xorshift(&mut rng) % 1024;
                let (lo, hi) = (a.min(b), a.max(b));
                let got = e.analytic_scan(snap, &table, &spec(lo, hi)).unwrap();
                let (scanned, matched, sum_val, sum_flag) = oracle(frozen, lo, hi);
                prop_assert_eq!(got.rows_scanned, scanned, "step {}: rows_scanned", step);
                prop_assert_eq!(got.rows_matched, matched, "step {}: rows_matched", step);
                prop_assert_eq!(got.sums, vec![sum_val, sum_flag], "step {}: sums", step);
            }
        }

        for (snap, _) in snaps.drain(..) {
            e.end_snapshot(snap);
        }
        // Final state: a fresh snapshot agrees with the final model,
        // full-range and filtered.
        let snap = e.begin_snapshot();
        let got = e.analytic_scan(&snap, &table, &spec(0, u64::MAX)).unwrap();
        let (scanned, matched, sum_val, sum_flag) = oracle(&model, 0, u64::MAX);
        prop_assert_eq!(got.rows_scanned, scanned);
        prop_assert_eq!(got.rows_matched, matched);
        prop_assert_eq!(got.sums, vec![sum_val, sum_flag]);
        e.end_snapshot(snap);
        prop_assert_eq!(e.snapshot().txns_active, 0);
    }
}
