//! Deterministic arbiter scenario: trace-vs-snapshot consistency.
//!
//! Runs a seeded two-phase workload under a unified memory budget and
//! asserts the arbiter's decision trace is a faithful explanation of
//! every budget move (the `obs_consistency` contract, extended to the
//! memory arbiter):
//!
//! * phase 1 (IMRS-hungry: a hot set bigger than the IMRS budget, so
//!   hot reads keep falling through to pages; quiet buffer) must move
//!   budget *to* the IMRS;
//! * phase 2 (buffer-hungry: wide page-store reads past capacity,
//!   quiet IMRS) must move budget back *to* the cache;
//! * every traced vote/shift carries inputs that reproduce its cited
//!   marginal utilities, respects the vote margin, hysteresis, floors
//!   and shift caps, and the trace totals equal the snapshot counters.

use std::sync::Arc;

use btrim_core::arbiter::{DEFAULT_MISS_NS, VOTE_MARGIN};
use btrim_core::catalog::{Partitioner, TableOpts};
use btrim_core::pack::{pack_cycle, PackLevel};
use btrim_core::{ArbiterAction, Engine, EngineConfig, EngineMode, IlmTraceEvent};
use btrim_pagestore::PAGE_SIZE;

fn mkrow(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = key.to_be_bytes().to_vec();
    v.extend_from_slice(payload);
    v
}

fn opts(name: &str, imrs: bool) -> TableOpts {
    TableOpts {
        name: name.into(),
        imrs_enabled: imrs,
        pinned: false,
        partitioner: Partitioner::Single,
        primary_key: Arc::new(|row: &[u8]| row[..8].to_vec()),
        layout: None,
    }
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn arbiter_trace_explains_every_shift() {
    let cfg = EngineConfig {
        mode: EngineMode::IlmOn,
        total_memory_budget: 8 * 1024 * 1024,
        arbiter_initial_imrs_fraction: 0.5,
        arbiter_window_txns: 64,
        arbiter_hysteresis_windows: 2,
        arbiter_min_shift_bytes: 64 * 1024,
        arbiter_max_shift_fraction: 0.10,
        arbiter_imrs_floor: 0.10,
        arbiter_buffer_floor: 0.10,
        imrs_chunk_size: 256 * 1024,
        maintenance_interval_txns: 8,
        // Keep the partition tuner out of the way: this scenario is
        // about memory, not placement.
        tuning_window_txns: u64::MAX / 2,
        obs_trace_capacity: 1 << 16,
        ..Default::default()
    };
    let total = cfg.total_memory_budget;
    let hysteresis = cfg.arbiter_hysteresis_windows;
    let min_shift = cfg.arbiter_min_shift_bytes;
    let max_shift = (total as f64 * cfg.arbiter_max_shift_fraction) as u64;
    let imrs_floor = cfg.arbiter_imrs_floor_bytes();
    let buffer_floor = cfg.arbiter_buffer_floor_bytes();
    let chunk = cfg.imrs_chunk_size as u64;
    let (imrs0, frames0) = cfg.memory_split();
    let e = Engine::new(cfg);
    assert_eq!(e.snapshot().imrs_budget, imrs0);
    assert_eq!(e.snapshot().buffer_capacity_frames, frames0 as u64);

    let hot = e.create_table(opts("hot", true)).unwrap();
    let cold = e.create_table(opts("cold", false)).unwrap();

    // A hot set half again the IMRS budget: the overflow lands in the
    // page store (pack drains the backpressure during the load), so
    // phase-1 reads keep generating page ops on an IMRS-enabled
    // partition — the IMRS miss signal.
    let hot_rows = 6_000u64;
    for base in (0..hot_rows).step_by(50) {
        loop {
            let mut txn = e.begin();
            let mut ok = true;
            for i in base..(base + 50).min(hot_rows) {
                if e.insert(&mut txn, &hot, &mkrow(i, &[0xA5; 1024])).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                e.commit(txn).unwrap();
                break;
            }
            e.abort(txn);
            pack_cycle(&e, PackLevel::Aggressive);
        }
    }
    // Cold page-store footprint about twice the initial buffer.
    let cold_rows = 2 * frames0 as u64 * (PAGE_SIZE as u64 / 1024);
    for base in (0..cold_rows).step_by(100) {
        let mut txn = e.begin();
        for i in base..(base + 100).min(cold_rows) {
            e.insert(&mut txn, &cold, &mkrow(1_000_000 + i, &[0x5A; 900]))
                .unwrap();
        }
        e.commit(txn).unwrap();
    }

    // Phase 1: sweep the whole hot set — the page-resident overflow
    // keeps the IMRS marginal utility high; the hot pages fit in the
    // buffer so its miss signal stays quiet.
    for round in 0..1_500u64 {
        let txn = e.begin();
        for k in 0..8u64 {
            let key = ((round * 8 + k) % hot_rows).to_be_bytes();
            e.get(&txn, &hot, &key).unwrap().unwrap();
        }
        e.commit(txn).unwrap();
    }
    let mid = e.snapshot();
    assert!(
        mid.arbiter_bytes_to_imrs > 0,
        "phase 1 must shift budget to the IMRS: {}",
        mid.arbiter_bytes_to_imrs
    );

    // Phase 2: sweep the cold table's pages (far past capacity, so
    // misses dominate) and leave the hot table untouched.
    for round in 0..3_000u64 {
        let txn = e.begin();
        for k in 0..4u64 {
            // A large prime stride defeats any residual locality.
            let i = (round * 4 + k) * 7_919 % cold_rows;
            e.get(&txn, &cold, &(1_000_000 + i).to_be_bytes())
                .unwrap()
                .unwrap();
        }
        e.commit(txn).unwrap();
    }
    let snap = e.snapshot();
    assert!(
        snap.arbiter_bytes_to_buffer > 0,
        "phase 2 must shift budget back to the buffer cache: {}",
        snap.arbiter_bytes_to_buffer
    );

    // The trace is complete …
    let obs = e.obs();
    assert_eq!(obs.trace.dropped(), 0, "ring sized too small for the run");
    let events: Vec<_> = obs
        .trace
        .events()
        .into_iter()
        .filter_map(|ev| match ev {
            IlmTraceEvent::Arbiter(a) => Some(a),
            _ => None,
        })
        .collect();
    assert!(!events.is_empty());

    // … every event's inputs reproduce its cited verdict …
    for a in &events {
        assert_eq!(a.votes_needed, hysteresis);
        assert!(a.votes >= 1 && a.votes <= a.votes_needed, "{a:?}");
        assert!(a.miss_ns == DEFAULT_MISS_NS || a.miss_ns > 0);
        let miss_us = (a.miss_ns as f64 / 1_000.0).max(1.0);
        let imrs_mib = (a.imrs_bytes as f64 / (1024.0 * 1024.0)).max(1.0);
        let buffer_mib = (a.buffer_bytes as f64 / (1024.0 * 1024.0)).max(1.0);
        let want_imrs_mu = a.imrs_miss_ops as f64 * miss_us / imrs_mib;
        let want_buffer_mu = a.buffer_misses as f64 * miss_us / buffer_mib;
        assert!(approx(a.imrs_mu, want_imrs_mu), "{a:?}");
        assert!(approx(a.buffer_mu, want_buffer_mu), "{a:?}");
        match a.action {
            ArbiterAction::VoteImrs | ArbiterAction::ShiftToImrs => {
                assert!(
                    a.imrs_mu > 0.0 && a.imrs_mu > VOTE_MARGIN * a.buffer_mu,
                    "{a:?}"
                );
            }
            ArbiterAction::VoteBuffer | ArbiterAction::ShiftToBuffer => {
                assert!(
                    a.buffer_mu > 0.0 && a.buffer_mu > VOTE_MARGIN * a.imrs_mu,
                    "{a:?}"
                );
            }
        }
        if a.action.is_shift() {
            // Hysteresis met; shift chunk-quantized, within cap and
            // granularity; both pools moved by exactly the same bytes.
            assert_eq!(a.votes, a.votes_needed, "shift before hysteresis met");
            assert_eq!(a.shift_bytes % chunk, 0, "{a:?}");
            assert!(a.shift_bytes >= min_shift.max(chunk), "{a:?}");
            assert!(a.shift_bytes <= max_shift, "{a:?}");
            match a.action {
                ArbiterAction::ShiftToImrs => {
                    // The shrinking side never dips below its floor.
                    assert!(a.buffer_bytes - a.shift_bytes >= buffer_floor, "{a:?}");
                    assert_eq!(a.imrs_bytes_after, a.imrs_bytes + a.shift_bytes, "{a:?}");
                    assert_eq!(
                        a.buffer_frames_after,
                        (a.buffer_bytes - a.shift_bytes) / PAGE_SIZE as u64,
                        "{a:?}"
                    );
                }
                ArbiterAction::ShiftToBuffer => {
                    assert!(a.imrs_bytes - a.shift_bytes >= imrs_floor, "{a:?}");
                    assert_eq!(a.imrs_bytes_after, a.imrs_bytes - a.shift_bytes, "{a:?}");
                    assert_eq!(
                        a.buffer_frames_after,
                        (a.buffer_bytes + a.shift_bytes) / PAGE_SIZE as u64,
                        "{a:?}"
                    );
                }
                _ => unreachable!(),
            }
        } else {
            assert_eq!(a.shift_bytes, 0, "{a:?}");
            assert_eq!(
                a.imrs_bytes_after, a.imrs_bytes,
                "vote must not move budget"
            );
        }
    }

    // … window ordinals never decrease and stay within the windows run …
    let mut prev = 0;
    for a in &events {
        assert!(a.window >= prev);
        assert!(a.window <= snap.arbiter_windows);
        prev = a.window;
    }

    // … and the trace totals equal the snapshot counters exactly.
    let traced_shifts = events.iter().filter(|a| a.action.is_shift()).count() as u64;
    assert_eq!(traced_shifts, snap.arbiter_shifts);
    let traced_to_imrs: u64 = events
        .iter()
        .filter(|a| matches!(a.action, ArbiterAction::ShiftToImrs))
        .map(|a| a.shift_bytes)
        .sum();
    let traced_to_buffer: u64 = events
        .iter()
        .filter(|a| matches!(a.action, ArbiterAction::ShiftToBuffer))
        .map(|a| a.shift_bytes)
        .sum();
    assert_eq!(traced_to_imrs, snap.arbiter_bytes_to_imrs);
    assert_eq!(traced_to_buffer, snap.arbiter_bytes_to_buffer);
    assert!(snap.arbiter_windows > 0);
    assert_eq!(snap.total_memory_budget, total);

    // Chunk-quantized shifts conserve the total budget exactly.
    assert_eq!(
        snap.imrs_budget + snap.buffer_capacity_frames * PAGE_SIZE as u64,
        imrs0 + (frames0 * PAGE_SIZE) as u64,
        "budget leaked across shifts"
    );
}

/// Legacy fixed-split configs never arbitrate: the pools stay exactly
/// where `imrs_budget` / `buffer_frames` put them.
#[test]
fn legacy_config_never_shifts() {
    let e = Engine::new(EngineConfig {
        mode: EngineMode::IlmOn,
        imrs_budget: 2 * 1024 * 1024,
        imrs_chunk_size: 512 * 1024,
        buffer_frames: 256,
        maintenance_interval_txns: 8,
        arbiter_window_txns: 16,
        ..Default::default()
    });
    let t = e.create_table(opts("t", true)).unwrap();
    {
        let mut txn = e.begin();
        for i in 0..200u64 {
            e.insert(&mut txn, &t, &mkrow(i, &[1u8; 128])).unwrap();
        }
        e.commit(txn).unwrap();
    }
    for round in 0..500u64 {
        let txn = e.begin();
        e.get(&txn, &t, &(round % 200).to_be_bytes())
            .unwrap()
            .unwrap();
        e.commit(txn).unwrap();
    }
    let snap = e.snapshot();
    assert_eq!(snap.total_memory_budget, 0);
    assert_eq!(snap.arbiter_windows, 0);
    assert_eq!(snap.arbiter_shifts, 0);
    assert_eq!(snap.imrs_budget, 2 * 1024 * 1024);
    assert_eq!(snap.buffer_capacity_frames, 256);
    let obs = e.obs();
    assert!(obs
        .trace
        .events()
        .into_iter()
        .all(|ev| !matches!(ev, IlmTraceEvent::Arbiter(_))));
}
