//! GC ↔ ILM-queue interplay (§VI.B "Queue Maintenance offloaded from
//! transactions"): every row visits the queues through GC, membership
//! is exactly-once, and version churn never leaks memory.

use std::sync::Arc;

use btrim_core::catalog::TableOpts;
use btrim_core::{Engine, EngineConfig, EngineMode};

fn mkrow(key: u64, v: u8) -> Vec<u8> {
    let mut r = key.to_be_bytes().to_vec();
    r.extend_from_slice(&[v; 40]);
    r
}

fn engine() -> Engine {
    Engine::new(EngineConfig {
        mode: EngineMode::IlmOn,
        imrs_budget: 8 * 1024 * 1024,
        imrs_chunk_size: 1024 * 1024,
        maintenance_interval_txns: u64::MAX / 2, // manual maintenance
        ..Default::default()
    })
}

#[test]
fn every_committed_row_reaches_the_queue_exactly_once() {
    let e = engine();
    let t = e
        .create_table(TableOpts::new("t", Arc::new(|r: &[u8]| r[..8].to_vec())))
        .unwrap();
    let mut txn = e.begin();
    for i in 0..500u64 {
        e.insert(&mut txn, &t, &mkrow(i, 1)).unwrap();
    }
    e.commit(txn).unwrap();
    e.run_maintenance();
    let snap = e.snapshot();
    assert_eq!(snap.queue_total, 500, "one queue entry per row");
    assert_eq!(snap.gc_backlog, 0, "GC drained");

    // Updating rows re-registers them with GC, but the queue membership
    // flag prevents duplicates.
    let mut txn = e.begin();
    for i in 0..500u64 {
        e.update(&mut txn, &t, &i.to_be_bytes(), &mkrow(i, 2))
            .unwrap();
    }
    e.commit(txn).unwrap();
    e.run_maintenance();
    assert_eq!(
        e.snapshot().queue_total,
        500,
        "still exactly one entry per row"
    );
}

#[test]
fn version_churn_is_reclaimed_by_gc() {
    let e = engine();
    let t = e
        .create_table(TableOpts::new("t", Arc::new(|r: &[u8]| r[..8].to_vec())))
        .unwrap();
    let mut txn = e.begin();
    for i in 0..50u64 {
        e.insert(&mut txn, &t, &mkrow(i, 0)).unwrap();
    }
    e.commit(txn).unwrap();
    e.run_maintenance();
    let settled = e.snapshot().imrs_used_bytes;

    // 40 update rounds: without GC this would be 40x the memory.
    for round in 1..=40u8 {
        let mut txn = e.begin();
        for i in 0..50u64 {
            e.update(&mut txn, &t, &i.to_be_bytes(), &mkrow(i, round))
                .unwrap();
        }
        e.commit(txn).unwrap();
        e.run_maintenance();
    }
    let after = e.snapshot().imrs_used_bytes;
    assert!(
        after <= settled * 2,
        "GC bounds version churn: {settled} -> {after} bytes"
    );
    assert!(e.snapshot().gc_bytes_freed > 0);

    // All rows still readable with the latest value.
    let txn = e.begin();
    for i in 0..50u64 {
        let row = e.get(&txn, &t, &i.to_be_bytes()).unwrap().unwrap();
        assert_eq!(row[8], 40);
    }
    e.commit(txn).unwrap();
}

#[test]
fn deleted_rows_are_fully_reclaimed() {
    let e = engine();
    let t = e
        .create_table(TableOpts::new("t", Arc::new(|r: &[u8]| r[..8].to_vec())))
        .unwrap();
    let mut txn = e.begin();
    for i in 0..200u64 {
        e.insert(&mut txn, &t, &mkrow(i, 1)).unwrap();
    }
    e.commit(txn).unwrap();
    e.run_maintenance();

    let mut txn = e.begin();
    for i in 0..200u64 {
        assert!(e.delete(&mut txn, &t, &i.to_be_bytes()).unwrap());
    }
    e.commit(txn).unwrap();
    // Two maintenance passes: the first truncates chains, the second
    // collects the now-dead tombstones.
    e.run_maintenance();
    e.run_maintenance();
    let snap = e.snapshot();
    assert_eq!(snap.imrs_rows, 0, "tombstoned rows collected");
    assert_eq!(snap.imrs_used_bytes, 0, "all fragment memory returned");
}
